"""Table 5 — extended grouping: BGP prefixes instead of /24s, and the
whole Tranco list instead of three TLDs.

Checks the paper's two conclusions: BGP-prefix grouping is almost
identical to /24 grouping (the original paper's /24 assumption is
sound), and widening to all TLDs grows the groups.
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_dns_robustness_study


def test_table5_extended_grouping(benchmark, bench_iyp):
    results = benchmark.pedantic(
        run_dns_robustness_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    record_comparison(
        "Table 5 - extended grouping (paper at 1M domains)",
        ["row", "median", "max"],
        [
            [".com/.net/.org by BGP prefix (paper)", "4.1k", "114k"],
            [".com/.net/.org by BGP prefix (this repro)",
             results.cno_by_prefix.median, results.cno_by_prefix.maximum],
            ["All Tranco by BGP prefix (paper)", "6k", "187k"],
            ["All Tranco by BGP prefix (this repro)",
             results.all_by_prefix.median, results.all_by_prefix.maximum],
            ["All Tranco by NS (paper)", "15", "25k"],
            ["All Tranco by NS (this repro)",
             results.all_by_ns.median, results.all_by_ns.maximum],
        ],
    )
    # BGP prefix grouping ~ /24 grouping ("the assumption is sound").
    assert results.cno_by_prefix.maximum >= results.cno_by_slash24.maximum * 0.65
    # All-TLD groups are at least as large as the 3-TLD subset's.
    assert results.all_by_prefix.maximum >= results.cno_by_prefix.maximum
    assert results.all_by_ns.maximum >= results.cno_by_ns.maximum
    assert results.all_by_ns.median >= results.cno_by_ns.median
