"""Table 2 — RiPKI reproduction: RPKI status of popular-domain prefixes.

Regenerates the IYP row of Table 2 and checks the paper's shape: a tiny
invalid fraction, majority coverage, bottom band above top band, CDN
highest, and the ~75% max-length share among invalids.
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_ripki_study

PAPER_RIPKI_2015 = {"RPKI Invalid": 0.09, "RPKI covered": 6.0, "Top 100k": 4.0,
                    "Bottom 100k": 5.5, "CDN": 0.9}
PAPER_IYP_2024 = {"RPKI Invalid": 0.12, "RPKI covered": 52.2, "Top 100k": 55.2,
                  "Bottom 100k": 61.5, "CDN": 68.4}


def test_table2_ripki(benchmark, bench_iyp):
    results = benchmark.pedantic(
        run_ripki_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    measured = results.table2_row()
    record_comparison(
        "Table 2 - RiPKI vs IYP (RPKI status of popular prefixes, %)",
        ["row", *PAPER_IYP_2024.keys()],
        [
            ["RiPKI (2015, paper)", *PAPER_RIPKI_2015.values()],
            ["IYP (2024, paper)", *PAPER_IYP_2024.values()],
            ["this repro", *(f"{v:.1f}" for v in measured.values())],
            ["", ""],
            ["invalids from maxLength (paper 75%)",
             f"{results.invalid_maxlen_share:.0f}%"],
        ],
    )
    # Shape assertions mirroring the paper's findings.
    assert measured["RPKI Invalid"] < 2.0
    assert measured["RPKI covered"] > 40.0  # the 2024 "happier story"
    assert measured["Bottom 100k"] > measured["Top 100k"]  # surprising finding holds
    assert measured["CDN"] == max(measured.values())
    assert results.invalid_maxlen_share > 50.0


def test_table2_tag_breakdown(benchmark, bench_iyp):
    """Section 4.1.4: RPKI deployment per BGP.Tools tag."""
    results = benchmark.pedantic(
        run_ripki_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    by_tag = results.coverage_by_tag
    record_comparison(
        "Section 4.1.4 - RPKI coverage per AS tag (%)",
        ["tag", "paper", "this repro"],
        [
            ["Academic", "16", f"{by_tag.get('Academic', 0):.0f}"],
            ["Government", "21", f"{by_tag.get('Government', 0):.0f}"],
            ["DDoS Mitigation", "76", f"{by_tag.get('DDoS Mitigation', 0):.0f}"],
            ["Content Delivery Network", "68",
             f"{by_tag.get('Content Delivery Network', 0):.0f}"],
        ],
    )
    assert by_tag["Academic"] < by_tag["DDoS Mitigation"]
    assert by_tag["Government"] < by_tag["DDoS Mitigation"]
