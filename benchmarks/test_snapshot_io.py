"""Snapshot I/O: v1 gzip-JSON vs the v2 framed binary format.

Saves the session's benchmark graph in both formats and measures save
and load wall-time (best of three) plus file size.  The v2 loader goes
through :meth:`GraphStore.from_records` bulk construction instead of
replaying the locked mutation API, which is where the bulk of its
speedup comes from; the assertion at the bottom pins the format's
headline claim — loading at least twice as fast as v1 — so a
serialization regression fails the benchmark suite, not just a
dashboard.  Emits ``BENCH_snapshot.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import record_comparison
from repro.archive import save_snapshot_v2
from repro.graphdb import load_snapshot, save_snapshot
from repro.graphdb.snapshot import snapshot_dict

RUNS = 3


def _best(fn) -> float:
    times = []
    for _ in range(RUNS):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def test_snapshot_io_v1_vs_v2(bench_iyp, tmp_path):
    store = bench_iyp.store
    v1_path = tmp_path / "bench.json.gz"
    v2_path = tmp_path / "bench.iyp2"

    v1_save = _best(lambda: save_snapshot(store, v1_path))
    v2_save = _best(lambda: save_snapshot_v2(store, v2_path))
    v1_size = v1_path.stat().st_size
    v2_size = v2_path.stat().st_size

    loaded = {}
    v1_load = _best(lambda: loaded.__setitem__(1, load_snapshot(v1_path)))
    v2_load = _best(lambda: loaded.__setitem__(2, load_snapshot(v2_path)))

    # Fidelity first: both formats must reproduce the store exactly,
    # otherwise the timing comparison is meaningless.
    reference = snapshot_dict(store)
    assert snapshot_dict(loaded[1]) == reference
    assert snapshot_dict(loaded[2]) == reference

    result = {
        "nodes": store.node_count,
        "relationships": store.relationship_count,
        "v1": {"save_s": v1_save, "load_s": v1_load, "bytes": v1_size},
        "v2": {"save_s": v2_save, "load_s": v2_load, "bytes": v2_size},
        "load_speedup": v1_load / v2_load,
        "size_ratio": v2_size / v1_size,
        "runs": RUNS,
    }
    out = Path(__file__).parent / "BENCH_snapshot.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    record_comparison(
        "Snapshot I/O: v1 gzip-JSON vs v2 framed binary "
        f"({store.node_count:,} nodes / {store.relationship_count:,} rels)",
        ["format", "save (s)", "load (s)", "size (MB)"],
        [
            ["v1", f"{v1_save:.3f}", f"{v1_load:.3f}", f"{v1_size / 1e6:.2f}"],
            ["v2", f"{v2_save:.3f}", f"{v2_load:.3f}", f"{v2_size / 1e6:.2f}"],
            ["v2/v1", f"{v2_save / v1_save:.2f}x",
             f"{v2_load / v1_load:.2f}x", f"{v2_size / v1_size:.2f}x"],
        ],
    )

    # The format's contract: archived dumps load at least 2x faster.
    assert v2_load * 2 <= v1_load, (
        f"v2 load {v2_load:.3f}s must be at least 2x faster than "
        f"v1 load {v1_load:.3f}s"
    )
