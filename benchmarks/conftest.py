"""Benchmark fixtures and paper-vs-measured reporting.

One medium-scale world and knowledge graph are built per session; each
benchmark exercises one table or figure of the paper and records its
paper-vs-measured comparison, which is printed at session end and
written to ``benchmarks/results_latest.md``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world

_REPORT_ROWS: list[tuple[str, list[str], list[list[str]]]] = []


def record_comparison(experiment: str, header: list[str], rows: list[list]) -> None:
    """Register one experiment's paper-vs-measured table."""
    _REPORT_ROWS.append(
        (experiment, [str(h) for h in header], [[str(c) for c in row] for row in rows])
    )


def _format_table(header: list[str], rows: list[list[str]]) -> str:
    rows = [row + [""] * (len(header) - len(row)) for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        " | ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [
        " | ".join(row[i].ljust(widths[i]) for i in range(len(header)))
        for row in rows
    ]
    return "\n".join(lines)


def pytest_sessionfinish(session, exitstatus):
    if not _REPORT_ROWS:
        return
    chunks = ["", "=" * 72, "PAPER vs MEASURED (synthetic world, shape comparison)", "=" * 72]
    for experiment, header, rows in _REPORT_ROWS:
        chunks.append(f"\n## {experiment}\n")
        chunks.append(_format_table(header, rows))
    report = "\n".join(chunks)
    print(report)
    out = Path(__file__).parent / "results_latest.md"
    out.write_text(report.replace("=" * 72, "") + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_world():
    """The medium synthetic world used by all benchmarks."""
    return build_world(WorldConfig.medium())


@pytest.fixture(scope="session")
def bench_iyp(bench_world):
    """The knowledge graph built from the benchmark world."""
    iyp, report = build_iyp(bench_world)
    assert report.ok, report.crawler_errors
    return iyp
