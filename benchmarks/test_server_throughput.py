"""Server throughput: parallel readers, cold vs warm cache.

Runs a real HTTP server over a small built graph and measures a cold
phase (8 client threads, distinct parameter sets, so every request
misses the cache) against a warm phase (every thread repeats one query,
so the version-keyed cache answers).  Emits ``BENCH_server.json`` with
qps, latency percentiles, hit rate, and observed concurrency.
"""

from __future__ import annotations

import gc
import json
import statistics
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from benchmarks.conftest import record_comparison
from repro.pipeline import build_iyp
from repro.server import QueryService, create_server
from repro.simnet import WorldConfig, build_world

CLIENTS = 8
REQUESTS_PER_CLIENT = 12
# One query shape for both phases, so qps is comparable: the cold phase
# sweeps distinct $asn values (every request misses the cache), the warm
# phase repeats a single value (every request after the first hits).
QUERY = (
    "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) WHERE a.asn >= $asn "
    "RETURN count(DISTINCT p) AS n"
)


@pytest.fixture(scope="module")
def served_iyp():
    """A server over the *small* world — build cost stays in seconds."""
    iyp, report = build_iyp(build_world(WorldConfig.small()))
    assert report.ok, report.crawler_errors
    service = QueryService(iyp.store, max_concurrent=CLIENTS)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, service, iyp
    server.shutdown()
    server.server_close()


def _post(base: str, query: str, parameters: dict | None = None) -> float:
    """One POST /query; returns client-observed latency in seconds."""
    body = json.dumps({"query": query, "parameters": parameters or {}})
    request = urllib.request.Request(
        f"{base}/query", data=body.encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    started = time.perf_counter()
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 200
        json.loads(response.read())
    return time.perf_counter() - started


def _drive(base: str, asns: list[int]):
    """CLIENTS threads, each issuing REQUESTS_PER_CLIENT queries."""
    latencies: list[float] = []
    lock = threading.Lock()

    def client(worker: int):
        mine: list[float] = []
        for i in range(REQUESTS_PER_CLIENT):
            asn = asns[(worker * REQUESTS_PER_CLIENT + i) % len(asns)]
            mine.append(_post(base, QUERY, {"asn": asn}))
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return latencies, elapsed


def _percentile(values: list[float], pct: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(pct / 100 * len(ordered)) - 1))
    return ordered[index]


def test_server_throughput(served_iyp):
    base, service, iyp = served_iyp
    asns = iyp.run("MATCH (a:AS) RETURN a.asn ORDER BY a.asn").column()

    # Cold: distinct parameters per request defeat the result cache.
    cold_latencies, cold_elapsed = _drive(base, asns)
    # Warm: one fixed parameter; after the first miss everything hits.
    warm_latencies, warm_elapsed = _drive(base, [asns[0]])

    total = CLIENTS * REQUESTS_PER_CLIENT
    cache = service.cache.info()
    peak = service.admission.peak_active
    result = {
        "clients": CLIENTS,
        "requests_per_phase": total,
        "cold_qps": round(total / cold_elapsed, 1),
        "warm_qps": round(total / warm_elapsed, 1),
        "cold_p50_ms": round(_percentile(cold_latencies, 50) * 1000, 3),
        "cold_p95_ms": round(_percentile(cold_latencies, 95) * 1000, 3),
        "warm_p50_ms": round(_percentile(warm_latencies, 50) * 1000, 3),
        "warm_p95_ms": round(_percentile(warm_latencies, 95) * 1000, 3),
        "cache_hit_rate": round(cache["hit_rate"], 4),
        "peak_concurrent": peak,
        "store_version": iyp.store.version,
    }
    out = Path(__file__).parent / "BENCH_server.json"
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    record_comparison(
        "Server throughput (8 HTTP clients, small world)",
        ["phase", "qps", "p50 ms", "p95 ms"],
        [
            ["cold (parameter sweep)", result["cold_qps"],
             result["cold_p50_ms"], result["cold_p95_ms"]],
            ["warm (cached)", result["warm_qps"],
             result["warm_p50_ms"], result["warm_p95_ms"]],
            ["", ""],
            ["cache hit rate", f"{cache['hit_rate']:.1%}"],
            ["peak concurrent queries", peak],
        ],
    )

    # More than one reader actually ran inside the store at once.
    assert peak >= 2, f"no parallelism observed (peak={peak})"
    # The warm phase must demonstrate the cache working.
    assert cache["hit_rate"] > 0
    assert statistics.median(warm_latencies) <= statistics.median(cold_latencies)
    assert result["warm_qps"] >= result["cold_qps"]


def _median_overhead(run_base, run_cand, pairs: int = 11) -> tuple[float, float, float]:
    """Robust overhead measurement for noisy (shared, single-core) hosts.

    Times the baseline and the candidate back-to-back so both sides of
    a pair see the same noise regime, then takes the *median* of the
    per-pair ratios: a load burst inflates one or two pairs, not the
    middle of the distribution, where best-of-N mins can each land in a
    different regime and swing the comparison by double digits.  Each
    pair starts from a collected heap and runs with GC paused so a
    collection pause cannot land on one side only.

    Returns ``(median_overhead, base_best, cand_best)``.
    """
    run_base()  # warm caches both ways
    run_cand()
    ratios: list[float] = []
    base_best = cand_best = float("inf")
    gc.disable()
    try:
        for _ in range(pairs):
            gc.collect()
            base = run_base()
            cand = run_cand()
            ratios.append(cand / base)
            base_best = min(base_best, base)
            cand_best = min(cand_best, cand)
    finally:
        gc.enable()
    return statistics.median(ratios) - 1, base_best, cand_best


def test_observability_overhead(served_iyp):
    """Tracing + always-on profiling must cost < 5% on the paper
    listings versus a ``--no-trace`` service (the ISSUE's CI guard).

    Measured at the engine level (no HTTP, no cache) over the read-only
    paper listings, paired-ratio median so host noise cannot dominate
    either side (see :func:`_median_overhead`).
    """
    from repro.obs import Profiler, Tracer
    from repro.studies.queries import LISTING_1, LISTING_2, LISTING_4

    _, _, iyp = served_iyp
    listings = [LISTING_1, LISTING_2, LISTING_4]
    engine = iyp.engine

    plain_tracer = Tracer(enabled=False)
    live_tracer = Tracer(enabled=True)

    def run_all(traced: bool) -> float:
        engine.tracer = live_tracer if traced else plain_tracer
        started = time.perf_counter()
        if traced:
            with live_tracer.trace("request"):
                for listing in listings:
                    engine.run(listing, profiler=Profiler())
        else:
            for listing in listings:
                engine.run(listing)
        return time.perf_counter() - started

    try:
        overhead, plain, traced = _median_overhead(
            lambda: run_all(False), lambda: run_all(True)
        )
    finally:
        engine.tracer = plain_tracer

    record_comparison(
        "Observability overhead (3 paper listings, median of 11 pairs)",
        ["mode", "best seconds"],
        [
            ["--no-trace", round(plain, 4)],
            ["traced + profiled", round(traced, 4)],
            ["median overhead", f"{overhead:+.2%}"],
        ],
    )
    out = Path(__file__).parent / "BENCH_server.json"
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged["observability_overhead_pct"] = round(overhead * 100, 2)
    out.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")

    assert overhead <= 0.05, (
        f"observability overhead {overhead:.2%} exceeds 5% "
        f"(plain={plain:.4f}s traced={traced:.4f}s)"
    )


def test_statement_stats_overhead(served_iyp):
    """Statement statistics + resource accounting must also cost < 5%.

    Same paired-ratio-median discipline as the tracing guard, but at
    the service level: a ``statement_stats=True`` service (fingerprints
    every query, aggregates latencies, and forces the profiler on so the
    store/matcher counters flow) against one with statistics disabled.
    Tracing is off on both sides so only the statements machinery is
    measured.  Emits ``BENCH_obs.json``.
    """
    _, _, iyp = served_iyp
    asns = iyp.run(
        "MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 12"
    ).column()

    with_stats = QueryService(iyp.store, tracing=False, statement_stats=True)
    without = QueryService(iyp.store, tracing=False, statement_stats=False)

    def run_all(service: QueryService) -> float:
        # Distinct parameters every request defeat the result cache, so
        # the full execute path (including recording) is measured.
        service.cache.clear()
        started = time.perf_counter()
        for asn in asns:
            service.execute(QUERY, parameters={"asn": asn})
        return time.perf_counter() - started

    overhead, base_best, stats_best = _median_overhead(
        lambda: run_all(without), lambda: run_all(with_stats)
    )

    info = with_stats.statements.info()
    record_comparison(
        "Statement statistics overhead (12 queries, median of 11 pairs)",
        ["mode", "best seconds"],
        [
            ["stats disabled", round(base_best, 4)],
            ["stats + accounting", round(stats_best, 4)],
            ["median overhead", f"{overhead:+.2%}"],
            ["", ""],
            ["statements tracked", info["statements_tracked"]],
            ["calls recorded", info["recorded_total"]],
        ],
    )
    out = Path(__file__).parent / "BENCH_obs.json"
    out.write_text(
        json.dumps(
            {
                "queries_per_round": len(asns),
                "pairs": 11,
                "disabled_seconds": round(base_best, 6),
                "enabled_seconds": round(stats_best, 6),
                "overhead_pct": round(overhead * 100, 2),
                "statements_tracked": info["statements_tracked"],
                "calls_recorded": info["recorded_total"],
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Every execution folded into one fingerprint's aggregate.
    assert info["statements_tracked"] == 1
    assert info["recorded_total"] >= len(asns)
    # Same 5% guard as the tracing benchmark.
    assert overhead <= 0.05, (
        f"statement statistics overhead {overhead:.2%} exceeds 5% "
        f"(disabled={base_best:.4f}s enabled={stats_best:.4f}s)"
    )
