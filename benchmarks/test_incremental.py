"""Incremental ingestion: delta build+apply vs full rebuild+swap.

The weekly-update scenario from the paper's operations: a handful of
sources publish new data (here, ~1% of ASes get renamed) while the
other forty-odd crawler payloads are byte-identical.  The full path
rebuilds the entire graph from scratch, archives it, and swaps the
serving store; the incremental path checksums every crawler's payload,
re-runs only the changed ones, diffs their contribution into an ordered
:class:`~repro.delta.records.DeltaBatch`, archives the delta against
the base snapshot, and replays the batch into the *live* serving store
under one write-lock scope.

Results go to ``benchmarks/BENCH_incremental.json``.  The 10x speedup
floor from ``benchmarks/incremental_baseline.json`` is asserted at <=1%
churn, and — the part that makes the speedup trustworthy — the
delta-applied serving store must answer every paper listing and a
seeded family of randomized scalar queries with multisets identical to
a from-scratch rebuild of the churned world.
"""

from __future__ import annotations

import copy
import gc
import json
import random
import time
from collections import Counter
from pathlib import Path

from benchmarks.conftest import record_comparison
from repro.archive import SnapshotArchive
from repro.core.diff import snapshot_diff
from repro.cypher import CypherEngine
from repro.cypher.values import hash_key
from repro.ontology import ENTITIES
from repro.pipeline import build_iyp
from repro.server import QueryService
from repro.simnet import WorldConfig, build_world
from repro.studies import queries as listings

BENCH_PATH = Path(__file__).parent / "BENCH_incremental.json"
BASELINE_PATH = Path(__file__).parent / "incremental_baseline.json"

#: Fraction of ASes whose name changes between the two weekly runs.
CHURN_FRACTION = 0.008
REPLAY_SEED = 20240806
RANDOM_REPLAY_QUERIES = 24

PAPER_LISTINGS = {
    name: getattr(listings, name)
    for name in sorted(dir(listings))
    if name.startswith("LISTING_")
}


def result_multiset(result) -> Counter:
    """Order-insensitive, hashable view of a query result."""
    return Counter(
        tuple((column, hash_key(record[column])) for column in result.columns)
        for record in result.records
    )


class ScalarQueryGenerator:
    """Seeded random queries projecting ontology key properties.

    Unlike the optimizer-equivalence generator this never RETURNs a
    node variable: node hashes are store-local ids, meaningless across
    two independently built stores.  Every bound variable is projected
    through its label's key property, so the multisets compare graph
    *content*, not object identity.
    """

    def __init__(self, store, seed: int):
        self.store = store
        self.rng = random.Random(seed)
        triples: set[tuple[str, str, str]] = set()
        for rel in store.iter_relationships():
            start = store.get_node(rel.start_id)
            end = store.get_node(rel.end_id)
            for start_label in sorted(start.labels):
                for end_label in sorted(end.labels):
                    if start_label in ENTITIES and end_label in ENTITIES:
                        triples.add((start_label, rel.type, end_label))
        self.triples = sorted(triples)

    def query(self) -> str:
        rng = self.rng
        start_label, rel_type, end_label = rng.choice(self.triples)
        arrow = rng.choice(["-", "->"])
        text = f"MATCH (a:{start_label})-[:{rel_type}]{arrow}(b:{end_label})"
        start_key = ENTITIES[start_label].key_properties[0]
        end_key = ENTITIES[end_label].key_properties[0]
        conjuncts = []
        if rng.random() < 0.5:
            sample = rng.choice(self.store.nodes_with_label(start_label))
            value = sample.properties.get(start_key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                conjuncts.append(f"a.{start_key} {rng.choice(['>', '<='])} {value!r}")
            elif isinstance(value, str):
                escaped = value.replace("'", "\\'")
                conjuncts.append(f"a.{start_key} STARTS WITH '{escaped[:2]}'")
        if conjuncts:
            text += f" WHERE {' AND '.join(conjuncts)}"
        distinct = "DISTINCT " if rng.random() < 0.3 else ""
        return (f"{text} RETURN {distinct}a.{start_key} AS left_key, "
                f"b.{end_key} AS right_key")


def _replay(reference_store, candidate_store) -> int:
    """Assert both stores answer the replay workload identically.

    Returns the total row count so the caller can assert the workload
    was not vacuous.
    """
    reference = CypherEngine(reference_store)
    candidate = CypherEngine(candidate_store)
    workload: list[tuple[str, dict | None]] = []
    for name in sorted(PAPER_LISTINGS):
        query = PAPER_LISTINGS[name]
        parameters = None
        if "$org_name" in query:
            orgs = reference.run(
                "MATCH (o:Organization) RETURN o.name AS name ORDER BY name"
            )
            assert orgs.records, "graph has no organizations to parameterize with"
            parameters = {"org_name": orgs.records[0]["name"]}
        workload.append((query, parameters))
    generator = ScalarQueryGenerator(reference_store, REPLAY_SEED)
    workload += [(generator.query(), None) for _ in range(RANDOM_REPLAY_QUERIES)]

    total_rows = 0
    for query, parameters in workload:
        expected = reference.run(query, parameters)
        actual = candidate.run(query, parameters)
        assert expected.columns == actual.columns, query
        assert result_multiset(expected) == result_multiset(actual), query
        total_rows += len(expected.records)
    return total_rows


def test_incremental_ingest_speed_and_equivalence(tmp_path):
    world = build_world(WorldConfig.small())
    archive = SnapshotArchive(tmp_path / "archive")

    # Week 1: the base build, archived as a full snapshot.
    base_iyp, base_report = build_iyp(
        world, validate=False, analytics=False,
        archive=archive, archive_label="week-1",
    )

    # Week 2: ~1% of ASes get renamed; everything else is byte-identical.
    new_world = copy.deepcopy(world)
    churned = max(1, int(len(new_world.ases) * CHURN_FRACTION))
    for asn in sorted(new_world.ases)[:churned]:
        new_world.ases[asn].name += " (renamed)"
    churn_fraction = churned / len(new_world.ases)

    # Both timed windows run in a process that keeps the week-1 graph,
    # the scratch graph, and two serving stores alive — ~1M objects a
    # real (fresh-process) weekly run would not carry.  Freezing that
    # ambient heap out of the collector before each window keeps a
    # cyclic-GC full scan of it from landing inside either measurement;
    # the treatment is symmetric, so the ratio is unaffected either way.
    def _quiesce() -> None:
        gc.collect()
        gc.freeze()

    # Full path: rebuild from scratch, archive, load-and-swap a service.
    full_service = QueryService(archive.load("week-1"), archive=archive)
    _quiesce()
    started = time.perf_counter()
    scratch_iyp, scratch_report = build_iyp(
        new_world, validate=False, analytics=False,
        archive=archive, archive_label="week-2-full",
    )
    full_service.load_and_swap("week-2-full")
    full_seconds = time.perf_counter() - started
    assert scratch_report.ok, scratch_report.crawler_errors

    # Delta path: incremental build against the week-1 graph, archive
    # the delta, apply it to a live service serving an independent copy
    # of the week-1 store (the incremental build mutates base_iyp's own
    # store in place, so the serving copy proves apply_delta alone
    # advances a week-1 store to week 2).
    delta_service = QueryService(archive.load("week-1"), archive=archive)
    _quiesce()
    started = time.perf_counter()
    _inc_iyp, inc_report = build_iyp(
        new_world, incremental=True, previous=base_report, iyp=base_iyp,
        validate=False, analytics=False,
        archive=archive, archive_label="week-2-delta", archive_base="week-1",
    )
    delta_service.apply_delta(inc_report.delta, label="week-2-delta")
    delta_seconds = time.perf_counter() - started
    gc.unfreeze()
    assert inc_report.ok, inc_report.crawler_errors
    assert inc_report.incremental and not inc_report.delta.empty

    skipped = sum(1 for run in inc_report.crawler_runs if run.skipped)
    speedup = full_seconds / delta_seconds

    # Equivalence: the delta-applied serving store is the scratch graph.
    served = delta_service._state.store
    assert snapshot_diff(scratch_iyp.store, served).unchanged
    replay_rows = _replay(scratch_iyp.store, served)
    assert replay_rows > 0, "replay workload matched nothing"

    results = {
        "benchmark": "incremental ingestion (delta build+apply vs full rebuild+swap)",
        "world": "small",
        "churn_fraction": round(churn_fraction, 4),
        "ases_renamed": churned,
        "crawlers_total": len(inc_report.crawler_runs),
        "crawlers_skipped": skipped,
        "postprocess_skipped": inc_report.postprocess_skipped,
        "delta_records": len(inc_report.delta.records),
        "full_rebuild_swap_seconds": round(full_seconds, 3),
        "delta_build_apply_seconds": round(delta_seconds, 3),
        "speedup": round(speedup, 2),
        "replay_queries": len(PAPER_LISTINGS) + RANDOM_REPLAY_QUERIES,
        "replay_rows": replay_rows,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    record_comparison(
        "Incremental ingestion (delta vs full rebuild)",
        ["path", "seconds", "speedup"],
        [
            ["full rebuild + archive + swap", results["full_rebuild_swap_seconds"], "1.0x"],
            [
                f"delta build + apply ({skipped}/{len(inc_report.crawler_runs)} crawlers skipped)",
                results["delta_build_apply_seconds"],
                f"{results['speedup']}x",
            ],
        ],
    )

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert churn_fraction <= baseline["churn_fraction_max"]
    floor = baseline["speedup_floor"]
    assert speedup >= floor, (
        f"incremental path only {speedup:.2f}x the full rebuild "
        f"({delta_seconds:.2f}s vs {full_seconds:.2f}s) at "
        f"{churn_fraction:.1%} churn; committed floor is {floor}x"
    )
