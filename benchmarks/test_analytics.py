"""Analytics benchmark: vectorized procedures vs per-node traversals.

The ``repro.analytics`` measures read the store's per-(node, type,
direction) adjacency partitions directly.  This benchmark times each
vectorized measure against the legacy strategy it replaced — one
Cypher match (or one engine-mediated expansion) per node:

- **degree distribution** — adjacency-partition length sums vs a
  Cypher aggregation that enumerates every typed edge row by row;
- **k-reach** — BFS marking each node once vs a variable-length Cypher
  pattern that enumerates every distinct-edge path;
- **pagerank** — direct edge-list extraction from the type index vs
  the legacy study's Cypher-driven extraction (identical iteration
  loop, bit-identical scores);
- **customer cone** — one memoized transitive closure vs a per-AS BFS
  over Cypher-extracted provider links.

Results land in ``benchmarks/BENCH_analytics.json``; measured speedups
are gated against the committed ``benchmarks/analytics_baseline.json``
(>20% below a committed floor fails), and the two adjacency-bound
measures must clear 3x outright.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from benchmarks.conftest import record_comparison
from repro.analysis.centrality import as_pagerank
from repro.analytics import (
    customer_cones,
    degree_histogram,
    k_reach,
    pagerank,
)
from repro.cypher import CypherEngine
from repro.graphdb.model import Direction

BENCH_PATH = Path(__file__).parent / "BENCH_analytics.json"
BASELINE_PATH = Path(__file__).parent / "analytics_baseline.json"

REPEATS = 3
_RESULTS: dict[str, dict[str, float]] = {}


def _best_of(run, repeats: int = REPEATS) -> float:
    """Best-of-N wall time in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def _record(name: str, naive_ms: float, vectorized_ms: float, rows: int) -> float:
    speedup = naive_ms / vectorized_ms if vectorized_ms else float("inf")
    _RESULTS[name] = {
        "naive_ms": round(naive_ms, 3),
        "vectorized_ms": round(vectorized_ms, 3),
        "speedup": round(speedup, 2),
        "rows": rows,
    }
    return speedup


# ---------------------------------------------------------------------------
# Degree distribution: partition lengths vs per-edge Cypher aggregation
# ---------------------------------------------------------------------------


def test_degree_distribution_speedup(bench_iyp):
    store = bench_iyp.store
    engine = CypherEngine(store)
    query = (
        "MATCH (a:AS)-[r:PEERS_WITH]-() "
        "RETURN a.asn AS asn, count(r) AS degree"
    )

    def legacy():
        histogram: dict[int, int] = {}
        for row in engine.run(query).records:
            histogram[row["degree"]] = histogram.get(row["degree"], 0) + 1
        return histogram

    def vectorized():
        return degree_histogram(
            store, rel_type="PEERS_WITH", direction=Direction.BOTH, label="AS"
        )

    expected = {
        degree: count for degree, count in vectorized().items() if degree
    }
    assert legacy() == expected  # same histogram before timing anything

    vectorized_ms = _best_of(vectorized)
    naive_ms = _best_of(legacy, repeats=2)
    speedup = _record(
        "degree_distribution", naive_ms, vectorized_ms, len(expected)
    )
    assert speedup >= 3.0, (
        f"degree distribution only {speedup:.1f}x faster "
        f"({naive_ms:.2f}ms -> {vectorized_ms:.2f}ms)"
    )


# ---------------------------------------------------------------------------
# k-reach: BFS (each node marked once) vs variable-length path search
# ---------------------------------------------------------------------------


def test_kreach_speedup(bench_iyp):
    store = bench_iyp.store
    engine = CypherEngine(store)
    # A mid-degree AS: hub sources make the path-enumeration baseline
    # take minutes, stubs make both sides trivial.
    candidates = sorted(
        (node for node in store.nodes_with_label("AS")),
        key=lambda node: store.degree_by_type(node.id, "PEERS_WITH"),
    )
    source = candidates[len(candidates) // 2]
    query = (
        "MATCH (s:AS {asn: $asn})-[:PEERS_WITH*1..2]-(t:AS) "
        "RETURN DISTINCT t.asn AS asn"
    )
    parameters = {"asn": source.properties["asn"]}

    def legacy():
        return {
            row["asn"] for row in engine.run(query, parameters).records
        }

    def vectorized():
        # PEERS_WITH also reaches BGPCollector nodes; keep AS endpoints
        # to mirror the baseline's `(t:AS)` constraint.
        reached = set()
        for node_id in k_reach(store, source.id, 2, rel_type="PEERS_WITH"):
            node = store.get_node(node_id)
            if "AS" in node.labels:
                reached.add(node.properties["asn"])
        return reached

    reached = vectorized()
    assert legacy() - {parameters["asn"]} == reached

    vectorized_ms = _best_of(vectorized)
    naive_ms = _best_of(legacy, repeats=2)
    speedup = _record("kreach", naive_ms, vectorized_ms, len(reached))
    assert speedup >= 3.0, (
        f"k-reach only {speedup:.1f}x faster "
        f"({naive_ms:.2f}ms -> {vectorized_ms:.2f}ms)"
    )


# ---------------------------------------------------------------------------
# PageRank: type-index edge extraction vs the Cypher-driven study
# ---------------------------------------------------------------------------


def test_pagerank_speedup(bench_iyp):
    store = bench_iyp.store

    scores = pagerank(store)
    assert scores == as_pagerank(bench_iyp)  # bit-identical floats

    vectorized_ms = _best_of(lambda: pagerank(store))
    naive_ms = _best_of(lambda: as_pagerank(bench_iyp), repeats=2)
    _record("pagerank", naive_ms, vectorized_ms, len(scores))


# ---------------------------------------------------------------------------
# Customer cones: memoized closure vs per-AS BFS over Cypher edges
# ---------------------------------------------------------------------------


def test_customer_cone_speedup(bench_iyp):
    store = bench_iyp.store
    engine = CypherEngine(store)
    edges_query = (
        "MATCH (p:AS)-[r:PEERS_WITH {rel: 1}]->(c:AS) "
        "RETURN p.asn AS provider, c.asn AS customer"
    )
    asns_query = "MATCH (a:AS) RETURN a.asn AS asn"

    def legacy():
        customers: dict[int, set[int]] = {}
        for row in engine.run(edges_query).records:
            customers.setdefault(row["provider"], set()).add(row["customer"])
        sizes = {}
        for row in engine.run(asns_query).records:
            asn = row["asn"]
            seen = {asn}
            queue = deque([asn])
            while queue:
                for customer in customers.get(queue.popleft(), ()):
                    if customer not in seen:
                        seen.add(customer)
                        queue.append(customer)
            sizes[asn] = len(seen)
        return sizes

    def vectorized():
        return {
            asn: len(members) for asn, members in customer_cones(store).items()
        }

    sizes = vectorized()
    assert legacy() == sizes

    vectorized_ms = _best_of(vectorized)
    naive_ms = _best_of(legacy, repeats=2)
    _record("customer_cone", naive_ms, vectorized_ms, len(sizes))


# ---------------------------------------------------------------------------
# Emit BENCH_analytics.json and gate against the committed baseline
# ---------------------------------------------------------------------------


def test_write_bench_json_and_check_baseline(bench_iyp):
    assert {"degree_distribution", "kreach"} <= set(_RESULTS), (
        "targeted benchmarks did not run before the gate"
    )
    BENCH_PATH.write_text(
        json.dumps(
            {
                "benchmark": (
                    "analytics (vectorized measures vs per-node traversals)"
                ),
                "world": "medium",
                "repeats": REPEATS,
                "measures": _RESULTS,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    record_comparison(
        "Analytics (vectorized vs per-node)",
        ["measure", "naive ms", "vectorized ms", "speedup"],
        [
            [name, row["naive_ms"], row["vectorized_ms"], f"{row['speedup']}x"]
            for name, row in sorted(_RESULTS.items())
        ],
    )

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    failures = []
    for name, floor in baseline["speedups"].items():
        measured = _RESULTS.get(name, {}).get("speedup")
        if measured is None:
            failures.append(f"{name}: no measurement")
        elif measured < 0.8 * floor:
            failures.append(
                f"{name}: speedup {measured:.2f}x is >20% below the "
                f"committed baseline {floor:.2f}x"
            )
    assert not failures, "; ".join(failures)
