"""Ablations of the reproduction's design choices.

DESIGN.md calls out four load-bearing mechanisms; each ablation turns
one off and measures the difference:

1. hash indexes (Section 3.1): identifier seek vs full label scan;
2. cost-based anchor selection: planner picks the cheapest pattern
   element vs naively anchoring on the leftmost one;
3. canonical identifier forms (Section 2.3): with canonicalization
   disabled, the same prefix spelled differently splits into duplicate
   nodes and cross-dataset queries lose matches;
4. the parse cache: repeated study queries skip re-parsing.
"""

import random

from benchmarks.conftest import record_comparison
from repro.core import IYP, Reference
from repro.cypher.parser import parse


def test_ablation_index_seek(benchmark, bench_iyp, bench_world):
    """Indexed identifier lookup vs the same lookup forced to scan."""
    asn = sorted(bench_world.ases)[len(bench_world.ases) // 2]
    store = bench_iyp.store

    def indexed():
        return store.find_nodes("AS", "asn", asn)

    def scan():
        return [
            node
            for node in store.nodes_with_label("AS")
            if node.properties.get("asn") == asn
        ]

    found_indexed = benchmark(indexed)
    assert found_indexed == scan()
    import time

    start = time.perf_counter()
    for _ in range(100):
        indexed()
    indexed_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(100):
        scan()
    scan_time = time.perf_counter() - start
    record_comparison(
        "Ablation 1 - hash index vs label scan (100 AS lookups)",
        ["access path", "seconds", "speedup"],
        [
            ["label scan", f"{scan_time:.4f}", "1x"],
            ["index seek", f"{indexed_time:.4f}",
             f"{scan_time / max(indexed_time, 1e-9):.0f}x"],
        ],
    )
    assert indexed_time < scan_time


def test_ablation_anchor_selection(benchmark, bench_iyp):
    """Cost-based anchoring vs naive leftmost anchoring on a Listing-4
    style pattern whose selective element is in the middle."""
    import time

    from repro.cypher.matcher import PatternMatcher

    query = (
        "MATCH (i:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-"
        "(t:Tag {label:'RPKI Invalid'}) RETURN count(DISTINCT pfx)"
    )

    def cost_based():
        return bench_iyp.run(query).value()

    result = benchmark.pedantic(cost_based, rounds=3, iterations=1)

    start = time.perf_counter()
    cost_based()
    smart_time = time.perf_counter() - start

    original = PatternMatcher._choose_anchor
    try:
        PatternMatcher._choose_anchor = lambda self, pattern, binding: 0
        bench_iyp.engine._parse_cache.clear()
        start = time.perf_counter()
        naive_result = bench_iyp.run(query).value()
        naive_time = time.perf_counter() - start
    finally:
        PatternMatcher._choose_anchor = original
        bench_iyp.engine._parse_cache.clear()

    assert naive_result == result
    record_comparison(
        "Ablation 2 - anchor selection on a selective-in-the-middle pattern",
        ["planner", "seconds", "speedup"],
        [
            ["naive leftmost anchor", f"{naive_time:.3f}", "1x"],
            ["cost-based anchor", f"{smart_time:.3f}",
             f"{naive_time / max(smart_time, 1e-9):.0f}x"],
        ],
    )
    assert smart_time < naive_time


def test_ablation_canonicalization(benchmark, bench_world):
    """Without canonical forms, mixed identifier spellings create
    duplicate nodes and fusion silently breaks."""
    rng = random.Random(1)
    prefixes = [p for p in sorted(bench_world.prefixes) if ":" in p][:300]

    def mixed_spellings(prefix: str) -> str:
        return prefix.upper() if rng.random() < 0.5 else prefix

    def load(canonical: bool) -> int:
        iyp = IYP()
        ref_a = Reference("A", "a.origins")
        ref_b = Reference("B", "b.origins")
        for prefix in prefixes:
            spelling_a = prefix
            spelling_b = mixed_spellings(prefix)
            if canonical:
                node_a = iyp.get_node("Prefix", prefix=spelling_a)
                node_b = iyp.get_node("Prefix", prefix=spelling_b)
            else:
                node_a = iyp.store.merge_node("Prefix", "prefix", spelling_a)
                node_b = iyp.store.merge_node("Prefix", "prefix", spelling_b)
            asn = iyp.get_node("AS", asn=bench_world.prefixes[prefix].origins[0])
            iyp.add_link(asn, "ORIGINATE", node_a, reference=ref_a)
            iyp.add_link(asn, "ORIGINATE", node_b, reference=ref_b)
        # Fusion query: prefixes seen by BOTH datasets.
        return iyp.run(
            "MATCH (:AS)-[a:ORIGINATE {reference_name:'a.origins'}]-(p:Prefix)"
            "-[b:ORIGINATE {reference_name:'b.origins'}]-(:AS) "
            "RETURN count(DISTINCT p)"
        ).value()

    fused_canonical = benchmark.pedantic(
        load, args=(True,), rounds=1, iterations=1
    )
    fused_raw = load(False)
    record_comparison(
        "Ablation 3 - canonical identifier forms (300 IPv6 prefixes, two "
        "datasets with mixed spellings)",
        ["mode", "prefixes fused across both datasets"],
        [
            ["canonicalization ON", fused_canonical],
            ["canonicalization OFF", fused_raw],
        ],
    )
    assert fused_canonical == len(prefixes)
    assert fused_raw < fused_canonical  # fusion silently loses matches


def test_ablation_parse_cache(benchmark, bench_iyp):
    """Parse cost amortized across repeated study queries."""
    import time

    query = (
        "MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName) "
        "WHERE r.rank <= 10 RETURN collect(d.name)"
    )
    benchmark(bench_iyp.run, query)

    start = time.perf_counter()
    for _ in range(200):
        parse(query)
    parse_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(200):
        bench_iyp.engine._parse_cache.get(query) or parse(query)
    cached_time = time.perf_counter() - start
    record_comparison(
        "Ablation 4 - parse cache (200 repeats of a study query)",
        ["mode", "seconds"],
        [
            ["re-parse every run", f"{parse_time:.4f}"],
            ["parse cache", f"{cached_time:.4f}"],
        ],
    )
    assert cached_time < parse_time
