"""Multi-process serving throughput: columnar worker pool vs the
single-process threaded dict server.

Both servers run the same warm workload — a mixed batch of aggregate
queries, issued over real sockets by 8 concurrent keep-alive clients.
Both services run with ``cache_size=1`` so the round-robin workload
always misses the result cache: the measured quantity is query
*execution* throughput (a result-cache hit would only measure socket
serialization).  The threaded dict server executes every query under
one GIL, so it tops out near one core regardless of thread count; the
worker pool forks query processes that share the packed graph segment
and accept from the same listening socket, so throughput scales with
cores.

The pool is swept across a worker curve (powers of two up to the
host's schedulable CPUs, always including the gated worker count) so
``BENCH_multiproc.json`` records the scaling *shape* — where adding
processes stops paying — alongside the single gated point.

Results go to ``benchmarks/BENCH_multiproc.json``.  The 2.5x speedup
floor from the committed ``benchmarks/multiproc_baseline.json`` is a
*parallelism* gate: it is enforced only where parallelism exists (4+
schedulable CPUs, i.e. the CI runner).  On smaller machines the pool
cannot beat the GIL by stacking processes on one core, so the run only
asserts the sanity floor — the pool must stay within ~3x of the
threaded server even when the fork fan-out buys nothing.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

from benchmarks.conftest import record_comparison
from repro.columnar import pack_store
from repro.columnar.pool import WorkerPool
from repro.server import QueryService, create_server
from repro.studies import queries as listings

BENCH_PATH = Path(__file__).parent / "BENCH_multiproc.json"
BASELINE_PATH = Path(__file__).parent / "multiproc_baseline.json"

CPUS = len(os.sched_getaffinity(0))
POOL_WORKERS = max(2, min(4, CPUS))
#: Worker counts for the scaling curve: powers of two up to the host's
#: schedulable CPUs, always including the gated POOL_WORKERS point.
WORKER_CURVE = sorted({w for w in (1, 2, 4, 8) if w <= CPUS} | {POOL_WORKERS})
CLIENT_THREADS = 8
REQUESTS_PER_CLIENT = 40

#: The measured mixed workload: one paper listing plus aggregate
#: counts, approximating a dashboard refresh (each query costs a few
#: to a few tens of milliseconds on the medium world).
WORKLOAD = [
    listings.LISTING_1,
    "MATCH (a:AS) RETURN count(a) AS ases",
    "MATCH (p:Prefix) RETURN count(p) AS prefixes",
    "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN count(a) AS peerings",
    "MATCH (d:DomainName) RETURN count(d) AS domains",
]


def _request(conn: http.client.HTTPConnection, query: str) -> None:
    conn.request(
        "POST",
        "/query",
        body=json.dumps({"query": query}),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    body = response.read()
    assert response.status == 200, (response.status, body[:200])


def _measure_qps(host: str, port: int, warm_passes: int) -> float:
    """Warm the service, then hammer with keep-alive clients and
    return completed requests per second.

    Warm-up uses one connection per request so the kernel spreads the
    passes across every pool worker (keep-alive would pin the whole
    warm phase to whichever worker accepted the connection, leaving the
    others to parse queries and fill materialization caches inside the
    measured window).
    """
    for _ in range(warm_passes):
        for query in WORKLOAD:
            warm = http.client.HTTPConnection(host, port, timeout=30)
            try:
                _request(warm, query)
            finally:
                warm.close()

    errors: list[str] = []

    def client(offset: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for i in range(REQUESTS_PER_CLIENT):
                _request(conn, WORKLOAD[(offset + i) % len(WORKLOAD)])
        except Exception as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(repr(exc))
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(CLIENT_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[:3]
    return CLIENT_THREADS * REQUESTS_PER_CLIENT / elapsed


def test_worker_pool_throughput(bench_iyp):
    # Baseline: the standard threaded server on the dict store.
    service = QueryService(
        bench_iyp.store, max_concurrent=CLIENT_THREADS, cache_size=1
    )
    server = create_server(service, port=0)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    try:
        host, port = server.server_address[:2]
        dict_qps = _measure_qps(host, port, warm_passes=2)
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(10)

    # Contender: the forked columnar pool on the packed segment, swept
    # across the worker curve so the scaling shape is recorded, not
    # just the single gated point.
    curve: list[dict] = []
    for workers in WORKER_CURVE:
        # Pack anew per sweep point: stop() unlinks the shared segment
        # (the pool owns its lifecycle), so a manifest cannot be reused.
        manifest = pack_store(bench_iyp.store)
        pool = WorkerPool(
            manifest,
            workers=workers,
            service_config={"max_concurrent": CLIENT_THREADS, "cache_size": 1},
        )
        try:
            pool.start()
            host, port = pool.address
            qps = _measure_qps(host, port, warm_passes=3 * workers)
        finally:
            pool.stop()
        curve.append(
            {
                "workers": workers,
                "qps": round(qps, 1),
                "speedup_vs_threaded": round(qps / dict_qps, 2),
            }
        )
    by_workers = {point["workers"]: point for point in curve}
    pool_qps = by_workers[POOL_WORKERS]["qps"]

    speedup = pool_qps / dict_qps
    results = {
        "benchmark": "multi-process serving throughput (columnar pool vs threaded dict)",
        "world": "medium",
        "cpu_count": CPUS,
        "pool_workers": POOL_WORKERS,
        "client_threads": CLIENT_THREADS,
        "requests": CLIENT_THREADS * REQUESTS_PER_CLIENT,
        "dict_threaded_qps": round(dict_qps, 1),
        "columnar_pool_qps": round(pool_qps, 1),
        "speedup": round(speedup, 2),
        "worker_scaling": curve,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    record_comparison(
        "Serving throughput (multi-process pool vs threaded)",
        ["configuration", "QPS", "speedup"],
        [["dict store, 1 process (threaded)", results["dict_threaded_qps"], "1.0x"]]
        + [
            [
                f"columnar pool, {point['workers']} process(es)",
                point["qps"],
                f"{point['speedup_vs_threaded']}x",
            ]
            for point in curve
        ],
    )

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    if CPUS >= baseline["min_cpus_for_parallel_gate"]:
        floor = baseline["parallel_speedup_floor"]
        assert speedup >= floor, (
            f"columnar pool only {speedup:.2f}x the threaded dict server "
            f"({pool_qps:.0f} vs {dict_qps:.0f} QPS) on {CPUS} CPUs; "
            f"committed floor is {floor}x"
        )
    else:
        floor = baseline["single_core_sanity_floor"]
        assert speedup >= floor, (
            f"columnar pool collapsed to {speedup:.2f}x the threaded dict "
            f"server ({pool_qps:.0f} vs {dict_qps:.0f} QPS) — below the "
            f"{floor}x sanity floor even for a single-core host"
        )
