"""Table 4 — shared DNS infrastructure: grouping .com/.net/.org domains
by exact nameserver set vs by nameserver /24.

The absolute group sizes scale with the list size (the paper uses 1M
domains); the *shape* is what must hold: /24 groups are orders of
magnitude larger than exact-NS groups.
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_dns_robustness_study


def test_table4_shared_infrastructure(benchmark, bench_iyp, bench_world):
    results = benchmark.pedantic(
        run_dns_robustness_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    scale = len(bench_world.tranco) / 1_000_000
    record_comparison(
        "Table 4 - shared infrastructure groups, .com/.net/.org "
        f"(paper numbers at 1M domains; this world has {len(bench_world.tranco)})",
        ["row", "by NS med", "by NS max", "by /24 med", "by /24 max"],
        [
            ["DNS Robustness (2018, paper)", "163", "9k", "3k", "71k"],
            ["IYP (2024, paper)", "9", "6k", "3.9k", "114k"],
            ["paper 2024 scaled to this world",
             f"{max(1, 9 * scale):.0f}", f"{6000 * scale:.0f}",
             f"{3900 * scale:.0f}", f"{114000 * scale:.0f}"],
            ["this repro", results.cno_by_ns.median, results.cno_by_ns.maximum,
             results.cno_by_slash24.median, results.cno_by_slash24.maximum],
        ],
    )
    assert results.cno_by_slash24.median > results.cno_by_ns.median * 5
    assert results.cno_by_slash24.maximum > results.cno_by_ns.maximum
    assert results.cno_by_ns.median <= 20  # 2024: small exact-set groups
