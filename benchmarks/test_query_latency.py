"""Query-latency benchmark: optimized planner vs the naive executor.

Two query shapes from the paper workload are asserted to be at least
3x faster under the optimizer:

- **typed expansion** — walking one relationship type out of
  high-degree nodes (the `.com` zone node carries thousands of PARENT
  edges next to a handful of MANAGED_BY edges).  The optimized store
  reads the per-(node, type, direction) adjacency partition directly;
  the baseline emulates the old untyped adjacency (scan every incident
  edge, filter by type afterwards).
- **selective multi-pattern join** — a MOAS-style two-pattern MATCH
  where WHERE pins one AS by ASN.  The planner promotes the equality
  into an index seek and reorders the join to start from it; the naive
  executor enumerates every ORIGINATE pair first and filters last.

The full set of paper listings is also timed (optimized vs naive) for
the record.  Results are written to ``benchmarks/BENCH_query.json``;
the measured speedups are gated against the committed baseline in
``benchmarks/query_latency_baseline.json`` — a regression of more than
20% against the committed speedup fails the run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import record_comparison
from repro.cypher import CypherEngine
from repro.graphdb import Direction, GraphStore
from repro.obs.record import record_access
from repro.studies import queries as listings

BENCH_PATH = Path(__file__).parent / "BENCH_query.json"
BASELINE_PATH = Path(__file__).parent / "query_latency_baseline.json"

REPEATS = 5
_RESULTS: dict[str, dict[str, float]] = {}


def _best_of(run, repeats: int = REPEATS) -> float:
    """Best-of-N wall time in milliseconds (min is the standard noise
    rejector for latency microbenchmarks)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def _record(name: str, naive_ms: float, optimized_ms: float, rows: int) -> float:
    speedup = naive_ms / optimized_ms if optimized_ms else float("inf")
    _RESULTS[name] = {
        "naive_ms": round(naive_ms, 3),
        "optimized_ms": round(optimized_ms, 3),
        "speedup": round(speedup, 2),
        "rows": rows,
    }
    return speedup


def _legacy_relationships_of(
    self, node_id, direction=Direction.BOTH, rel_type=None
):
    """Pre-optimization adjacency: one flat incident list per node and
    direction, with the type filter applied after materializing all of
    it — O(total degree) for every typed expansion."""
    record_access("expand")
    relationships = self._relationships
    result = []
    if direction in (Direction.OUT, Direction.BOTH):
        for ids in (self._outgoing.get(node_id) or {}).values():
            result.extend(relationships[i] for i in ids)
    if direction in (Direction.IN, Direction.BOTH):
        dedupe = direction is Direction.BOTH
        for ids in (self._incoming.get(node_id) or {}).values():
            for rel_id in ids:
                rel = relationships[rel_id]
                if dedupe and rel.start_id == rel.end_id:
                    continue
                result.append(rel)
    if rel_type is not None:
        result = [rel for rel in result if rel.type == rel_type]
    return result


class _legacy_adjacency:
    """Context manager swapping in the flat-adjacency emulation."""

    def __enter__(self):
        self._original = GraphStore.relationships_of
        GraphStore.relationships_of = _legacy_relationships_of

    def __exit__(self, *exc):
        GraphStore.relationships_of = self._original
        return False


# ---------------------------------------------------------------------------
# Shape 1: typed expansion from high-degree nodes
# ---------------------------------------------------------------------------

TYPED_EXPANSION = """
MATCH (r:Ranking {name: 'Tranco top 1M'})-[:RANK]-(d:DomainName)
      -[:MANAGED_BY]-(ns:AuthoritativeNameServer)
      -[:RESOLVES_TO]-(ip:IP {af: 4})
RETURN count(DISTINCT ip) AS ips
"""


def test_typed_expansion_speedup(bench_iyp):
    """The Listing-5 walk re-expands popular nameservers once per
    domain that delegates to them, and those hubs carry thousands of
    MANAGED_BY edges next to a couple of RESOLVES_TO edges.  With the
    partitioned adjacency each re-expansion reads just the RESOLVES_TO
    bucket; the flat-adjacency baseline re-materializes the hub's whole
    incident edge list every time."""
    store = bench_iyp.store
    optimized_engine = CypherEngine(store)
    naive_engine = CypherEngine(store, optimize=False)

    rows = len(optimized_engine.run(TYPED_EXPANSION).records)
    assert rows == 1

    optimized_ms = _best_of(lambda: optimized_engine.run(TYPED_EXPANSION), repeats=3)
    with _legacy_adjacency():
        naive_ms = _best_of(lambda: naive_engine.run(TYPED_EXPANSION), repeats=2)

    speedup = _record("typed_expansion", naive_ms, optimized_ms, rows)
    assert speedup >= 3.0, (
        f"typed expansion only {speedup:.1f}x faster "
        f"({naive_ms:.2f}ms -> {optimized_ms:.2f}ms)"
    )


# ---------------------------------------------------------------------------
# Shape 2: multi-pattern MATCH with a selective WHERE equality
# ---------------------------------------------------------------------------


def _moas_asn(engine: CypherEngine) -> int:
    """An ASN that actually participates in a MOAS pair, so the
    selective query returns rows."""
    result = engine.run(
        "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS) "
        "WHERE x.asn <> y.asn RETURN y.asn AS asn ORDER BY asn"
    )
    assert result.records, "benchmark world has no MOAS prefixes"
    return result.records[0]["asn"]


def selective_join_query() -> str:
    return (
        "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix), (y:AS)-[:ORIGINATE]-(p) "
        "WHERE y.asn = $asn AND x.asn <> y.asn "
        "RETURN DISTINCT p.prefix"
    )


def test_selective_join_speedup(bench_iyp):
    store = bench_iyp.store
    optimized_engine = CypherEngine(store)
    naive_engine = CypherEngine(store, optimize=False)
    query = selective_join_query()
    parameters = {"asn": _moas_asn(optimized_engine)}

    optimized = optimized_engine.run(query, parameters)
    naive = naive_engine.run(query, parameters)
    assert optimized.records and len(optimized.records) == len(naive.records)

    plan = "\n".join(optimized_engine.explain(query))
    assert "pushed seek y.asn" in plan  # the equality became a seek

    optimized_ms = _best_of(lambda: optimized_engine.run(query, parameters))
    naive_ms = _best_of(lambda: naive_engine.run(query, parameters), repeats=3)

    speedup = _record("selective_join", naive_ms, optimized_ms, len(optimized.records))
    assert speedup >= 3.0, (
        f"selective join only {speedup:.1f}x faster "
        f"({naive_ms:.2f}ms -> {optimized_ms:.2f}ms)"
    )


# ---------------------------------------------------------------------------
# The paper listings, for the record (no speedup floor: several are
# expansion-bound and the optimizer legitimately leaves them alone)
# ---------------------------------------------------------------------------

TIMED_LISTINGS = ["LISTING_1", "LISTING_2", "LISTING_4", "LISTING_5", "LISTING_6"]


def test_paper_listing_latencies(bench_iyp):
    store = bench_iyp.store
    optimized_engine = CypherEngine(store)
    naive_engine = CypherEngine(store, optimize=False)
    for name in TIMED_LISTINGS:
        query = getattr(listings, name)
        rows = len(optimized_engine.run(query).records)
        optimized_ms = _best_of(lambda: optimized_engine.run(query), repeats=3)
        naive_ms = _best_of(lambda: naive_engine.run(query), repeats=3)
        speedup = _record(name.lower(), naive_ms, optimized_ms, rows)
        # The optimizer must never make a paper query meaningfully
        # slower — planning overhead is bounded.
        assert speedup >= 0.7, f"{name} regressed under the optimizer: {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Emit BENCH_query.json and gate against the committed baseline
# ---------------------------------------------------------------------------


def test_write_bench_json_and_check_baseline(bench_iyp):
    assert {"typed_expansion", "selective_join"} <= set(_RESULTS), (
        "targeted benchmarks did not run before the gate"
    )
    BENCH_PATH.write_text(
        json.dumps(
            {
                "benchmark": "query latency (optimized planner vs naive executor)",
                "world": "medium",
                "repeats": REPEATS,
                "queries": _RESULTS,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    record_comparison(
        "Query latency (optimizer vs naive)",
        ["query", "naive ms", "optimized ms", "speedup"],
        [
            [name, row["naive_ms"], row["optimized_ms"], f"{row['speedup']}x"]
            for name, row in sorted(_RESULTS.items())
        ],
    )

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    failures = []
    for name, floor in baseline["speedups"].items():
        measured = _RESULTS.get(name, {}).get("speedup")
        if measured is None:
            failures.append(f"{name}: no measurement")
        elif measured < 0.8 * floor:
            failures.append(
                f"{name}: speedup {measured:.2f}x is >20% below the "
                f"committed baseline {floor:.2f}x"
            )
    assert not failures, "; ".join(failures)
