"""The conclusion's knowledge-graph applications, measured.

Not a paper table — the paper names embeddings, reasoning, and
recommenders as what IYP "paves the way for".  These benches show the
applications actually work on the built graph: link prediction beats
random by a wide margin, inference materializes real knowledge, and
graph centrality recovers the imported ASRank.
"""

import random

from benchmarks.conftest import record_comparison
from repro.analysis import rank_agreement, run_inference, train_transe
from repro.analysis.embeddings import (
    TransEConfig,
    evaluate_link_prediction,
    extract_triples,
)


def test_embeddings_link_prediction(benchmark, bench_iyp):
    triples = extract_triples(bench_iyp.store)
    rng = random.Random(11)
    # Hold out MANAGED_BY triples (AS -> Organization): a predictable
    # relation with clear structure.
    managed = [t for t in triples if t[1] == "MANAGED_BY"]
    held_out = rng.sample(managed, min(100, len(managed)))

    model = benchmark.pedantic(
        train_transe,
        args=(bench_iyp.store,),
        kwargs={"config": TransEConfig(dimensions=24, epochs=5, batch_size=8192)},
        rounds=1,
        iterations=1,
    )
    metrics = evaluate_link_prediction(model, held_out, k=50)
    n_entities = model.n_entities
    random_hits = 50 / n_entities
    record_comparison(
        "KG applications - TransE link prediction (tail of MANAGED_BY)",
        ["metric", "value"],
        [
            ["entities embedded", f"{n_entities:,}"],
            ["held-out triples", metrics["evaluated"]],
            ["hits@50", f"{metrics['hits_at_k']:.2%}"],
            ["hits@50 of a random ranker", f"{random_hits:.2%}"],
            ["mean rank", f"{metrics['mean_rank']:.0f} of {n_entities:,}"],
        ],
    )
    # The embedding must beat random by at least an order of magnitude.
    assert metrics["hits_at_k"] > 10 * random_hits
    assert metrics["mean_rank"] < n_entities / 4


def test_reasoning_and_centrality(benchmark, bench_iyp):
    # Inference writes links; run it on a private copy so the shared
    # session graph stays pristine for the other benchmarks.
    from repro.core import IYP
    from repro.graphdb.snapshot import snapshot_dict, store_from_dict

    private = IYP(store_from_dict(snapshot_dict(bench_iyp.store)))
    created = benchmark.pedantic(
        run_inference, args=(private,), rounds=1, iterations=1
    )
    agreement = rank_agreement(private, top_k=20)
    record_comparison(
        "KG applications - reasoning and centrality",
        ["metric", "value"],
        [
            *[[f"inferred: {rule}", count] for rule, count in created.items()],
            ["PageRank vs ASRank top-20 overlap", f"{agreement:.0%}"],
        ],
    )
    assert sum(created.values()) > 0
    assert agreement >= 0.5
