"""World-level ablation: DNS-market consolidation drives Table 4.

The DNS Robustness study attributes the giant shared-infrastructure
groups to consolidation onto a few managed-DNS providers.  This
ablation rebuilds the world with a fragmented DNS market (many
providers, heavy self-hosting) and shows the group maxima collapse —
evidence that the reproduction's Table 4 shape comes from the modeled
consolidation, not from an artifact.
"""

import pytest

from benchmarks.conftest import record_comparison
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import run_dns_robustness_study


@pytest.fixture(scope="module")
def consolidated():
    config = WorldConfig(seed=777, scale=0.25, n_domains=4000, n_ases=400)
    iyp, _ = build_iyp(build_world(config))
    return run_dns_robustness_study(iyp), config


@pytest.fixture(scope="module")
def fragmented():
    config = WorldConfig(seed=777, scale=0.25, n_domains=4000, n_ases=400)
    config.n_dns_providers = 400  # scaled: ~100 providers for 4k domains
    config.self_hosted_dns_fraction = 0.5
    iyp, _ = build_iyp(build_world(config))
    return run_dns_robustness_study(iyp), config


def test_ablation_consolidation(benchmark, consolidated, fragmented):
    results_consolidated, _ = consolidated
    results_fragmented, _ = benchmark.pedantic(
        lambda: fragmented, rounds=1, iterations=1
    )
    record_comparison(
        "Ablation 5 - DNS-market consolidation drives Table 4 "
        "(same world size, different DNS market)",
        ["market", "by NS max", "by /24 max", "/24 groups"],
        [
            ["consolidated (default)",
             results_consolidated.cno_by_ns.maximum,
             results_consolidated.cno_by_slash24.maximum,
             results_consolidated.cno_by_slash24.groups],
            ["fragmented (100+ providers, 50% self-hosted)",
             results_fragmented.cno_by_ns.maximum,
             results_fragmented.cno_by_slash24.maximum,
             results_fragmented.cno_by_slash24.groups],
        ],
    )
    # Fragmentation shrinks the biggest shared group substantially and
    # multiplies the number of distinct groups.
    assert (
        results_fragmented.cno_by_slash24.maximum
        < results_consolidated.cno_by_slash24.maximum * 0.6
    )
    assert (
        results_fragmented.cno_by_slash24.groups
        > results_consolidated.cno_by_slash24.groups * 1.5
    )
