"""Section 6.1 — dataset comparison: the injected BGPKIT IPv6 origin
error must surface as IPv6-dominated disagreements against IHR ROV."""

from benchmarks.conftest import record_comparison
from repro.studies import compare_origin_datasets


def test_sec61_dataset_comparison(benchmark, bench_iyp):
    result = benchmark.pedantic(
        compare_origin_datasets, args=(bench_iyp,), rounds=1, iterations=1
    )
    record_comparison(
        "Section 6.1 - dataset comparison (pfx2asn vs ROV origins); paper: "
        "an error affecting IPv6 prefixes in the BGPKIT dataset was found",
        ["metric", "value"],
        [
            ["prefixes compared", result.prefixes_compared],
            ["disagreements", result.total],
            ["IPv4 disagreements", result.ipv4_count],
            ["IPv6 disagreements", result.ipv6_count],
            ["bug signature (IPv6-dominated)", result.ipv6_dominated],
        ],
    )
    assert result.total > 0
    assert result.ipv6_dominated
    assert result.ipv4_count == 0
