"""Figure 5 — country-based SPoF in the DNS chain of ranked domains.

Regenerates the stacked-bar series: per country, how many domains have
a direct / third-party / hierarchical dependency on an AS registered
there.  Shape checks: the US dominates third-party dependency, and the
ccTLD countries the paper names (Russia, China, UK) are hierarchical-
dominant.
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_spof_study


def test_fig5_country_spof(benchmark, bench_iyp):
    results = benchmark.pedantic(
        run_spof_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    rows = [
        [country, counts["direct"], counts["third_party"], counts["hierarchical"]]
        for country, counts in results.top_countries(10)
    ]
    record_comparison(
        "Figure 5 - country-based SPoF (domains depending, by type); "
        "paper shape: US leads all types incl. third-party; RU/CN/GB "
        "hierarchical-heavy",
        ["country", "direct", "third-party", "hierarchical"],
        rows,
    )
    third = {c: v["third_party"] for c, v in results.by_country.items()}
    assert max(third, key=third.get) == "US"
    seen = 0
    for country in ("RU", "CN", "GB"):
        counts = results.by_country.get(country)
        if counts:
            seen += 1
            assert counts["hierarchical"] > counts["direct"]
    assert seen >= 2
    # "Direct dependencies dominate the DNS ecosystem": more domains
    # have a direct dependency than a third-party one.
    assert results.domains_with["direct"] > results.domains_with["third_party"]
