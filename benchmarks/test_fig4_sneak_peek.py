"""Figure 4 — the sneak peek: one popular domain's neighbourhood spans
many underlying datasets (13 in the paper's example)."""

from benchmarks.conftest import record_comparison
from repro.studies import sneak_peek


def test_fig4_sneak_peek(benchmark, bench_iyp, bench_world):
    domain = bench_world.tranco[0]
    peek = benchmark.pedantic(
        sneak_peek, args=(bench_iyp, domain), rounds=3, iterations=1
    )
    record_comparison(
        f"Figure 4 - sneak peek of {domain!r}",
        ["metric", "paper", "this repro"],
        [
            ["datasets fused in one neighbourhood", "13", peek.dataset_count],
            ["direct relationships", "-", len(peek.relationships)],
            ["resolution-chain rows", "-", len(peek.resolution)],
            ["nameserver branch rows", "-", len(peek.nameservers)],
        ],
    )
    assert peek.dataset_count >= 6
    assert peek.resolution and peek.nameservers
