"""Figure 3 / Listings 1-3 — semantic-search query latency.

These are the paper's flagship "three-line queries"; the benchmark
shows they answer in interactive time on a laptop-scale graph.
"""

from benchmarks.conftest import record_comparison
from repro.studies import queries


def test_listing1_originating_ases(benchmark, bench_iyp, bench_world):
    result = benchmark(bench_iyp.run, queries.LISTING_1)
    assert len(result) == len(bench_world.ases)


def test_listing2_moas(benchmark, bench_iyp, bench_world):
    result = benchmark(bench_iyp.run, queries.LISTING_2)
    moas_in_world = sum(
        1 for p in bench_world.prefixes.values() if len(p.origins) > 1
    )
    assert len(result) >= moas_in_world
    record_comparison(
        "Figure 3 / Listings 1-2 - semantic search",
        ["query", "result rows"],
        [
            ["originating ASes (Listing 1)", len(bench_world.ases)],
            ["MOAS prefixes (Listing 2)", len(result)],
        ],
    )


def test_listing3_org_hostnames(benchmark, bench_iyp, bench_world):
    # Use the busiest hosting org in the world as the anchor.
    from collections import Counter

    hosting = Counter(
        bench_world.ases[d.hosting_asn].org_name
        for d in bench_world.domains.values()
    )
    org_name = hosting.most_common(1)[0][0]
    result = benchmark(
        bench_iyp.run, queries.LISTING_3, {"org_name": org_name}
    )
    assert len(result) > 0
