"""Table 3 — DNS best practices for .com/.net/.org SLDs.

Regenerates the 2024 row: coverage, discarded share, and whether the
RFC two-nameserver requirement is not met / met / exceeded, plus the
in-zone-glue fraction.
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_dns_robustness_study

PAPER_2018 = {"Coverage": 56.0, "Discarded": 13.5, "Meet": 39.0,
              "Exceed": 20.0, "Not meet": 28.0, "In-zone glue": 71.0}
PAPER_2024 = {"Coverage": 49.0, "Discarded": 10.0, "Meet": 18.0,
              "Exceed": 67.0, "Not meet": 4.0, "In-zone glue": 76.0}


def test_table3_dns_best_practices(benchmark, bench_iyp):
    results = benchmark.pedantic(
        run_dns_robustness_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    measured = results.table3_row()
    record_comparison(
        "Table 3 - DNS best practices, .com/.net/.org SLDs (%)",
        ["row", *PAPER_2024.keys()],
        [
            ["DNS Robustness (2009-2018, paper)", *PAPER_2018.values()],
            ["IYP (2024, paper)", *PAPER_2024.values()],
            ["this repro", *(f"{v:.1f}" for v in measured.values())],
        ],
    )
    # 2024-regime shape: exceed >> meet >> not-meet.
    assert measured["Exceed"] > measured["Meet"] > measured["Not meet"]
    assert measured["Exceed"] > 50.0
    assert 35.0 < measured["Coverage"] < 60.0
    assert measured["Discarded"] < 18.0
    assert measured["In-zone glue"] > 55.0
