"""Section 5.1 — combining RiPKI and DNS Robustness.

5.1.1: RPKI coverage of nameserver prefixes (48% in the paper) vs the
fraction of domains whose nameservers sit on covered prefixes (84%).
5.1.2: domain-weighted RPKI coverage (78.8% all, 96% CDN-hosted).
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_combined_study, run_ripki_study


def test_sec511_nameserver_rpki(benchmark, bench_iyp):
    combined = benchmark.pedantic(
        run_combined_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    record_comparison(
        "Section 5.1.1 - RPKI coverage of the DNS infrastructure (%)",
        ["metric", "paper", "this repro"],
        [
            ["NS prefixes covered", "48",
             f"{combined.ns_prefixes_covered_pct:.1f}"],
            ["domains on covered NS", "84",
             f"{combined.domains_on_covered_ns_pct:.1f}"],
        ],
    )
    # Concentration: domain-level far above prefix-level coverage.
    assert combined.domains_on_covered_ns_pct > combined.ns_prefixes_covered_pct
    assert combined.ns_prefixes_covered_pct > 30.0


def test_sec512_hosting_consolidation(benchmark, bench_iyp):
    results = benchmark.pedantic(
        run_ripki_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    record_comparison(
        "Section 5.1.2 - web hosting consolidation and RPKI (%)",
        ["metric", "paper", "this repro"],
        [
            ["prefixes covered", "52.2", f"{results.covered_pct:.1f}"],
            ["domains covered", "78.8", f"{results.domains_covered_pct:.1f}"],
            ["CDN prefixes covered", "68.4", f"{results.cdn_pct:.1f}"],
            ["CDN-hosted domains covered", "96", f"{results.cdn_domains_covered_pct:.1f}"],
        ],
    )
    assert results.domains_covered_pct > results.covered_pct
    assert results.cdn_domains_covered_pct > results.cdn_pct
    assert results.cdn_domains_covered_pct > 80.0
