"""The paper's temporal arc: 2015 ("the tragic story of RPKI") vs 2024
("the happier story").

Builds a second knowledge graph from the 2015-era world preset and
regenerates Table 2 and Table 3 for both eras, checking the crossovers
the paper reports: RPKI coverage multiplying ~9x, CDN adoption going
from below 1% to the top of the field, and the nameserver-count mix
flipping from meet-dominated to exceed-dominated.
"""

import pytest

from benchmarks.conftest import record_comparison
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import run_dns_robustness_study, run_ripki_study


@pytest.fixture(scope="module")
def iyp_2015():
    world = build_world(WorldConfig.year2015())
    iyp, report = build_iyp(world)
    assert report.ok
    return iyp


def test_rpki_evolution(benchmark, bench_iyp, iyp_2015):
    results_2015 = benchmark.pedantic(
        run_ripki_study, args=(iyp_2015,), rounds=1, iterations=1
    )
    results_2024 = run_ripki_study(bench_iyp)
    record_comparison(
        "Evolution 2015 -> 2024 - Table 2 regenerated for both eras (%)",
        ["metric", "paper 2015", "repro 2015", "paper 2024", "repro 2024"],
        [
            ["RPKI covered", "6.0", f"{results_2015.covered_pct:.1f}",
             "52.2", f"{results_2024.covered_pct:.1f}"],
            ["CDN covered", "0.9", f"{results_2015.cdn_pct:.1f}",
             "68.4", f"{results_2024.cdn_pct:.1f}"],
            ["RPKI Invalid", "0.09", f"{results_2015.invalid_pct:.2f}",
             "0.12", f"{results_2024.invalid_pct:.2f}"],
        ],
    )
    # The "tragic story": 2015 coverage marginal, CDNs near zero.
    assert results_2015.covered_pct < 15.0
    assert results_2015.cdn_pct < 10.0
    # The "happier story": roughly an order of magnitude more coverage.
    assert results_2024.covered_pct > 5 * results_2015.covered_pct
    # CDNs moved from the bottom to the top of the field.
    assert results_2024.cdn_pct > results_2024.covered_pct
    # Invalids stayed tiny in both eras.
    assert results_2015.invalid_pct < 2.0 and results_2024.invalid_pct < 2.0


def test_dns_practices_evolution(benchmark, bench_iyp, iyp_2015):
    results_2015 = benchmark.pedantic(
        run_dns_robustness_study, args=(iyp_2015,), rounds=1, iterations=1
    )
    results_2024 = run_dns_robustness_study(bench_iyp)
    record_comparison(
        "Evolution 2015 -> 2024 - Table 3 regenerated for both eras (%)",
        ["metric", "paper ~2018", "repro 2015-era", "paper 2024", "repro 2024"],
        [
            ["Meet NS requirements", "39", f"{results_2015.meet_pct:.1f}",
             "18", f"{results_2024.meet_pct:.1f}"],
            ["Exceed NS requirements", "20", f"{results_2015.exceed_pct:.1f}",
             "67", f"{results_2024.exceed_pct:.1f}"],
            ["Not meet", "28", f"{results_2015.not_meet_pct:.1f}",
             "4", f"{results_2024.not_meet_pct:.1f}"],
            ["Discarded", "13.5", f"{results_2015.discarded_pct:.1f}",
             "10", f"{results_2024.discarded_pct:.1f}"],
        ],
    )
    # 2015-era regime: meet dominates, a large not-meet share.
    assert results_2015.meet_pct > results_2015.exceed_pct
    assert results_2015.not_meet_pct > results_2024.not_meet_pct * 3
    # 2024 regime: exceed dominates (the consistent increasing trend).
    assert results_2024.exceed_pct > results_2015.exceed_pct
    assert results_2024.exceed_pct > results_2024.meet_pct
