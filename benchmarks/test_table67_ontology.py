"""Tables 6 & 7 — the ontology, and full-graph schema validation."""

from benchmarks.conftest import record_comparison
from repro.ontology import ENTITIES, RELATIONSHIPS, SchemaValidator


def test_table67_ontology_validation(benchmark, bench_iyp):
    validator = SchemaValidator()
    report = benchmark.pedantic(
        validator.validate, args=(bench_iyp.store,), rounds=1, iterations=1
    )
    used_labels = {
        label
        for label in bench_iyp.store.label_counts()
        if label in ENTITIES
    }
    used_rels = {
        rel_type
        for rel_type in bench_iyp.store.relationship_type_counts()
        if rel_type in RELATIONSHIPS
    }
    record_comparison(
        "Tables 6/7 - ontology",
        ["metric", "paper", "this repro"],
        [
            ["entity types defined", "24", len(ENTITIES)],
            ["relationship types defined", "24", len(RELATIONSHIPS)],
            ["entity types present in graph", "-", len(used_labels)],
            ["relationship types present in graph", "-", len(used_rels)],
            ["schema violations", "0", len(report.violations)],
        ],
    )
    assert len(ENTITIES) == 24
    assert len(RELATIONSHIPS) == 24
    assert report.ok, [str(v) for v in report.violations[:5]]
    assert len(used_labels) >= 20
    assert len(used_rels) >= 20
