"""Tables 1 & 8 — the dataset inventory: 46 datasets, ~23 organizations,
and per-crawler import throughput."""


from benchmarks.conftest import record_comparison
from repro.core import IYP
from repro.datasets import DATASETS
from repro.datasets.registry import make_fetcher, organizations
from repro.pipeline import build_iyp


def test_table8_inventory(benchmark, bench_world):
    def import_one_dataset():
        iyp = IYP()
        fetcher = make_fetcher(bench_world)
        spec = next(s for s in DATASETS if s.name == "bgpkit.pfx2as")
        spec.crawler_factory(iyp, fetcher).run()
        return iyp

    iyp = benchmark.pedantic(import_one_dataset, rounds=2, iterations=1)
    record_comparison(
        "Table 8 - dataset inventory",
        ["metric", "paper", "this repro"],
        [
            ["datasets", "46", len(DATASETS)],
            ["organizations", "23", len(organizations())],
            ["pfx2as ORIGINATE links imported", "-",
             iyp.store.relationship_count],
        ],
    )
    assert len(DATASETS) == 46
    assert iyp.store.relationship_count > 1000


def test_per_crawler_timings(benchmark, bench_world):
    def build_all():
        iyp, report = build_iyp(bench_world, postprocess=False)
        return report

    report = benchmark.pedantic(build_all, rounds=1, iterations=1)
    slowest = sorted(report.crawler_seconds.items(), key=lambda kv: -kv[1])[:5]
    record_comparison(
        "Per-crawler import times (5 slowest)",
        ["dataset", "seconds"],
        [[name, f"{seconds:.2f}"] for name, seconds in slowest],
    )
    assert report.ok
