"""Section 3.1 — implementation scale: graph construction throughput and
snapshot size.

The paper: a full IYP snapshot is ~4GB compressed / 40GB loaded, built
four times a month, queryable from a small VM.  Here the analogous
numbers for the synthetic medium world.
"""

import os

from benchmarks.conftest import record_comparison
from repro.graphdb import load_snapshot, save_snapshot
from repro.pipeline import build_iyp


def test_sec31_full_build(benchmark, bench_world):
    def build():
        iyp, report = build_iyp(bench_world)
        return iyp, report

    iyp, report = benchmark.pedantic(build, rounds=1, iterations=1)
    throughput = report.relationships / max(report.total_seconds, 1e-9)
    record_comparison(
        "Section 3.1 - graph construction",
        ["metric", "value"],
        [
            ["nodes", report.nodes],
            ["relationships", report.relationships],
            ["build seconds", f"{report.total_seconds:.1f}"],
            ["links/second", f"{throughput:,.0f}"],
        ],
    )
    assert report.ok
    assert report.nodes > 10_000


def test_sec31_snapshot_roundtrip(benchmark, bench_iyp, tmp_path):
    path = tmp_path / "iyp.json.gz"

    def snapshot_cycle():
        save_snapshot(bench_iyp.store, path)
        return load_snapshot(path)

    restored = benchmark.pedantic(snapshot_cycle, rounds=1, iterations=1)
    size_mb = os.path.getsize(path) / 1e6
    record_comparison(
        "Section 3.1 - snapshot (paper: ~4GB compressed for the 1M-scale graph)",
        ["metric", "value"],
        [
            ["snapshot size (MB, this world)", f"{size_mb:.1f}"],
            ["nodes restored", restored.node_count],
            ["relationships restored", restored.relationship_count],
        ],
    )
    assert restored.node_count == bench_iyp.store.node_count
    assert restored.relationship_count == bench_iyp.store.relationship_count
