"""Figure 6 — AS-based SPoF in the DNS chain.

Shape checks from the paper: an Akamai-shaped AS exists (mostly a
third-party dependency: it hosts DNS for DNS-hosting companies), and a
GoDaddy-shaped AS exists (mostly direct: DNS for end customers).
"""

from benchmarks.conftest import record_comparison
from repro.studies import run_spof_study


def test_fig6_as_spof(benchmark, bench_iyp):
    results = benchmark.pedantic(
        run_spof_study, args=(bench_iyp,), rounds=1, iterations=1
    )
    rows = [
        [
            results.as_names.get(asn, str(asn)),
            counts["direct"],
            counts["third_party"],
            counts["hierarchical"],
        ]
        for asn, counts in results.top_ases(10)
    ]
    record_comparison(
        "Figure 6 - AS-based SPoF (domains depending, by type); paper "
        "shape: one AS mostly third-party (Akamai-like), one mostly "
        "direct (GoDaddy-like)",
        ["AS", "direct", "third-party", "hierarchical"],
        rows,
    )
    akamai_like = [
        counts
        for counts in results.by_as.values()
        if counts["third_party"] > 3 * max(counts["direct"], 1)
        and counts["third_party"] > 50
    ]
    godaddy_like = [
        counts
        for counts in results.by_as.values()
        if counts["direct"] > 3 * max(counts["third_party"], 1)
        and counts["direct"] > 50
    ]
    assert akamai_like, "no third-party-dominant AS found"
    assert godaddy_like, "no direct-dominant AS found"
