"""Legacy setup shim.

The execution environment has setuptools without the ``wheel`` package,
so PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-build-isolation`` (and the legacy
``--no-use-pep517`` path) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
