"""Centrality of ASes in the knowledge graph vs published rankings.

PageRank over the AS-level subgraph (PEERS_WITH and DEPENDS_ON links)
gives an independent importance measure; comparing it against CAIDA's
ASRank (imported as RANK links) quantifies how much of the published
ranking is recoverable from graph structure alone.
"""

from __future__ import annotations

from repro.core import IYP


def as_pagerank(
    iyp: IYP,
    damping: float = 0.85,
    iterations: int = 40,
) -> dict[int, float]:
    """PageRank over AS-to-AS links; returns asn -> score."""
    rows = iyp.run(
        """
        MATCH (a:AS)-[r]->(b:AS)
        WHERE type(r) IN ['PEERS_WITH', 'DEPENDS_ON']
        RETURN a.asn AS src, b.asn AS dst
        """
    ).records
    asns = sorted(
        {row["src"] for row in rows} | {row["dst"] for row in rows}
    )
    if not asns:
        return {}
    index = {asn: i for i, asn in enumerate(asns)}
    out_links: list[list[int]] = [[] for _ in asns]
    for row in rows:
        out_links[index[row["src"]]].append(index[row["dst"]])
    n = len(asns)
    rank = [1.0 / n] * n
    for _ in range(iterations):
        incoming = [0.0] * n
        dangling = 0.0
        for i, targets in enumerate(out_links):
            if not targets:
                dangling += rank[i]
                continue
            share = rank[i] / len(targets)
            for j in targets:
                incoming[j] += share
        base = (1.0 - damping) / n + damping * dangling / n
        rank = [base + damping * incoming[i] for i in range(n)]
    return {asn: rank[index[asn]] for asn in asns}


def asrank_positions(iyp: IYP) -> dict[int, int]:
    """CAIDA ASRank positions from the knowledge graph."""
    rows = iyp.run(
        """
        MATCH (a:AS)-[r:RANK]->(:Ranking {name:'CAIDA ASRank'})
        RETURN a.asn AS asn, r.rank AS rank
        """
    ).records
    return {row["asn"]: row["rank"] for row in rows}


def rank_agreement(iyp: IYP, top_k: int = 20) -> float:
    """Overlap between PageRank's and ASRank's top-k AS sets, in [0, 1]."""
    pagerank = as_pagerank(iyp)
    asrank = asrank_positions(iyp)
    if not pagerank or not asrank:
        return 0.0
    top_pagerank = {
        asn
        for asn, _score in sorted(
            pagerank.items(), key=lambda kv: -kv[1]
        )[:top_k]
    }
    top_asrank = {
        asn for asn, rank in sorted(asrank.items(), key=lambda kv: kv[1])[:top_k]
    }
    return len(top_pagerank & top_asrank) / top_k
