"""Knowledge-graph embeddings: a TransE implementation over IYP.

TransE (Bordes et al., 2013) embeds entities and relations so that
``head + relation ≈ tail`` for true triples.  Training uses margin
ranking with uniform negative sampling and SGD — all in numpy, small
enough to train on a laptop-scale IYP snapshot in seconds.

Use cases mirror the paper's conclusion: nearest-neighbour queries over
entity vectors (the recommender building block) and link prediction
(knowledge completion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphdb.store import GraphStore


@dataclass
class TransEConfig:
    """Training hyperparameters."""

    dimensions: int = 32
    epochs: int = 30
    learning_rate: float = 0.05
    margin: float = 1.0
    batch_size: int = 512
    seed: int = 7


class TransEModel:
    """Trained entity/relation embeddings with query helpers."""

    def __init__(
        self,
        entity_index: dict[int, int],
        relation_index: dict[str, int],
        entity_vectors: np.ndarray,
        relation_vectors: np.ndarray,
    ):
        self._entity_index = entity_index
        self._relation_index = relation_index
        self.entity_vectors = entity_vectors
        self.relation_vectors = relation_vectors
        self._reverse_entity = {v: k for k, v in entity_index.items()}

    @property
    def n_entities(self) -> int:
        return len(self._entity_index)

    @property
    def n_relations(self) -> int:
        return len(self._relation_index)

    def entity_vector(self, node_id: int) -> np.ndarray:
        """Embedding of a graph node (by node id)."""
        return self.entity_vectors[self._entity_index[node_id]]

    def score(self, head_id: int, rel_type: str, tail_id: int) -> float:
        """Plausibility of a triple: -||h + r - t|| (higher is better)."""
        head = self.entity_vector(head_id)
        tail = self.entity_vector(tail_id)
        relation = self.relation_vectors[self._relation_index[rel_type]]
        return -float(np.linalg.norm(head + relation - tail))

    def nearest_entities(self, node_id: int, k: int = 5) -> list[tuple[int, float]]:
        """The k nearest entities in embedding space (node id, distance)."""
        anchor = self.entity_vector(node_id)
        distances = np.linalg.norm(self.entity_vectors - anchor, axis=1)
        order = np.argsort(distances)
        results = []
        for index in order:
            candidate = self._reverse_entity[int(index)]
            if candidate == node_id:
                continue
            results.append((candidate, float(distances[index])))
            if len(results) == k:
                break
        return results

    def predict_tails(
        self, head_id: int, rel_type: str, k: int = 5
    ) -> list[tuple[int, float]]:
        """Link prediction: the k most plausible tails for (head, rel)."""
        head = self.entity_vector(head_id)
        relation = self.relation_vectors[self._relation_index[rel_type]]
        target = head + relation
        distances = np.linalg.norm(self.entity_vectors - target, axis=1)
        order = np.argsort(distances)
        results = []
        for index in order:
            candidate = self._reverse_entity[int(index)]
            if candidate == head_id:
                continue
            results.append((candidate, float(distances[index])))
            if len(results) == k:
                break
        return results


def evaluate_link_prediction(
    model: TransEModel,
    test_triples: list[tuple[int, str, int]],
    k: int = 10,
) -> dict[str, float]:
    """Hits@k and mean rank for tail prediction on held-out triples.

    For each (head, rel, tail) test triple, rank every entity as a tail
    candidate by distance to ``head + rel``; report how often the true
    tail lands in the top k, and its mean rank.
    """
    if not test_triples:
        return {"hits_at_k": 0.0, "mean_rank": 0.0, "evaluated": 0}
    hits = 0
    rank_sum = 0
    evaluated = 0
    for head_id, rel_type, tail_id in test_triples:
        try:
            head = model.entity_vector(head_id)
            relation = model.relation_vectors[model._relation_index[rel_type]]
            tail_index = model._entity_index[tail_id]
        except KeyError:
            continue
        target = head + relation
        distances = np.linalg.norm(model.entity_vectors - target, axis=1)
        rank = int(np.sum(distances < distances[tail_index])) + 1
        rank_sum += rank
        if rank <= k:
            hits += 1
        evaluated += 1
    if not evaluated:
        return {"hits_at_k": 0.0, "mean_rank": 0.0, "evaluated": 0}
    return {
        "hits_at_k": hits / evaluated,
        "mean_rank": rank_sum / evaluated,
        "evaluated": evaluated,
    }


def extract_triples(store: GraphStore) -> list[tuple[int, str, int]]:
    """All (head id, relation type, tail id) triples of the graph.

    Parallel links (same triple from several datasets) collapse to one
    training triple.
    """
    triples = {
        (rel.start_id, rel.type, rel.end_id)
        for rel in store.iter_relationships()
    }
    return sorted(triples)


def train_transe(
    store: GraphStore, config: TransEConfig | None = None
) -> TransEModel:
    """Train TransE on every triple in the store."""
    config = config or TransEConfig()
    rng = np.random.default_rng(config.seed)
    triples = extract_triples(store)
    if not triples:
        raise ValueError("cannot train embeddings on an empty graph")

    entity_ids = sorted({t[0] for t in triples} | {t[2] for t in triples})
    relation_types = sorted({t[1] for t in triples})
    entity_index = {node_id: i for i, node_id in enumerate(entity_ids)}
    relation_index = {rel: i for i, rel in enumerate(relation_types)}

    bound = 6.0 / np.sqrt(config.dimensions)
    entities = rng.uniform(-bound, bound, (len(entity_ids), config.dimensions))
    relations = rng.uniform(-bound, bound, (len(relation_types), config.dimensions))
    relations /= np.maximum(np.linalg.norm(relations, axis=1, keepdims=True), 1e-9)

    heads = np.array([entity_index[t[0]] for t in triples])
    rels = np.array([relation_index[t[1]] for t in triples])
    tails = np.array([entity_index[t[2]] for t in triples])
    n_triples = len(triples)

    for _epoch in range(config.epochs):
        entities /= np.maximum(np.linalg.norm(entities, axis=1, keepdims=True), 1e-9)
        order = rng.permutation(n_triples)
        for start in range(0, n_triples, config.batch_size):
            batch = order[start : start + config.batch_size]
            h, r, t = heads[batch], rels[batch], tails[batch]
            # Corrupt head or tail uniformly.
            corrupt_tail = rng.random(len(batch)) < 0.5
            negatives = rng.integers(0, len(entity_ids), len(batch))
            neg_h = np.where(corrupt_tail, h, negatives)
            neg_t = np.where(corrupt_tail, negatives, t)

            pos_diff = entities[h] + relations[r] - entities[t]
            neg_diff = entities[neg_h] + relations[r] - entities[neg_t]
            pos_dist = np.linalg.norm(pos_diff, axis=1)
            neg_dist = np.linalg.norm(neg_diff, axis=1)
            violating = config.margin + pos_dist - neg_dist > 0
            if not np.any(violating):
                continue
            # Gradient of the margin loss wrt each participant.
            pos_grad = pos_diff[violating] / np.maximum(
                pos_dist[violating, None], 1e-9
            )
            neg_grad = neg_diff[violating] / np.maximum(
                neg_dist[violating, None], 1e-9
            )
            lr = config.learning_rate
            np.add.at(entities, h[violating], -lr * pos_grad)
            np.add.at(entities, t[violating], lr * pos_grad)
            np.add.at(relations, r[violating], -lr * (pos_grad - neg_grad))
            np.add.at(entities, neg_h[violating], lr * neg_grad)
            np.add.at(entities, neg_t[violating], -lr * neg_grad)

    entities /= np.maximum(np.linalg.norm(entities, axis=1, keepdims=True), 1e-9)
    return TransEModel(entity_index, relation_index, entities, relations)
