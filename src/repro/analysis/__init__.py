"""Knowledge-graph applications on top of IYP.

The paper's conclusion names knowledge reasoning, recommender systems,
and knowledge-graph embeddings as the applications IYP paves the way
for.  This package implements working versions of each:

- :mod:`repro.analysis.reasoning` — a rule engine that materializes
  implicit knowledge as new, provenance-stamped links;
- :mod:`repro.analysis.embeddings` — TransE embeddings trained on the
  graph's triples, with link prediction and nearest-neighbour queries
  (the recommender building block);
- :mod:`repro.analysis.centrality` — PageRank over the AS-level
  subgraph, comparable against CAIDA's ASRank and IHR hegemony.
"""

from repro.analysis.centrality import as_pagerank, rank_agreement
from repro.analysis.embeddings import TransEConfig, TransEModel, train_transe
from repro.analysis.reasoning import (
    DEFAULT_RULES,
    InferenceRule,
    run_inference,
)

__all__ = [
    "DEFAULT_RULES",
    "InferenceRule",
    "TransEConfig",
    "TransEModel",
    "as_pagerank",
    "rank_agreement",
    "run_inference",
    "train_transe",
]
