"""Knowledge reasoning: rule-based inference over the knowledge graph.

Each rule is a Cypher query whose rows describe links to materialize.
Inferred links carry an ``iyp.inference.<rule>`` provenance so they can
be selected or discarded like any dataset — the same mechanism IYP uses
for its refinement pass.

The default rules make knowledge explicit that is implicit in the
imported data:

- ``sibling_symmetry``   — SIBLING_OF holds in both directions;
- ``prefix_org``         — a prefix is managed by the organization of
  its (only) origin AS;
- ``ip_country``         — an IP inherits the registration country of
  its covering prefix;
- ``hostname_as``        — a hostname is hosted in the AS originating
  the prefix of its address (HOSTED_BY would be a new ontology term, so
  the rule emits the existing LOCATED_IN).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import IYP, Reference


@dataclass(frozen=True)
class InferenceRule:
    """One inference rule: a query and the link each row implies.

    ``query`` must return columns ``start`` and ``end`` bound to nodes;
    ``rel_type`` is the relationship type to create between them.
    """

    name: str
    description: str
    query: str
    rel_type: str


DEFAULT_RULES: tuple[InferenceRule, ...] = (
    InferenceRule(
        name="sibling_symmetry",
        description="SIBLING_OF is symmetric: materialize the reverse link.",
        query="""
            MATCH (a:AS)-[:SIBLING_OF]->(b:AS)
            WHERE NOT (b)-[:SIBLING_OF]->(a)
            RETURN b AS start, a AS end
        """,
        rel_type="SIBLING_OF",
    ),
    InferenceRule(
        name="prefix_org",
        description="A prefix is managed by its origin AS's organization.",
        query="""
            MATCH (o:Organization)<-[:MANAGED_BY]-(a:AS)-[:ORIGINATE]->(p:Prefix)
            WHERE NOT (p)-[:MANAGED_BY]-(:Organization)
            RETURN DISTINCT p AS start, o AS end
        """,
        rel_type="MANAGED_BY",
    ),
    InferenceRule(
        name="ip_country",
        description="An IP inherits the registration country of its prefix.",
        query="""
            MATCH (i:IP)-[:PART_OF]->(p:Prefix)-[:COUNTRY]->(c:Country)
            WHERE NOT (i)-[:COUNTRY]-(:Country)
            RETURN DISTINCT i AS start, c AS end
        """,
        rel_type="COUNTRY",
    ),
)


def run_inference(
    iyp: IYP,
    rules: tuple[InferenceRule, ...] = DEFAULT_RULES,
    max_iterations: int = 3,
) -> dict[str, int]:
    """Apply rules to fixpoint (bounded); returns links created per rule.

    Rules may enable each other (e.g. symmetry then transitivity), so
    the engine loops until an iteration creates nothing new or the
    bound is hit.
    """
    created: dict[str, int] = {rule.name: 0 for rule in rules}
    for _ in range(max_iterations):
        progress = 0
        for rule in rules:
            reference = Reference(
                organization="IYP",
                dataset_name=f"iyp.inference.{rule.name}",
            )
            rows = iyp.run(rule.query).records
            for row in rows:
                iyp.add_link(row["start"], rule.rel_type, row["end"],
                             reference=reference)
            created[rule.name] += len(rows)
            progress += len(rows)
        if not progress:
            break
    return created
