"""Directory watcher: keep the served graph current as the archive grows.

The paper's weekly cadence means a serving instance goes stale the
moment a new dump lands.  :class:`ArchiveWatcher` closes that gap with
zero downtime: a daemon thread polls the archive manifest and, when a
new latest entry appears, brings the running
:class:`~repro.server.app.QueryService` up to date — in-flight queries
finish against the old state, new queries see the new one.

Two mechanisms, chosen per entry:

- **swap** (``repro serve --watch``): load the entry in the background
  and atomically swap the whole serving state — always correct, O(world)
  per update;
- **follow** (``repro serve --follow``): when the new entries form a
  delta chain on top of the currently served label and the store backend
  supports in-place application, apply each
  :class:`~repro.delta.records.DeltaBatch` under the store's write lock
  instead — O(changes), no reload, no swap.  Anything that breaks the
  chain (a full snapshot landed, the base checksum disagrees, the apply
  fails) falls back to a full load-and-swap.

Polling is cheap when nothing happens: the manifest's ``(mtime, size)``
signature is cached and unchanged manifests are never re-read or
re-parsed (``skipped_polls`` counts those fast exits).
"""

from __future__ import annotations

import logging
import threading

log = logging.getLogger("repro.archive")


class ArchiveWatcher:
    """Polls an archive and keeps the service on the latest entry."""

    def __init__(self, service, archive, interval: float = 5.0,
                 follow: bool = False):
        self.service = service
        self.archive = archive
        self.interval = interval
        self.follow = follow
        self.swaps = 0
        self.delta_applies = 0
        self.skipped_polls = 0
        self._manifest_signature: tuple[int, int] | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="archive-watcher", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def _poll_entries(self):
        """Manifest entries, or None when unchanged/unreadable.

        The stat signature is recorded only after a successful parse, so
        a torn write (manifest mid-replace) is retried next poll.
        """
        try:
            stat = self.archive.manifest_path.stat()
        except OSError:
            return None
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature == self._manifest_signature:
            self.skipped_polls += 1
            return None
        try:
            entries = self.archive.entries()
        except Exception:  # noqa: BLE001 - a torn manifest write mid-read
            return None
        self._manifest_signature = signature
        return entries

    def check_once(self) -> bool:
        """One poll; True when the service moved to a newer entry."""
        entries = self._poll_entries()
        if not entries:
            return False
        latest = entries[-1]
        current = self.service.snapshot_label
        if latest.label == current:
            return False
        if self.follow and self._apply_pending_deltas(entries, latest, current):
            return True
        try:
            self.service.load_and_swap(latest.label)
        except Exception as exc:  # noqa: BLE001 - keep serving the old store
            log.warning("archive watcher: swap to %r failed: %s",
                        latest.label, exc)
            self._manifest_signature = None  # retry even if nothing new lands
            return False
        self.swaps += 1
        log.info("archive watcher: swapped to %r", latest.label)
        return True

    def _apply_pending_deltas(self, entries, latest, current: str | None) -> bool:
        """Try to walk from ``current`` to ``latest`` by applying deltas.

        Returns False (caller falls back to load-and-swap) whenever the
        pending entries are not a clean delta chain rooted at what we
        serve, the backend cannot apply in place, or an apply fails.
        """
        if current is None or not hasattr(self.service, "apply_delta"):
            return False
        store = getattr(self.service, "store", None)
        if not hasattr(store, "apply_delta"):
            return False
        by_label = {entry.label: entry for entry in entries}
        served = by_label.get(current)
        if served is None:
            return False
        chain = []
        cursor = latest
        while cursor.label != current:
            if cursor.kind != "delta" or len(chain) >= len(entries):
                return False
            chain.append(cursor)
            cursor = by_label.get(cursor.base)
            if cursor is None:
                return False
        try:
            from repro.delta.format import load_delta

            expected_checksum = served.checksum
            for entry in reversed(chain):
                batch, meta = load_delta(self.archive.path(entry))
                if meta.get("base_checksum") != expected_checksum:
                    raise ValueError(
                        f"{entry.label}: base checksum mismatch "
                        f"(chain expects {expected_checksum[:12]}…)"
                    )
                self.service.apply_delta(batch, label=entry.label)
                self.delta_applies += 1
                expected_checksum = entry.checksum
        except Exception as exc:  # noqa: BLE001 - fall back to full swap
            log.warning(
                "archive watcher: delta follow to %r failed (%s); "
                "falling back to load-and-swap", latest.label, exc,
            )
            return False
        log.info("archive watcher: applied %d delta(s), now at %r",
                 len(chain), latest.label)
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.check_once()
