"""Directory watcher: hot-swap the served graph when the archive grows.

The paper's weekly cadence means a serving instance goes stale the
moment a new dump lands.  :class:`ArchiveWatcher` closes that gap with
zero downtime: a daemon thread polls the archive manifest and, when a
new latest entry appears, loads it in the background and atomically
swaps it into the running :class:`~repro.server.app.QueryService` —
in-flight queries finish against the old store, new queries see the new
one.
"""

from __future__ import annotations

import logging
import threading

log = logging.getLogger("repro.archive")


class ArchiveWatcher:
    """Polls an archive and swaps the service to each new latest entry."""

    def __init__(self, service, archive, interval: float = 5.0):
        self.service = service
        self.archive = archive
        self.interval = interval
        self.swaps = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="archive-watcher", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def _latest_label(self) -> str | None:
        try:
            labels = self.archive.labels()
        except Exception:  # noqa: BLE001 - a torn manifest write mid-read
            return None
        return labels[-1] if labels else None

    def check_once(self) -> bool:
        """One poll: swap if the latest entry changed; True when swapped."""
        latest = self._latest_label()
        if latest is None or latest == self.service.snapshot_label:
            return False
        try:
            self.service.load_and_swap(latest)
        except Exception as exc:  # noqa: BLE001 - keep serving the old store
            log.warning("archive watcher: swap to %r failed: %s", latest, exc)
            return False
        self.swaps += 1
        log.info("archive watcher: swapped to %r", latest)
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.check_once()
