"""The snapshot archive: a managed directory of dated graph dumps.

The paper distributes IYP as weekly Neo4j dumps that users download and
run locally; its Limitations section calls longitudinal work across
those dumps a manual, multi-instance chore.  :class:`SnapshotArchive`
is the missing management layer: a directory of snapshots plus a JSON
manifest recording, per entry, the format version, a SHA-256 checksum,
node/relationship counts, build metadata from the pipeline's
``BuildReport``, and the identity-level delta against the previous
entry (computed with :mod:`repro.core.diff`).

Because snapshot bytes are deterministic, the archive deduplicates by
checksum: archiving a store whose bytes match an existing entry records
a new manifest entry pointing at the existing file instead of writing a
second copy.  ``prune`` respects that sharing — a file is only deleted
once no remaining entry references it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.archive.format import (
    SnapshotFormatError,
    is_v2_snapshot,
    read_meta,
)
from repro.core.diff import snapshot_diff
from repro.graphdb.snapshot import load_snapshot, save_snapshot
from repro.graphdb.store import GraphStore
from repro.obs import utc_timestamp

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass
class ArchiveEntry:
    """One archived snapshot, as recorded in the manifest."""

    label: str
    filename: str
    format: int
    checksum: str
    nodes: int
    relationships: int
    created_at: str = ""
    build: dict[str, Any] | None = None
    delta: dict[str, Any] | None = None
    #: Serialized :class:`repro.analytics.AnalyticsReport` computed at
    #: build time — statistics plus precomputed procedure rows.  Older
    #: manifests simply lack the key (loaded as None).
    analytics: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "filename": self.filename,
            "format": self.format,
            "checksum": self.checksum,
            "nodes": self.nodes,
            "relationships": self.relationships,
            "created_at": self.created_at,
            "build": self.build,
            "delta": self.delta,
            "analytics": self.analytics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchiveEntry":
        return cls(
            label=data["label"],
            filename=data["filename"],
            format=int(data["format"]),
            checksum=data["checksum"],
            nodes=int(data["nodes"]),
            relationships=int(data["relationships"]),
            created_at=data.get("created_at", ""),
            build=data.get("build"),
            delta=data.get("delta"),
            analytics=data.get("analytics"),
        )


@dataclass
class VerificationReport:
    """Outcome of :meth:`SnapshotArchive.verify`."""

    entries_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


class SnapshotArchive:
    """A directory of snapshots governed by a JSON manifest."""

    def __init__(self, root: str | Path, retention: int | None = None):
        """``retention`` keeps only the newest N entries after each add."""
        self.root = Path(root)
        self.retention = retention
        self.root.mkdir(parents=True, exist_ok=True)

    # -- manifest ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def entries(self) -> list[ArchiveEntry]:
        """All entries, oldest first (manifest order is chronological)."""
        if not self.manifest_path.exists():
            return []
        data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        return [ArchiveEntry.from_dict(item) for item in data.get("snapshots", ())]

    def labels(self) -> list[str]:
        return [entry.label for entry in self.entries()]

    def _write_manifest(self, entries: list[ArchiveEntry]) -> None:
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "snapshots": [entry.to_dict() for entry in entries],
        }
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(self.manifest_path)

    # -- adding -----------------------------------------------------------

    def add(
        self,
        store: GraphStore,
        label: str,
        *,
        format: int = 2,
        build: Mapping[str, Any] | None = None,
        created_at: str = "",
        delta: bool = True,
        analytics: Mapping[str, Any] | None = None,
    ) -> ArchiveEntry:
        """Archive a store under ``label``; returns the manifest entry.

        The snapshot is written to a temporary file first; if its
        checksum matches an existing entry the new entry shares that
        file (checksum dedup).  With ``delta`` (the default) the
        identity-level diff summary against the current latest entry is
        computed and stored on the new entry.  ``analytics`` (a
        serialized :class:`repro.analytics.AnalyticsReport`) is stored
        verbatim on the manifest entry; snapshot bytes and checksums are
        unaffected.  ``created_at`` defaults to the current UTC time —
        the freshness signal data-quality telemetry reads back.
        """
        if not created_at:
            created_at = utc_timestamp()
        entries = self.entries()
        if any(entry.label == label for entry in entries):
            raise ValueError(f"archive already has a snapshot labelled {label!r}")
        suffix = ".iyp2" if format == 2 else ".json.gz"
        tmp = self.root / f".{label}{suffix}.tmp"
        save_snapshot(store, tmp, format=format)
        checksum = _sha256(tmp)
        existing = next((e for e in entries if e.checksum == checksum), None)
        if existing is not None:
            tmp.unlink()
            filename = existing.filename
        else:
            filename = f"{label}{suffix}"
            tmp.replace(self.root / filename)
        delta_record = None
        if delta and entries:
            previous = entries[-1]
            if previous.checksum == checksum:
                delta_record = {"vs": previous.label, "identical": True}
            else:
                diff = snapshot_diff(self.load(previous.label), store)
                delta_record = {
                    "vs": previous.label,
                    "identical": diff.unchanged,
                    **diff.summary(),
                }
        entry = ArchiveEntry(
            label=label,
            filename=filename,
            format=format,
            checksum=checksum,
            nodes=store.node_count,
            relationships=store.relationship_count,
            created_at=created_at,
            build=dict(build) if build is not None else None,
            delta=delta_record,
            analytics=dict(analytics) if analytics is not None else None,
        )
        entries.append(entry)
        self._write_manifest(entries)
        if self.retention is not None:
            self.prune(self.retention)
        return entry

    # -- resolving and loading --------------------------------------------

    def resolve(self, selector: str) -> ArchiveEntry:
        """Resolve a selector to an entry.

        ``latest`` picks the newest entry; otherwise an exact label
        match wins, then a unique label prefix.  Raises ``KeyError``
        when nothing (or more than one prefix candidate) matches.
        """
        entries = self.entries()
        if not entries:
            raise KeyError("archive is empty")
        if selector == "latest":
            return entries[-1]
        for entry in entries:
            if entry.label == selector:
                return entry
        candidates = [e for e in entries if e.label.startswith(selector)]
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            names = ", ".join(e.label for e in candidates)
            raise KeyError(f"ambiguous snapshot selector {selector!r}: {names}")
        raise KeyError(f"no archived snapshot matches {selector!r}")

    def path(self, entry: ArchiveEntry) -> Path:
        return self.root / entry.filename

    def load(self, selector: str | ArchiveEntry) -> GraphStore:
        """Load an archived snapshot into a fresh store."""
        entry = selector if isinstance(selector, ArchiveEntry) else self.resolve(selector)
        return load_snapshot(self.path(entry))

    def info(self, selector: str) -> dict[str, Any]:
        """One entry's manifest record plus its on-disk size."""
        entry = self.resolve(selector)
        path = self.path(entry)
        record = entry.to_dict()
        record["bytes"] = path.stat().st_size if path.exists() else None
        return record

    # -- integrity ---------------------------------------------------------

    def verify(self, deep: bool = False) -> VerificationReport:
        """Check every entry: file present, checksum intact, counts sane.

        The shallow pass re-hashes each file and, for v2 snapshots,
        cross-checks the manifest counts against the file's META section.
        ``deep`` additionally loads every snapshot and re-counts the
        graph — catching decode regressions, not just bit rot.
        """
        report = VerificationReport()
        for entry in self.entries():
            report.entries_checked += 1
            path = self.path(entry)
            if not path.exists():
                report.problems.append(f"{entry.label}: missing file {entry.filename}")
                continue
            checksum = _sha256(path)
            if checksum != entry.checksum:
                report.problems.append(
                    f"{entry.label}: checksum mismatch "
                    f"(manifest {entry.checksum[:12]}…, file {checksum[:12]}…)"
                )
                continue
            if entry.format == 2:
                try:
                    meta = read_meta(path)
                except SnapshotFormatError as exc:
                    report.problems.append(f"{entry.label}: {exc}")
                    continue
                if (meta["nodes"], meta["relationships"]) != (
                    entry.nodes, entry.relationships
                ):
                    report.problems.append(
                        f"{entry.label}: META counts {meta['nodes']}/"
                        f"{meta['relationships']} disagree with manifest "
                        f"{entry.nodes}/{entry.relationships}"
                    )
                    continue
            if deep:
                try:
                    store = self.load(entry)
                except Exception as exc:  # noqa: BLE001 - report, keep checking
                    report.problems.append(
                        f"{entry.label}: load failed: {type(exc).__name__}: {exc}"
                    )
                    continue
                if (store.node_count, store.relationship_count) != (
                    entry.nodes, entry.relationships
                ):
                    report.problems.append(
                        f"{entry.label}: loaded {store.node_count}/"
                        f"{store.relationship_count} entities, manifest says "
                        f"{entry.nodes}/{entry.relationships}"
                    )
        return report

    # -- retention ---------------------------------------------------------

    def prune(self, keep: int) -> list[ArchiveEntry]:
        """Drop all but the newest ``keep`` entries; returns the removed.

        Snapshot files are deleted only when no surviving entry still
        references them (entries deduplicated by checksum share files).
        """
        if keep < 1:
            raise ValueError("prune keeps at least one snapshot")
        entries = self.entries()
        if len(entries) <= keep:
            return []
        removed, kept = entries[:-keep], entries[-keep:]
        surviving_files = {entry.filename for entry in kept}
        for entry in removed:
            if entry.filename not in surviving_files:
                path = self.path(entry)
                if path.exists():
                    path.unlink()
        self._write_manifest(kept)
        return removed

    # -- diffing -----------------------------------------------------------

    def diff(self, old_selector: str, new_selector: str):
        """Identity-level :class:`~repro.core.diff.GraphDiff` of two entries."""
        old = self.load(old_selector)
        new = self.load(new_selector)
        return snapshot_diff(old, new)

    def is_v2(self, entry: ArchiveEntry) -> bool:
        return entry.format == 2 and is_v2_snapshot(self.path(entry))
