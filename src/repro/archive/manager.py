"""The snapshot archive: a managed directory of dated graph dumps.

The paper distributes IYP as weekly Neo4j dumps that users download and
run locally; its Limitations section calls longitudinal work across
those dumps a manual, multi-instance chore.  :class:`SnapshotArchive`
is the missing management layer: a directory of snapshots plus a JSON
manifest recording, per entry, the format version, a SHA-256 checksum,
node/relationship counts, build metadata from the pipeline's
``BuildReport``, and the identity-level delta against the previous
entry (computed with :mod:`repro.core.diff`).

Because snapshot bytes are deterministic, the archive deduplicates by
checksum: archiving a store whose bytes match an existing entry records
a new manifest entry pointing at the existing file instead of writing a
second copy.  ``prune`` respects that sharing — a file is only deleted
once no remaining entry references it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.archive.format import (
    SnapshotFormatError,
    is_v2_snapshot,
    read_meta,
)
from repro.core.diff import snapshot_diff
from repro.graphdb.snapshot import load_snapshot, save_snapshot
from repro.graphdb.store import GraphStore
from repro.obs import utc_timestamp

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass
class ArchiveEntry:
    """One archived snapshot, as recorded in the manifest."""

    label: str
    filename: str
    format: int
    checksum: str
    nodes: int
    relationships: int
    created_at: str = ""
    build: dict[str, Any] | None = None
    delta: dict[str, Any] | None = None
    #: Serialized :class:`repro.analytics.AnalyticsReport` computed at
    #: build time — statistics plus precomputed procedure rows.  Older
    #: manifests simply lack the key (loaded as None).
    analytics: dict[str, Any] | None = None
    #: ``"full"`` for a complete dump, ``"delta"`` for an IYPD delta file
    #: (format 3) applied on top of ``base``.  Older manifests lack the
    #: keys and load as full snapshots.
    kind: str = "full"
    #: For delta entries: the label of the entry this delta applies to
    #: (itself possibly a delta — chains resolve back to a full snapshot).
    base: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "filename": self.filename,
            "format": self.format,
            "checksum": self.checksum,
            "nodes": self.nodes,
            "relationships": self.relationships,
            "created_at": self.created_at,
            "build": self.build,
            "delta": self.delta,
            "analytics": self.analytics,
            "kind": self.kind,
            "base": self.base,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchiveEntry":
        return cls(
            label=data["label"],
            filename=data["filename"],
            format=int(data["format"]),
            checksum=data["checksum"],
            nodes=int(data["nodes"]),
            relationships=int(data["relationships"]),
            created_at=data.get("created_at", ""),
            build=data.get("build"),
            delta=data.get("delta"),
            analytics=data.get("analytics"),
            kind=data.get("kind", "full"),
            base=data.get("base", ""),
        )


@dataclass
class VerificationReport:
    """Outcome of :meth:`SnapshotArchive.verify`."""

    entries_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


class SnapshotArchive:
    """A directory of snapshots governed by a JSON manifest."""

    def __init__(self, root: str | Path, retention: int | None = None):
        """``retention`` keeps only the newest N entries after each add."""
        self.root = Path(root)
        self.retention = retention
        self.root.mkdir(parents=True, exist_ok=True)

    # -- manifest ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def entries(self) -> list[ArchiveEntry]:
        """All entries, oldest first (manifest order is chronological)."""
        if not self.manifest_path.exists():
            return []
        data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        return [ArchiveEntry.from_dict(item) for item in data.get("snapshots", ())]

    def labels(self) -> list[str]:
        return [entry.label for entry in self.entries()]

    def _write_manifest(self, entries: list[ArchiveEntry]) -> None:
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "snapshots": [entry.to_dict() for entry in entries],
        }
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(self.manifest_path)

    # -- adding -----------------------------------------------------------

    def add(
        self,
        store: GraphStore,
        label: str,
        *,
        format: int = 2,
        build: Mapping[str, Any] | None = None,
        created_at: str = "",
        delta: bool = True,
        analytics: Mapping[str, Any] | None = None,
    ) -> ArchiveEntry:
        """Archive a store under ``label``; returns the manifest entry.

        The snapshot is written to a temporary file first; if its
        checksum matches an existing entry the new entry shares that
        file (checksum dedup).  With ``delta`` (the default) the
        identity-level diff summary against the current latest entry is
        computed and stored on the new entry.  ``analytics`` (a
        serialized :class:`repro.analytics.AnalyticsReport`) is stored
        verbatim on the manifest entry; snapshot bytes and checksums are
        unaffected.  ``created_at`` defaults to the current UTC time —
        the freshness signal data-quality telemetry reads back.
        """
        if not created_at:
            created_at = utc_timestamp()
        entries = self.entries()
        if any(entry.label == label for entry in entries):
            raise ValueError(f"archive already has a snapshot labelled {label!r}")
        suffix = ".iyp2" if format == 2 else ".json.gz"
        tmp = self.root / f".{label}{suffix}.tmp"
        save_snapshot(store, tmp, format=format)
        checksum = _sha256(tmp)
        existing = next((e for e in entries if e.checksum == checksum), None)
        if existing is not None:
            tmp.unlink()
            filename = existing.filename
        else:
            filename = f"{label}{suffix}"
            tmp.replace(self.root / filename)
        delta_record = None
        if delta and entries:
            previous = entries[-1]
            if previous.checksum == checksum:
                delta_record = {"vs": previous.label, "identical": True}
            else:
                diff = snapshot_diff(self.load(previous.label), store)
                delta_record = {
                    "vs": previous.label,
                    "identical": diff.unchanged,
                    **diff.summary(),
                }
        entry = ArchiveEntry(
            label=label,
            filename=filename,
            format=format,
            checksum=checksum,
            nodes=store.node_count,
            relationships=store.relationship_count,
            created_at=created_at,
            build=dict(build) if build is not None else None,
            delta=delta_record,
            analytics=dict(analytics) if analytics is not None else None,
        )
        entries.append(entry)
        self._write_manifest(entries)
        if self.retention is not None:
            self.prune(self.retention)
        return entry

    def add_delta(
        self,
        store: GraphStore,
        batch: Any,
        label: str,
        *,
        base: str = "latest",
        build: Mapping[str, Any] | None = None,
        created_at: str = "",
        analytics: Mapping[str, Any] | None = None,
    ) -> ArchiveEntry:
        """Archive a :class:`~repro.delta.records.DeltaBatch` under ``label``.

        ``store`` is the graph *after* the batch (its counts go in the
        manifest, like a full entry's); ``base`` selects the entry the
        batch was extracted against — the written IYPD file embeds that
        entry's checksum so chain loads and replica appliers can refuse
        a delta shipped against the wrong base.  Loading a delta entry
        resolves its base chain back to the nearest full snapshot and
        replays each batch in order (see :meth:`load`).
        """
        from repro.delta.format import save_delta

        if not created_at:
            created_at = utc_timestamp()
        entries = self.entries()
        if any(entry.label == label for entry in entries):
            raise ValueError(f"archive already has a snapshot labelled {label!r}")
        base_entry = self.resolve(base)
        tmp = self.root / f".{label}.iypd.tmp"
        save_delta(
            batch,
            tmp,
            base_label=base_entry.label,
            base_checksum=base_entry.checksum,
            nodes_after=store.node_count,
            relationships_after=store.relationship_count,
        )
        checksum = _sha256(tmp)
        existing = next((e for e in entries if e.checksum == checksum), None)
        if existing is not None:
            tmp.unlink()
            filename = existing.filename
        else:
            filename = f"{label}.iypd"
            tmp.replace(self.root / filename)
        entry = ArchiveEntry(
            label=label,
            filename=filename,
            format=3,
            checksum=checksum,
            nodes=store.node_count,
            relationships=store.relationship_count,
            created_at=created_at,
            build=dict(build) if build is not None else None,
            delta={"vs": base_entry.label, "identical": batch.empty,
                   **batch.counts()},
            analytics=dict(analytics) if analytics is not None else None,
            kind="delta",
            base=base_entry.label,
        )
        entries.append(entry)
        self._write_manifest(entries)
        if self.retention is not None:
            self.prune(self.retention)
        return entry

    # -- resolving and loading --------------------------------------------

    def resolve(self, selector: str) -> ArchiveEntry:
        """Resolve a selector to an entry.

        ``latest`` picks the newest entry; otherwise an exact label
        match wins, then a unique label prefix.  Raises ``KeyError``
        when nothing (or more than one prefix candidate) matches.
        """
        entries = self.entries()
        if not entries:
            raise KeyError("archive is empty")
        if selector == "latest":
            return entries[-1]
        for entry in entries:
            if entry.label == selector:
                return entry
        candidates = [e for e in entries if e.label.startswith(selector)]
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            names = ", ".join(e.label for e in candidates)
            raise KeyError(f"ambiguous snapshot selector {selector!r}: {names}")
        raise KeyError(f"no archived snapshot matches {selector!r}")

    def path(self, entry: ArchiveEntry) -> Path:
        return self.root / entry.filename

    def load(self, selector: str | ArchiveEntry) -> GraphStore:
        """Load an archived snapshot into a fresh store.

        Delta entries load their base chain: the nearest full snapshot
        is loaded and each delta batch replayed in order, verifying at
        every hop that the batch was extracted against the checksum the
        chain provides.
        """
        entry = selector if isinstance(selector, ArchiveEntry) else self.resolve(selector)
        if entry.kind != "delta":
            return load_snapshot(self.path(entry))
        return self._load_chain(entry)

    def delta_chain(
        self, entry: ArchiveEntry
    ) -> tuple[ArchiveEntry, list[ArchiveEntry]]:
        """``(full base entry, delta entries oldest-first)`` for ``entry``.

        For a full entry the delta list is empty.  Raises ``KeyError``
        when a base has been pruned away and
        :class:`SnapshotFormatError` on a base-pointer cycle.
        """
        by_label = {e.label: e for e in self.entries()}
        chain: list[ArchiveEntry] = []
        seen: set[str] = set()
        current = entry
        while current.kind == "delta":
            if current.label in seen:
                raise SnapshotFormatError(
                    f"delta base chain cycles at {current.label!r}"
                )
            seen.add(current.label)
            chain.append(current)
            base = by_label.get(current.base)
            if base is None:
                raise KeyError(
                    f"delta {current.label!r} references missing base "
                    f"{current.base!r}"
                )
            current = base
        return current, list(reversed(chain))

    def _load_chain(self, entry: ArchiveEntry) -> GraphStore:
        from repro.delta import apply_delta
        from repro.delta.format import load_delta

        base, deltas = self.delta_chain(entry)
        store = load_snapshot(self.path(base))
        expected_checksum = base.checksum
        for delta_entry in deltas:
            batch, meta = load_delta(self.path(delta_entry))
            if meta.get("base_checksum") != expected_checksum:
                raise SnapshotFormatError(
                    f"{delta_entry.label}: built against base checksum "
                    f"{str(meta.get('base_checksum'))[:12]}…, chain provides "
                    f"{expected_checksum[:12]}…"
                )
            apply_delta(store, batch)
            expected_checksum = delta_entry.checksum
        return store

    def info(self, selector: str) -> dict[str, Any]:
        """One entry's manifest record plus its on-disk size."""
        entry = self.resolve(selector)
        path = self.path(entry)
        record = entry.to_dict()
        record["bytes"] = path.stat().st_size if path.exists() else None
        return record

    # -- integrity ---------------------------------------------------------

    def verify(self, deep: bool = False) -> VerificationReport:
        """Check every entry: file present, checksum intact, counts sane.

        The shallow pass re-hashes each file and, for v2 snapshots,
        cross-checks the manifest counts against the file's META section.
        ``deep`` additionally loads every snapshot and re-counts the
        graph — catching decode regressions, not just bit rot.
        """
        report = VerificationReport()
        entries = self.entries()
        by_label = {entry.label: entry for entry in entries}
        for entry in entries:
            report.entries_checked += 1
            path = self.path(entry)
            if not path.exists():
                report.problems.append(f"{entry.label}: missing file {entry.filename}")
                continue
            checksum = _sha256(path)
            if checksum != entry.checksum:
                report.problems.append(
                    f"{entry.label}: checksum mismatch "
                    f"(manifest {entry.checksum[:12]}…, file {checksum[:12]}…)"
                )
                continue
            if entry.format == 3:
                from repro.delta.format import read_delta_meta

                try:
                    meta = read_delta_meta(path)
                except SnapshotFormatError as exc:
                    report.problems.append(f"{entry.label}: {exc}")
                    continue
                if (meta["nodes"], meta["relationships"]) != (
                    entry.nodes, entry.relationships
                ):
                    report.problems.append(
                        f"{entry.label}: META counts {meta['nodes']}/"
                        f"{meta['relationships']} disagree with manifest "
                        f"{entry.nodes}/{entry.relationships}"
                    )
                    continue
                base = by_label.get(entry.base)
                if base is None:
                    report.problems.append(
                        f"{entry.label}: base {entry.base!r} missing from manifest"
                    )
                    continue
                if meta.get("base_checksum") != base.checksum:
                    report.problems.append(
                        f"{entry.label}: file says base checksum "
                        f"{str(meta.get('base_checksum'))[:12]}…, manifest base "
                        f"{base.label!r} has {base.checksum[:12]}…"
                    )
                    continue
            if entry.format == 2:
                try:
                    meta = read_meta(path)
                except SnapshotFormatError as exc:
                    report.problems.append(f"{entry.label}: {exc}")
                    continue
                if (meta["nodes"], meta["relationships"]) != (
                    entry.nodes, entry.relationships
                ):
                    report.problems.append(
                        f"{entry.label}: META counts {meta['nodes']}/"
                        f"{meta['relationships']} disagree with manifest "
                        f"{entry.nodes}/{entry.relationships}"
                    )
                    continue
            if deep:
                try:
                    store = self.load(entry)
                except Exception as exc:  # noqa: BLE001 - report, keep checking
                    report.problems.append(
                        f"{entry.label}: load failed: {type(exc).__name__}: {exc}"
                    )
                    continue
                if (store.node_count, store.relationship_count) != (
                    entry.nodes, entry.relationships
                ):
                    report.problems.append(
                        f"{entry.label}: loaded {store.node_count}/"
                        f"{store.relationship_count} entities, manifest says "
                        f"{entry.nodes}/{entry.relationships}"
                    )
        return report

    # -- retention ---------------------------------------------------------

    def prune(self, keep: int) -> list[ArchiveEntry]:
        """Drop all but the newest ``keep`` entries; returns the removed.

        Two kinds of sharing are respected: snapshot files are deleted
        only when no surviving entry still references them (checksum
        dedup), and the transitive base chain of every kept delta entry
        is retained even when it falls outside the newest ``keep`` — a
        delta without its base chain would be unloadable.
        """
        if keep < 1:
            raise ValueError("prune keeps at least one snapshot")
        entries = self.entries()
        if len(entries) <= keep:
            return []
        by_label = {entry.label: entry for entry in entries}
        retained_labels = {entry.label for entry in entries[-keep:]}
        for entry in entries[-keep:]:
            current = entry
            while current.kind == "delta":
                base = by_label.get(current.base)
                if base is None or base.label in retained_labels:
                    break
                retained_labels.add(base.label)
                current = base
        kept = [entry for entry in entries if entry.label in retained_labels]
        removed = [entry for entry in entries if entry.label not in retained_labels]
        if not removed:
            return []
        surviving_files = {entry.filename for entry in kept}
        for entry in removed:
            if entry.filename not in surviving_files:
                path = self.path(entry)
                if path.exists():
                    path.unlink()
        self._write_manifest(kept)
        return removed

    # -- diffing -----------------------------------------------------------

    def diff(self, old_selector: str, new_selector: str):
        """Identity-level :class:`~repro.core.diff.GraphDiff` of two entries."""
        old = self.load(old_selector)
        new = self.load(new_selector)
        return snapshot_diff(old, new)

    def is_v2(self, entry: ArchiveEntry) -> bool:
        return entry.format == 2 and is_v2_snapshot(self.path(entry))
