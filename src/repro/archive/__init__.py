"""The snapshot archive: managed dumps, a fast binary format, time travel.

The paper distributes IYP as weekly Neo4j dumps; this package turns the
reproduction's one-off snapshots into a managed, servable dump archive:

- :mod:`repro.archive.format` — binary snapshot format v2: framed,
  length-prefixed sections with interned strings, per-section CRC-32
  checksums, and a streaming reader that rebuilds the store through the
  bulk-load path (several times faster than the v1 gzip-JSON dump);
- :mod:`repro.archive.manager` — :class:`SnapshotArchive`, a directory
  of dated snapshots with a JSON manifest, checksum dedup, integrity
  verification, retention, and per-entry deltas from
  :mod:`repro.core.diff`;
- :mod:`repro.archive.watcher` — a polling thread that hot-swaps a
  running query service to each new archive entry.

The query service resolves ``snapshot=`` selectors on ``/query``
against an attached archive, so longitudinal studies run against named
historical dumps instead of hand-managed stores.  See
``documentation/archive.md``.
"""

from repro.archive.format import (
    SnapshotFormatError,
    is_v2_snapshot,
    load_snapshot_v2,
    read_meta,
    read_sections,
    save_snapshot_v2,
)
from repro.archive.manager import ArchiveEntry, SnapshotArchive, VerificationReport
from repro.archive.watcher import ArchiveWatcher

__all__ = [
    "ArchiveEntry",
    "ArchiveWatcher",
    "SnapshotArchive",
    "SnapshotFormatError",
    "VerificationReport",
    "is_v2_snapshot",
    "load_snapshot_v2",
    "read_meta",
    "read_sections",
    "save_snapshot_v2",
]
