"""Binary snapshot format v2: framed sections, interned strings, checksums.

The v1 gzip-JSON dump is simple but slow to load: every node and
relationship is replayed through the store's locked mutation API, and
labels and property keys are spelled out in full for every entity.  The
v2 format exists to make archived dumps cheap to serve:

- the file is a sequence of **framed sections** — a fixed header per
  section carries its kind, flags, payload length, and CRC-32, so a
  reader can stream section by section, verify integrity before
  decoding, and skip kinds it does not know (forward compatibility);
- **string interning**: labels, property keys, relationship types, and
  index/constraint names are written once in a sorted string table and
  referenced by integer everywhere else;
- node and relationship rows are split into bounded **chunks** (their
  own sections), so the streaming reader never materializes more than
  one chunk of undecoded payload at a time;
- loading rebuilds the store through
  :meth:`repro.graphdb.store.GraphStore.from_records` — internal maps
  are populated in bulk and hash indexes built in one pass, instead of
  one locked ``create_node`` call per entity.

Section payloads are compact JSON (optionally zlib-compressed), which
keeps the hot decode loop inside the C JSON parser; the framing,
interning, and checksumming around it are what the format adds.  Files
are byte-deterministic: the string table is sorted, rows are ordered by
id, property keys are sorted within each shape, and nothing
time-dependent is embedded — two saves of an identical store produce
identical bytes.

Layout::

    MAGIC "IYP2"  |  u16 format version (2)
    section*      |  u8 kind  u8 flags  u32 crc32  u64 length  payload
    END section   |  empty payload, marks a complete file

Entity sections are **columnar**.  Nodes of one label set almost always
carry the same property keys, so the SHAPES section holds the distinct
label sets and property-key sets (as string-table index lists, in first
use order over id-sorted rows), and each entity row is spread across
parallel arrays that reference a shape by position:

- NODES payload: ``[ids, label_shape, key_shape, values]``
- RELS payload: ``[ids, types, starts, ends, key_shape, values]``

where ``values[i]`` lists row *i*'s property values in its key shape's
order.  One JSON array per column instead of one per row keeps decode
inside the C parser's fast path, and the loader resolves each shape
through the string table exactly once.
"""

from __future__ import annotations

import gc
import json
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.graphdb.store import GraphStore

MAGIC = b"IYP2"
FORMAT_VERSION = 2

#: Section kinds (u8).  Unknown kinds are skipped by the reader.
SECTION_META = 1
SECTION_STRINGS = 2
SECTION_INDEXES = 3
SECTION_CONSTRAINTS = 4
SECTION_NODES = 5
SECTION_RELS = 6
SECTION_END = 7
SECTION_SHAPES = 8

#: Flag bits (u8).
FLAG_ZLIB = 1

#: Rows per NODES/RELS section; bounds the reader's per-chunk memory.
CHUNK_ROWS = 65536

#: Payloads below this size are stored raw — compression cannot win.
_COMPRESS_THRESHOLD = 128

_HEADER = struct.Struct("<4sH")
_FRAME = struct.Struct("<BBIQ")


class SnapshotFormatError(ValueError):
    """A malformed, truncated, or corrupted snapshot file."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def pack_header(magic: bytes, version: int) -> bytes:
    """The fixed file header for a framed file (magic + format version)."""
    return _HEADER.pack(magic, version)


def write_section(
    handle: BinaryIO, kind: int, payload_obj: Any, compress: bool
) -> None:
    """Frame and write one section (public seam for sibling formats)."""
    _write_section(handle, kind, payload_obj, compress)


def _write_section(
    handle: BinaryIO, kind: int, payload_obj: Any, compress: bool
) -> None:
    payload = json.dumps(
        payload_obj, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    flags = 0
    if compress and len(payload) >= _COMPRESS_THRESHOLD:
        # Level 1: deterministic output, near-best decode speed, and the
        # bulk of the size win over raw JSON.
        payload = zlib.compress(payload, 1)
        flags |= FLAG_ZLIB
    handle.write(_FRAME.pack(kind, flags, zlib.crc32(payload), len(payload)))
    handle.write(payload)


def _chunked_columns(columns: list[list], size: int) -> Iterator[list[list]]:
    """Slice parallel column arrays into row-range chunks."""
    total = len(columns[0])
    for start in range(0, total, size):
        yield [column[start : start + size] for column in columns]


def save_snapshot_v2(
    store: GraphStore, path: str | Path, compress: bool = True
) -> None:
    """Write a v2 binary snapshot of the store to ``path``.

    Holds the store's read lock for the whole save so a snapshot taken
    while writers are active is still consistent (same guarantee as the
    v1 path).
    """
    with store.read_lock():
        nodes = sorted(store.iter_nodes(), key=lambda n: n.id)
        rels = sorted(store.iter_relationships(), key=lambda r: r.id)
        indexes = store.indexes()
        constraints = store.constraints()

        table: set[str] = set()
        for node in nodes:
            table.update(node.labels)
            table.update(node.properties)
        for rel in rels:
            table.add(rel.type)
            table.update(rel.properties)
        for label, prop in indexes:
            table.update((label, prop))
        for label, prop in constraints:
            table.update((label, prop))
        strings = sorted(table)
        intern = {string: index for index, string in enumerate(strings)}

        # Shape tables: distinct label sets / property-key sets, numbered
        # in first use order over the id-sorted rows (deterministic).
        label_shapes: dict[tuple[int, ...], int] = {}
        key_shapes: dict[tuple[int, ...], int] = {}

        node_columns: list[list] = [[], [], [], []]
        n_ids, n_label_shape, n_key_shape, n_values = node_columns
        for node in nodes:
            labels = tuple(sorted(intern[label] for label in node.labels))
            keys = sorted(node.properties)
            key_ids = tuple(intern[key] for key in keys)
            n_ids.append(node.id)
            n_label_shape.append(
                label_shapes.setdefault(labels, len(label_shapes))
            )
            n_key_shape.append(key_shapes.setdefault(key_ids, len(key_shapes)))
            n_values.append([node.properties[key] for key in keys])

        rel_columns: list[list] = [[], [], [], [], [], []]
        r_ids, r_types, r_starts, r_ends, r_key_shape, r_values = rel_columns
        for rel in rels:
            keys = sorted(rel.properties)
            key_ids = tuple(intern[key] for key in keys)
            r_ids.append(rel.id)
            r_types.append(intern[rel.type])
            r_starts.append(rel.start_id)
            r_ends.append(rel.end_id)
            r_key_shape.append(key_shapes.setdefault(key_ids, len(key_shapes)))
            r_values.append([rel.properties[key] for key in keys])

        meta = {
            "format_version": FORMAT_VERSION,
            "nodes": len(n_ids),
            "relationships": len(r_ids),
            "indexes": len(indexes),
            "constraints": len(constraints),
            "strings": len(strings),
        }
        shapes = [
            [list(shape) for shape in label_shapes],
            [list(shape) for shape in key_shapes],
        ]
        with open(Path(path), "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
            _write_section(handle, SECTION_META, meta, compress)
            _write_section(handle, SECTION_STRINGS, strings, compress)
            _write_section(handle, SECTION_SHAPES, shapes, compress)
            _write_section(
                handle, SECTION_INDEXES,
                [[intern[label], intern[prop]] for label, prop in indexes],
                compress,
            )
            _write_section(
                handle, SECTION_CONSTRAINTS,
                [[intern[label], intern[prop]] for label, prop in constraints],
                compress,
            )
            if n_ids:
                for chunk in _chunked_columns(node_columns, CHUNK_ROWS):
                    _write_section(handle, SECTION_NODES, chunk, compress)
            if r_ids:
                for chunk in _chunked_columns(rel_columns, CHUNK_ROWS):
                    _write_section(handle, SECTION_RELS, chunk, compress)
            _write_section(handle, SECTION_END, [], compress)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _check_header(
    handle: BinaryIO,
    path: Path,
    magic: bytes = MAGIC,
    version: int = FORMAT_VERSION,
) -> None:
    header = handle.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise SnapshotFormatError(f"{path}: truncated before the header")
    file_magic, file_version = _HEADER.unpack(header)
    if file_magic != magic:
        raise SnapshotFormatError(
            f"{path}: bad magic (expected {magic!r}, got {file_magic!r})"
        )
    if file_version != version:
        raise SnapshotFormatError(
            f"{path}: unsupported format version {file_version}"
        )


def read_sections(
    path: str | Path,
    magic: bytes = MAGIC,
    version: int = FORMAT_VERSION,
) -> Iterator[tuple[int, Any]]:
    """Stream ``(kind, decoded payload)`` pairs from a framed file.

    Each section's CRC is verified before its payload is decompressed
    and decoded; a missing END section (a partially written file) raises
    :class:`SnapshotFormatError`.  Unknown section kinds are yielded
    as-is so callers may skip them.  ``magic``/``version`` default to the
    v2 snapshot header; the delta format (:mod:`repro.delta.format`)
    reuses the same framing under its own magic.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        _check_header(handle, path, magic, version)
        while True:
            frame = handle.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                raise SnapshotFormatError(f"{path}: truncated (no END section)")
            kind, flags, crc, length = _FRAME.unpack(frame)
            payload = handle.read(length)
            if len(payload) < length:
                raise SnapshotFormatError(
                    f"{path}: truncated inside section kind={kind}"
                )
            if zlib.crc32(payload) != crc:
                raise SnapshotFormatError(
                    f"{path}: checksum mismatch in section kind={kind}"
                )
            if flags & FLAG_ZLIB:
                payload = zlib.decompress(payload)
            yield kind, json.loads(payload)
            if kind == SECTION_END:
                return


def read_meta(path: str | Path) -> dict[str, Any]:
    """The META section (counts) without loading the graph."""
    for kind, payload in read_sections(path):
        if kind == SECTION_META:
            return payload
    raise SnapshotFormatError(f"{path}: no META section")


def load_snapshot_v2(path: str | Path) -> GraphStore:
    """Load a v2 snapshot into a store via the bulk-construction path.

    Each shape resolves through the string table exactly once (one
    frozenset per distinct label set, one key tuple per distinct
    property-key set); the per-row work is a single ``dict(zip(...))``
    in a comprehension over the section's parallel columns.  The cyclic
    GC is paused for the duration — decoding allocates one dict per
    entity and none of them form cycles, so gen-2 rescans of the growing
    heap would otherwise dominate the load (see also
    :meth:`GraphStore.from_records`, whose own pause nests inside this
    one).
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _load_snapshot_v2(path)
    finally:
        if gc_was_enabled:
            gc.enable()


def _load_snapshot_v2(path: str | Path) -> GraphStore:
    strings: list[str] = []
    label_sets: list[frozenset[str]] = []
    key_tuples: list[tuple[str, ...]] = []
    indexes: list[tuple[str, str]] = []
    constraints: list[tuple[str, str]] = []
    node_records: list = []
    rel_records: list = []
    for kind, payload in read_sections(path):
        if kind == SECTION_STRINGS:
            strings = payload
        elif kind == SECTION_SHAPES:
            label_shapes, key_shapes = payload
            label_sets = [
                frozenset(strings[i] for i in shape) for shape in label_shapes
            ]
            key_tuples = [
                tuple(strings[i] for i in shape) for shape in key_shapes
            ]
        elif kind == SECTION_INDEXES:
            indexes = [(strings[label], strings[prop]) for label, prop in payload]
        elif kind == SECTION_CONSTRAINTS:
            constraints = [
                (strings[label], strings[prop]) for label, prop in payload
            ]
        elif kind == SECTION_NODES:
            ids, label_shape, key_shape, values = payload
            node_records += [
                (node_id, label_sets[lid], dict(zip(key_tuples[kid], row, strict=True)))
                for node_id, lid, kid, row in zip(
                    ids, label_shape, key_shape, values, strict=True
                )
            ]
        elif kind == SECTION_RELS:
            ids, types, starts, ends, key_shape, values = payload
            rel_records += [
                (
                    rel_id,
                    strings[type_id],
                    start_id,
                    end_id,
                    dict(zip(key_tuples[kid], row, strict=True)),
                )
                for rel_id, type_id, start_id, end_id, kid, row in zip(
                    ids, types, starts, ends, key_shape, values, strict=True
                )
            ]

    return GraphStore.from_records(
        node_records, rel_records, indexes=indexes, constraints=constraints
    )


def is_v2_snapshot(path: str | Path) -> bool:
    """True when the file starts with the v2 magic bytes."""
    try:
        with open(Path(path), "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
