"""DNS name handling: hostnames, domain names, zones, public suffixes.

IYP distinguishes *HostName* nodes (fully qualified, resolvable names)
from *DomainName* nodes (zones, e.g. the zone cut for ``nytimes.com``),
and its PARENT relationship models zone cuts.  The DNS Robustness
reproduction additionally needs second-level-domain extraction under a
public-suffix list.  The suffix list here is a curated subset adequate
for the synthetic world (generic TLDs plus the ccTLDs the SPoF analysis
exercises, including two-label suffixes like ``co.uk``).
"""

from __future__ import annotations

import re


class InvalidNameError(ValueError):
    """Raised when a string is not a syntactically valid DNS name."""


_LABEL_RE = re.compile(r"^(?!-)[a-z0-9_-]{1,63}(?<!-)$")

# Public-suffix subset: one- and two-label suffixes.  Matching is
# longest-suffix-first, as with the real PSL.
PUBLIC_SUFFIXES = frozenset(
    {
        "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz",
        "io", "co", "dev", "app", "xyz", "online", "site", "shop", "top",
        "cloud", "ai", "tv", "me", "cc",
        # ccTLDs used by the synthetic world / SPoF study.
        "us", "uk", "ru", "cn", "de", "fr", "jp", "nl", "br", "in", "au",
        "ca", "it", "es", "pl", "se", "ch", "kr", "tw", "ua", "za", "tr",
        "ir", "vn", "id", "mx", "ar", "gr", "cz", "eu", "no", "fi", "dk",
        "be", "at", "pt", "ro", "hu", "sg", "hk", "th", "my", "il", "nz",
        "cl", "co.uk", "org.uk", "ac.uk", "gov.uk", "com.cn", "net.cn",
        "com.br", "com.au", "co.jp", "ne.jp", "or.jp", "co.kr", "com.tw",
        "co.in", "com.ru",
    }
)


def normalize_name(name: str) -> str:
    """Return the canonical form of a DNS name.

    Lower-cases the name and strips the trailing root dot; both spellings
    of the same name must map to the same graph node.

    >>> normalize_name('WWW.Example.COM.')
    'www.example.com'
    """
    text = name.strip().lower()
    if text.endswith("."):
        text = text[:-1]
    if not text:
        raise InvalidNameError("empty DNS name")
    return text


def is_valid_hostname(name: str) -> bool:
    """Return True for a syntactically valid (normalized) hostname."""
    if len(name) > 253:
        return False
    labels = name.split(".")
    return all(_LABEL_RE.match(label) for label in labels)


def tld(name: str) -> str:
    """Return the top-level domain (final label) of a name."""
    name = normalize_name(name)
    return name.rsplit(".", 1)[-1]


def public_suffix(name: str) -> str:
    """Return the public suffix of a name (longest match wins).

    >>> public_suffix('shop.example.co.uk')
    'co.uk'
    """
    name = normalize_name(name)
    labels = name.split(".")
    for take in (2, 1):
        if len(labels) >= take:
            candidate = ".".join(labels[-take:])
            if candidate in PUBLIC_SUFFIXES:
                return candidate
    return labels[-1]


def registered_domain(name: str) -> str | None:
    """Return the registrable domain (public suffix plus one label).

    Returns None when the name *is* a public suffix (nothing registrable).

    >>> registered_domain('www.example.co.uk')
    'example.co.uk'
    """
    name = normalize_name(name)
    suffix = public_suffix(name)
    if name == suffix:
        return None
    remainder = name[: -(len(suffix) + 1)]
    return f"{remainder.rsplit('.', 1)[-1]}.{suffix}"


def second_level_label(name: str) -> str | None:
    """Return the label immediately left of the public suffix, or None."""
    registrable = registered_domain(name)
    if registrable is None:
        return None
    return registrable.split(".", 1)[0]


def parent_zones(name: str) -> list[str]:
    """Return every ancestor zone of a name, nearest first.

    >>> parent_zones('a.b.example.com')
    ['b.example.com', 'example.com', 'com']
    """
    name = normalize_name(name)
    labels = name.split(".")
    return [".".join(labels[start:]) for start in range(1, len(labels))]


def is_subdomain_of(name: str, zone: str) -> bool:
    """Return True when ``name`` is inside ``zone`` (proper subdomain)."""
    name = normalize_name(name)
    zone = normalize_name(zone)
    return name.endswith("." + zone)
