"""Canonical IP address and prefix handling.

The IYP paper (Section 2.3) avoids duplicate graph nodes by translating
identifiers to a canonical form before node creation: ``2001:DB8::/32`` and
``2001:0db8::/32`` must map to the single node ``2001:db8::/32``.  This
module implements that translation plus the small amount of prefix
arithmetic the refinement passes need (address family, containment, /24
derivation for the DNS Robustness reproduction).
"""

from __future__ import annotations

import ipaddress


class InvalidAddressError(ValueError):
    """Raised when a string cannot be parsed as an IPv4/IPv6 address."""


class InvalidPrefixError(ValueError):
    """Raised when a string cannot be parsed as an IPv4/IPv6 prefix."""


def canonical_ip(value: str) -> str:
    """Return the canonical textual form of an IP address.

    IPv4 addresses are stripped of leading zeros; IPv6 addresses are
    compressed and lower-cased, per RFC 5952.

    >>> canonical_ip('2001:DB8:0:0:0:0:0:1')
    '2001:db8::1'
    >>> canonical_ip('192.000.002.001')
    '192.0.2.1'
    """
    text = value.strip()
    if not text:
        raise InvalidAddressError("empty IP address")
    try:
        if "." in text and ":" not in text:
            # ipaddress rejects leading zeros in IPv4 (ambiguous octal);
            # measurement datasets contain them, so strip them explicitly.
            octets = text.split(".")
            if len(octets) != 4:
                raise ValueError(f"expected 4 octets, got {len(octets)}")
            text = ".".join(str(int(octet, 10)) for octet in octets)
        return str(ipaddress.ip_address(text))
    except ValueError as exc:
        raise InvalidAddressError(f"invalid IP address {value!r}: {exc}") from exc


def canonical_prefix(value: str) -> str:
    """Return the canonical textual form of an IP prefix.

    Host bits are zeroed (``10.0.0.1/8`` becomes ``10.0.0.0/8``) because
    datasets occasionally publish prefixes with host bits set, and the two
    spellings denote the same routed object.

    >>> canonical_prefix('2001:0DB8::/32')
    '2001:db8::/32'
    """
    text = value.strip()
    if not text or "/" not in text:
        raise InvalidPrefixError(f"invalid prefix {value!r}: missing length")
    address, _, length = text.partition("/")
    try:
        address = canonical_ip(address)
        network = ipaddress.ip_network(f"{address}/{int(length)}", strict=False)
    except (ValueError, InvalidAddressError) as exc:
        raise InvalidPrefixError(f"invalid prefix {value!r}: {exc}") from exc
    return str(network)


def address_family(ip: str) -> int:
    """Return 4 or 6 for a textual IP address."""
    try:
        return ipaddress.ip_address(ip).version
    except ValueError as exc:
        raise InvalidAddressError(f"invalid IP address {ip!r}: {exc}") from exc


def prefix_af(prefix: str) -> int:
    """Return 4 or 6 for a textual IP prefix."""
    try:
        return ipaddress.ip_network(prefix, strict=False).version
    except ValueError as exc:
        raise InvalidPrefixError(f"invalid prefix {prefix!r}: {exc}") from exc


def ip_in_prefix(ip: str, prefix: str) -> bool:
    """Return True when ``ip`` falls inside ``prefix`` (same family only)."""
    address = ipaddress.ip_address(ip)
    network = ipaddress.ip_network(prefix, strict=False)
    if address.version != network.version:
        return False
    return address in network


def prefix_contains(outer: str, inner: str) -> bool:
    """Return True when prefix ``outer`` covers prefix ``inner``.

    A prefix covers itself.  Prefixes of different address families never
    cover each other.
    """
    outer_net = ipaddress.ip_network(outer, strict=False)
    inner_net = ipaddress.ip_network(inner, strict=False)
    if outer_net.version != inner_net.version:
        return False
    return inner_net.subnet_of(outer_net)


def slash24_of(ip: str) -> str:
    """Return the enclosing /24 (IPv4) or /48 (IPv6) of an address.

    The DNS Robustness study groups nameservers by /24; the IPv6 analogue
    used by follow-up studies is the /48.
    """
    address = ipaddress.ip_address(canonical_ip(ip))
    length = 24 if address.version == 4 else 48
    return str(ipaddress.ip_network(f"{address}/{length}", strict=False))


def prefix_key(prefix: str) -> tuple[int, int, int]:
    """Return a sortable, hashable key ``(af, network_int, length)``."""
    network = ipaddress.ip_network(prefix, strict=False)
    return network.version, int(network.network_address), network.prefixlen


def prefix_bits(prefix: str) -> tuple[int, str]:
    """Return ``(af, bitstring)`` for trie insertion.

    The bitstring is the network address truncated to the prefix length,
    most-significant bit first.
    """
    network = ipaddress.ip_network(prefix, strict=False)
    width = 32 if network.version == 4 else 128
    bits = format(int(network.network_address), f"0{width}b")
    return network.version, bits[: network.prefixlen]


def ip_bits(ip: str) -> tuple[int, str]:
    """Return ``(af, full bitstring)`` of an address for trie lookups."""
    address = ipaddress.ip_address(ip)
    width = 32 if address.version == 4 else 128
    return address.version, format(int(address), f"0{width}b")
