"""Networking primitives shared across the IYP reproduction.

This package implements the low-level vocabulary of the knowledge graph:
canonical IP addresses and prefixes (the paper's canonical-form
deduplication rule, Section 2.3), longest-prefix-match lookups, autonomous
system numbers, ISO-3166 country codes, and DNS naming (hostnames, domain
names, zones, and public-suffix handling).
"""

from repro.nettypes.asn import (
    ASN_MAX,
    InvalidASNError,
    is_documentation_asn,
    is_private_asn,
    parse_asn,
)
from repro.nettypes.countries import (
    CountryInfo,
    UnknownCountryError,
    alpha2_to_alpha3,
    alpha3_to_alpha2,
    country_name,
    is_valid_alpha2,
    iter_countries,
)
from repro.nettypes.dns import (
    InvalidNameError,
    is_valid_hostname,
    normalize_name,
    parent_zones,
    public_suffix,
    registered_domain,
    tld,
)
from repro.nettypes.ip import (
    InvalidAddressError,
    InvalidPrefixError,
    address_family,
    canonical_ip,
    canonical_prefix,
    ip_in_prefix,
    prefix_af,
    prefix_contains,
    slash24_of,
)
from repro.nettypes.prefixtrie import PrefixTrie
from repro.nettypes.url import InvalidURLError, hostname_of_url, normalize_url

__all__ = [
    "ASN_MAX",
    "CountryInfo",
    "InvalidASNError",
    "InvalidAddressError",
    "InvalidNameError",
    "InvalidPrefixError",
    "InvalidURLError",
    "PrefixTrie",
    "UnknownCountryError",
    "address_family",
    "alpha2_to_alpha3",
    "alpha3_to_alpha2",
    "canonical_ip",
    "canonical_prefix",
    "country_name",
    "hostname_of_url",
    "ip_in_prefix",
    "is_documentation_asn",
    "is_private_asn",
    "is_valid_alpha2",
    "is_valid_hostname",
    "iter_countries",
    "normalize_name",
    "normalize_url",
    "parent_zones",
    "parse_asn",
    "prefix_af",
    "prefix_contains",
    "public_suffix",
    "registered_domain",
    "slash24_of",
    "tld",
]
