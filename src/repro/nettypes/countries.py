"""ISO 3166 country registry.

The IYP refinement pass (Section 2.3) guarantees that every Country node
carries a two-letter code, a three-letter code, and a common name.  This
module is the authoritative registry backing that pass.  The table covers
the economies that appear in the RIR delegated files used by the synthetic
world; it is a data table, not an algorithm, so extending it is a one-line
change per country.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class CountryInfo:
    """One ISO 3166 economy."""

    alpha2: str
    alpha3: str
    name: str
    region: str


class UnknownCountryError(KeyError):
    """Raised when a country code is not in the registry."""


_COUNTRIES = [
    CountryInfo("AE", "ARE", "United Arab Emirates", "Asia"),
    CountryInfo("AR", "ARG", "Argentina", "Americas"),
    CountryInfo("AT", "AUT", "Austria", "Europe"),
    CountryInfo("AU", "AUS", "Australia", "Oceania"),
    CountryInfo("BD", "BGD", "Bangladesh", "Asia"),
    CountryInfo("BE", "BEL", "Belgium", "Europe"),
    CountryInfo("BG", "BGR", "Bulgaria", "Europe"),
    CountryInfo("BR", "BRA", "Brazil", "Americas"),
    CountryInfo("CA", "CAN", "Canada", "Americas"),
    CountryInfo("CH", "CHE", "Switzerland", "Europe"),
    CountryInfo("CL", "CHL", "Chile", "Americas"),
    CountryInfo("CN", "CHN", "China", "Asia"),
    CountryInfo("CO", "COL", "Colombia", "Americas"),
    CountryInfo("CZ", "CZE", "Czechia", "Europe"),
    CountryInfo("DE", "DEU", "Germany", "Europe"),
    CountryInfo("DK", "DNK", "Denmark", "Europe"),
    CountryInfo("EE", "EST", "Estonia", "Europe"),
    CountryInfo("EG", "EGY", "Egypt", "Africa"),
    CountryInfo("ES", "ESP", "Spain", "Europe"),
    CountryInfo("FI", "FIN", "Finland", "Europe"),
    CountryInfo("FR", "FRA", "France", "Europe"),
    CountryInfo("GB", "GBR", "United Kingdom", "Europe"),
    CountryInfo("GR", "GRC", "Greece", "Europe"),
    CountryInfo("HK", "HKG", "Hong Kong", "Asia"),
    CountryInfo("HU", "HUN", "Hungary", "Europe"),
    CountryInfo("ID", "IDN", "Indonesia", "Asia"),
    CountryInfo("IE", "IRL", "Ireland", "Europe"),
    CountryInfo("IL", "ISR", "Israel", "Asia"),
    CountryInfo("IN", "IND", "India", "Asia"),
    CountryInfo("IR", "IRN", "Iran", "Asia"),
    CountryInfo("IT", "ITA", "Italy", "Europe"),
    CountryInfo("JP", "JPN", "Japan", "Asia"),
    CountryInfo("KE", "KEN", "Kenya", "Africa"),
    CountryInfo("KR", "KOR", "South Korea", "Asia"),
    CountryInfo("LT", "LTU", "Lithuania", "Europe"),
    CountryInfo("LU", "LUX", "Luxembourg", "Europe"),
    CountryInfo("LV", "LVA", "Latvia", "Europe"),
    CountryInfo("MX", "MEX", "Mexico", "Americas"),
    CountryInfo("MY", "MYS", "Malaysia", "Asia"),
    CountryInfo("NG", "NGA", "Nigeria", "Africa"),
    CountryInfo("NL", "NLD", "Netherlands", "Europe"),
    CountryInfo("NO", "NOR", "Norway", "Europe"),
    CountryInfo("NZ", "NZL", "New Zealand", "Oceania"),
    CountryInfo("PH", "PHL", "Philippines", "Asia"),
    CountryInfo("PK", "PAK", "Pakistan", "Asia"),
    CountryInfo("PL", "POL", "Poland", "Europe"),
    CountryInfo("PT", "PRT", "Portugal", "Europe"),
    CountryInfo("RO", "ROU", "Romania", "Europe"),
    CountryInfo("RS", "SRB", "Serbia", "Europe"),
    CountryInfo("RU", "RUS", "Russia", "Europe"),
    CountryInfo("SA", "SAU", "Saudi Arabia", "Asia"),
    CountryInfo("SE", "SWE", "Sweden", "Europe"),
    CountryInfo("SG", "SGP", "Singapore", "Asia"),
    CountryInfo("TH", "THA", "Thailand", "Asia"),
    CountryInfo("TR", "TUR", "Turkey", "Asia"),
    CountryInfo("TW", "TWN", "Taiwan", "Asia"),
    CountryInfo("UA", "UKR", "Ukraine", "Europe"),
    CountryInfo("US", "USA", "United States", "Americas"),
    CountryInfo("VN", "VNM", "Vietnam", "Asia"),
    CountryInfo("ZA", "ZAF", "South Africa", "Africa"),
]

_BY_ALPHA2 = {country.alpha2: country for country in _COUNTRIES}
_BY_ALPHA3 = {country.alpha3: country for country in _COUNTRIES}


def is_valid_alpha2(code: str) -> bool:
    """Return True when ``code`` is a known two-letter country code."""
    return code.upper() in _BY_ALPHA2


def lookup(code: str) -> CountryInfo:
    """Return the registry entry for a two- or three-letter code."""
    key = code.strip().upper()
    if len(key) == 2 and key in _BY_ALPHA2:
        return _BY_ALPHA2[key]
    if len(key) == 3 and key in _BY_ALPHA3:
        return _BY_ALPHA3[key]
    raise UnknownCountryError(code)


def alpha2_to_alpha3(alpha2: str) -> str:
    """Translate a two-letter code to its three-letter code."""
    return lookup(alpha2).alpha3


def alpha3_to_alpha2(alpha3: str) -> str:
    """Translate a three-letter code to its two-letter code."""
    return lookup(alpha3).alpha2


def country_name(code: str) -> str:
    """Return the common name for a two- or three-letter code."""
    return lookup(code).name


def iter_countries() -> Iterator[CountryInfo]:
    """Yield all registry entries in alphabetical alpha-2 order."""
    return iter(_COUNTRIES)
