"""URL normalization and hostname extraction.

The IYP refinement pass links URL nodes to the corresponding HostName
nodes; this module provides the extraction.  Only http(s) URLs occur in
the imported datasets (Citizen Lab test lists, PeeringDB websites).
"""

from __future__ import annotations

from urllib.parse import urlsplit, urlunsplit

from repro.nettypes.dns import InvalidNameError, normalize_name


class InvalidURLError(ValueError):
    """Raised when a string is not a usable http(s) URL."""


def normalize_url(url: str) -> str:
    """Return a canonical URL: lowercase scheme/host, no default port.

    >>> normalize_url('HTTPS://Example.COM:443/path?q=1')
    'https://example.com/path?q=1'
    """
    parts = urlsplit(url.strip())
    scheme = parts.scheme.lower()
    if scheme not in ("http", "https"):
        raise InvalidURLError(f"unsupported URL scheme in {url!r}")
    if not parts.hostname:
        raise InvalidURLError(f"URL without hostname: {url!r}")
    host = parts.hostname.lower().rstrip(".")
    port = parts.port
    default_port = 80 if scheme == "http" else 443
    netloc = host if port in (None, default_port) else f"{host}:{port}"
    return urlunsplit((scheme, netloc, parts.path, parts.query, ""))


def hostname_of_url(url: str) -> str:
    """Return the normalized hostname embedded in a URL."""
    parts = urlsplit(url.strip())
    if not parts.hostname:
        raise InvalidURLError(f"URL without hostname: {url!r}")
    try:
        return normalize_name(parts.hostname)
    except InvalidNameError as exc:
        raise InvalidURLError(str(exc)) from exc
