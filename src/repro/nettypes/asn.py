"""Autonomous System Number parsing and classification.

ASNs appear in datasets in several spellings (``2914``, ``AS2914``,
``as2914``, and the deprecated asdot form ``1.10``).  The graph stores
them as plain integers; this module performs the translation and flags
reserved ranges so crawlers can skip bogus data.
"""

from __future__ import annotations

ASN_MAX = 2**32 - 1

# RFC 6996 private-use ranges.
_PRIVATE_16 = range(64512, 65535)
_PRIVATE_32 = range(4200000000, 4294967295)
# RFC 5398 documentation ranges.
_DOC_16 = range(64496, 64512)
_DOC_32 = range(65536, 65552)


class InvalidASNError(ValueError):
    """Raised when a value cannot be interpreted as an ASN."""


def parse_asn(value: int | str) -> int:
    """Parse an ASN from any of its common textual spellings.

    >>> parse_asn('AS2914')
    2914
    >>> parse_asn('1.10')  # asdot
    65546
    """
    if isinstance(value, bool):
        raise InvalidASNError(f"invalid ASN {value!r}")
    if isinstance(value, int):
        asn = value
    else:
        text = value.strip()
        if text[:2].lower() == "as":
            text = text[2:]
        try:
            if "." in text:
                high, _, low = text.partition(".")
                asn = int(high, 10) * 65536 + int(low, 10)
            else:
                asn = int(text, 10)
        except ValueError as exc:
            raise InvalidASNError(f"invalid ASN {value!r}") from exc
    if not 0 <= asn <= ASN_MAX:
        raise InvalidASNError(f"ASN {asn} out of range [0, {ASN_MAX}]")
    return asn


def is_private_asn(asn: int) -> bool:
    """Return True for RFC 6996 private-use ASNs."""
    return asn in _PRIVATE_16 or asn in _PRIVATE_32


def is_documentation_asn(asn: int) -> bool:
    """Return True for RFC 5398 documentation ASNs."""
    return asn in _DOC_16 or asn in _DOC_32
