"""Binary radix trie for longest-prefix-match lookups.

The IYP refinement pass (Section 2.3) links every IP address node to the
prefix node of its longest prefix match, and every prefix to its covering
prefix.  Both lookups are served by this trie.  One trie instance holds
both address families; keys are ``(af, bitstring)`` pairs so IPv4 and IPv6
never collide.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.nettypes.ip import canonical_prefix, ip_bits, prefix_bits


class _TrieNode:
    """A node in the binary trie.

    ``value`` is ``_MISSING`` for pure branch nodes and the stored payload
    for nodes that terminate an inserted prefix.
    """

    __slots__ = ("children", "prefix", "value")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.prefix: str | None = None
        self.value: Any = _MISSING


_MISSING = object()


class PrefixTrie:
    """Maps IP prefixes to arbitrary payloads with LPM lookups.

    >>> trie = PrefixTrie()
    >>> trie.insert('10.0.0.0/8', 'coarse')
    >>> trie.insert('10.1.0.0/16', 'fine')
    >>> trie.longest_match_ip('10.1.2.3')
    ('10.1.0.0/16', 'fine')
    >>> trie.longest_match_ip('10.9.9.9')
    ('10.0.0.0/8', 'coarse')
    """

    def __init__(self) -> None:
        self._roots: dict[int, _TrieNode] = {4: _TrieNode(), 6: _TrieNode()}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: str) -> bool:
        return self.get(prefix, _MISSING) is not _MISSING

    def insert(self, prefix: str, value: Any = None) -> None:
        """Insert (or replace) a prefix with an associated payload."""
        prefix = canonical_prefix(prefix)
        af, bits = prefix_bits(prefix)
        node = self._roots[af]
        for bit in bits:
            index = int(bit)
            if node.children[index] is None:
                node.children[index] = _TrieNode()
            node = node.children[index]
        if node.value is _MISSING:
            self._size += 1
        node.prefix = prefix
        node.value = value

    def get(self, prefix: str, default: Any = None) -> Any:
        """Return the payload stored for an exact prefix, else ``default``."""
        af, bits = prefix_bits(canonical_prefix(prefix))
        node = self._roots[af]
        for bit in bits:
            node = node.children[int(bit)]
            if node is None:
                return default
        return default if node.value is _MISSING else node.value

    def longest_match_ip(self, ip: str) -> tuple[str, Any] | None:
        """Return ``(prefix, value)`` of the longest prefix covering ``ip``.

        Returns None when no inserted prefix covers the address.
        """
        af, bits = ip_bits(ip)
        return self._walk(self._roots[af], bits)

    def longest_match_prefix(self, prefix: str) -> tuple[str, Any] | None:
        """Return the longest inserted prefix covering ``prefix`` (inclusive)."""
        af, bits = prefix_bits(canonical_prefix(prefix))
        return self._walk(self._roots[af], bits)

    def covering_prefix(self, prefix: str) -> tuple[str, Any] | None:
        """Return the longest inserted prefix *strictly* covering ``prefix``.

        This is the "covering prefix" relation of the IYP refinement: the
        parent of a prefix in the routing hierarchy, never the prefix
        itself.
        """
        prefix = canonical_prefix(prefix)
        af, bits = prefix_bits(prefix)
        node = self._roots[af]
        best: tuple[str, Any] | None = None
        if node.value is not _MISSING and bits:
            best = (node.prefix, node.value)  # a /0 route covers everything
        for bit in bits[:-1]:  # stop one level short so prefix itself is excluded
            node = node.children[int(bit)]
            if node is None:
                return best
            if node.value is not _MISSING:
                best = (node.prefix, node.value)
        # The final step may land on a different prefix with the same bits
        # only if it equals `prefix`, which we exclude by construction.
        return best

    def items(self) -> Iterator[tuple[str, Any]]:
        """Yield all ``(prefix, value)`` pairs in trie order."""
        for root in self._roots.values():
            yield from self._iter_node(root)

    @staticmethod
    def _walk(node: _TrieNode, bits: str) -> tuple[str, Any] | None:
        best: tuple[str, Any] | None = None
        if node.value is not _MISSING:
            best = (node.prefix, node.value)
        for bit in bits:
            node = node.children[int(bit)]
            if node is None:
                break
            if node.value is not _MISSING:
                best = (node.prefix, node.value)
        return best

    @classmethod
    def _iter_node(cls, node: _TrieNode) -> Iterator[tuple[str, Any]]:
        if node.value is not _MISSING:
            yield node.prefix, node.value
        for child in node.children:
            if child is not None:
                yield from cls._iter_node(child)
