"""Graph statistics for the cost-based planner and reporting.

:class:`GraphStatistics` snapshots the measured shape of a store —
label populations, per-type degree histograms, per-(label, type) mean
expansion factors, and component structure.  The Cypher planner
(:mod:`repro.cypher.planner`) consumes it, when attached to an engine,
to replace its uniform-cost guesses with real cardinality estimates;
the build pipeline embeds it in the :class:`~repro.analytics.report.
AnalyticsReport` cached alongside snapshots.

Everything here is derived in O(nodes + relationships) single passes
over the store's internal maps and serializes to plain JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analytics.measures import degree_histograms, weakly_connected_components
from repro.graphdb.interface import GraphReadStore

#: How many of the largest component sizes to retain in the summary.
TOP_COMPONENT_SIZES = 10


@dataclass
class GraphStatistics:
    """Measured cardinalities of one store generation."""

    #: The store's mutation counter when the statistics were computed.
    version: int = 0
    node_count: int = 0
    relationship_count: int = 0
    label_counts: dict[str, int] = field(default_factory=dict)
    relationship_type_counts: dict[str, int] = field(default_factory=dict)
    #: ``(label, rel_type, direction)`` -> mean typed degree of a node
    #: carrying that label; ``rel_type`` ``"*"`` aggregates all types and
    #: direction is ``out``/``in``/``both``.
    expansions: dict[tuple[str, str, str], float] = field(default_factory=dict)
    #: ``(rel_type or "*", direction)`` -> ``{degree: node count}``.
    degree_histograms: dict[tuple[str, str], dict[int, int]] = field(
        default_factory=dict
    )
    component_count: int = 0
    #: Sizes of the largest weakly-connected components, descending.
    component_sizes: tuple[int, ...] = ()

    def expansion(
        self,
        label: str | None,
        rel_type: str | None = None,
        direction: str = "both",
    ) -> float:
        """Mean fan-out of one expansion hop.

        For a known label the per-label mean is authoritative (absence
        of an entry means that label never touches that type: 0.0).
        Unknown or absent labels fall back to the global mean degree
        for the type/direction slice.
        """
        rel_key = rel_type if rel_type is not None else "*"
        if label is not None and self.label_counts.get(label):
            return self.expansions.get((label, rel_key, direction), 0.0)
        histogram = self.degree_histograms.get((rel_key, direction))
        if not histogram:
            return 0.0
        population = sum(histogram.values())
        if not population:
            return 0.0
        return sum(degree * count for degree, count in histogram.items()) / population

    def to_dict(self) -> dict[str, Any]:
        expansions: dict[str, dict[str, dict[str, float]]] = {}
        for (label, rel_type, direction), mean in sorted(self.expansions.items()):
            expansions.setdefault(label, {}).setdefault(rel_type, {})[direction] = mean
        histograms: dict[str, dict[str, dict[str, int]]] = {}
        for (rel_type, direction), histogram in sorted(self.degree_histograms.items()):
            histograms.setdefault(rel_type, {})[direction] = {
                str(degree): count for degree, count in sorted(histogram.items())
            }
        return {
            "version": self.version,
            "node_count": self.node_count,
            "relationship_count": self.relationship_count,
            "label_counts": dict(sorted(self.label_counts.items())),
            "relationship_type_counts": dict(
                sorted(self.relationship_type_counts.items())
            ),
            "expansions": expansions,
            "degree_histograms": histograms,
            "component_count": self.component_count,
            "component_sizes": list(self.component_sizes),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GraphStatistics":
        expansions: dict[tuple[str, str, str], float] = {}
        for label, per_type in payload.get("expansions", {}).items():
            for rel_type, per_direction in per_type.items():
                for direction, mean in per_direction.items():
                    expansions[(label, rel_type, direction)] = mean
        histograms: dict[tuple[str, str], dict[int, int]] = {}
        for rel_type, per_direction in payload.get("degree_histograms", {}).items():
            for direction, histogram in per_direction.items():
                histograms[(rel_type, direction)] = {
                    int(degree): count for degree, count in histogram.items()
                }
        return cls(
            version=payload.get("version", 0),
            node_count=payload.get("node_count", 0),
            relationship_count=payload.get("relationship_count", 0),
            label_counts=dict(payload.get("label_counts", {})),
            relationship_type_counts=dict(
                payload.get("relationship_type_counts", {})
            ),
            expansions=expansions,
            degree_histograms=histograms,
            component_count=payload.get("component_count", 0),
            component_sizes=tuple(payload.get("component_sizes", ())),
        )


def compute_statistics(store: GraphReadStore, components: bool = True) -> GraphStatistics:
    """Measure ``store`` in a few linear passes.

    ``components=False`` skips the union-find pass for callers that only
    need cardinalities (e.g. per-request serving-state construction).
    """
    label_counts = store.label_counts()

    out_totals: dict[tuple[str, str], int] = {}
    in_totals: dict[tuple[str, str], int] = {}
    for rel_type, start_id, end_id in store.iter_edges():
        for label in store.node_labels(start_id):
            for rel_key in (rel_type, "*"):
                key = (label, rel_key)
                out_totals[key] = out_totals.get(key, 0) + 1
        for label in store.node_labels(end_id):
            for rel_key in (rel_type, "*"):
                key = (label, rel_key)
                in_totals[key] = in_totals.get(key, 0) + 1
    expansions: dict[tuple[str, str, str], float] = {}
    for (label, rel_key), total in out_totals.items():
        population = label_counts.get(label, 0)
        if population:
            expansions[(label, rel_key, "out")] = total / population
    for (label, rel_key), total in in_totals.items():
        population = label_counts.get(label, 0)
        if population:
            expansions[(label, rel_key, "in")] = total / population
    for (label, rel_key) in set(out_totals) | set(in_totals):
        population = label_counts.get(label, 0)
        if population:
            combined = out_totals.get((label, rel_key), 0) + in_totals.get(
                (label, rel_key), 0
            )
            expansions[(label, rel_key, "both")] = combined / population

    statistics = GraphStatistics(
        version=store.version,
        node_count=store.node_count,
        relationship_count=store.relationship_count,
        label_counts=label_counts,
        relationship_type_counts=store.relationship_type_counts(),
        expansions=expansions,
        degree_histograms=degree_histograms(store),
    )
    if components:
        sizes = [len(ids) for ids in weakly_connected_components(store)]
        statistics.component_count = len(sizes)
        statistics.component_sizes = tuple(sizes[:TOP_COMPONENT_SIZES])
    return statistics
