"""Build-time analytics precompute.

:func:`compute_analytics_report` runs every ``precompute``-flagged
procedure with default arguments plus :func:`compute_statistics`, and
bundles the results into an :class:`AnalyticsReport` stamped with the
store's version.  The build pipeline attaches the report to its
``BuildReport`` and the snapshot archive persists ``report.to_dict()``
in the manifest, so a serving process can answer zero-argument
``CALL algo.*`` queries from the cache without recomputing anything.

A report loaded against a deserialized snapshot must be re-stamped with
that store's version (the binary loader resets the mutation counter):
:meth:`AnalyticsReport.for_store` does exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.analytics.registry import PROCEDURES, ProcedureContext
from repro.analytics.statistics import GraphStatistics, compute_statistics
from repro.graphdb.store import GraphStore


@dataclass(frozen=True)
class AnalyticsReport:
    """Precomputed analytics for one store generation."""

    #: Store version the rows were computed against; the engine only
    #: serves the cache when this matches the live store's version.
    version: int = 0
    #: Wall-clock seconds spent on statistics plus precompute.
    seconds: float = 0.0
    statistics: GraphStatistics | None = None
    #: ``{procedure name: result rows}`` for precompute procedures.
    procedures: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def rows(self, name: str) -> list[dict[str, Any]] | None:
        """Cached rows for ``name``, or None if not precomputed."""
        return self.procedures.get(name)

    def for_store(self, store: GraphStore) -> "AnalyticsReport":
        """Re-stamp the report (and its statistics) to ``store``'s
        version — used when attaching archived analytics to a freshly
        loaded snapshot, whose mutation counter restarts at zero."""
        statistics = self.statistics
        if statistics is not None:
            statistics = replace_version(statistics, store.version)
        return replace(self, version=store.version, statistics=statistics)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "seconds": round(self.seconds, 6),
            "statistics": (
                self.statistics.to_dict() if self.statistics is not None else None
            ),
            "procedures": self.procedures,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AnalyticsReport":
        statistics = payload.get("statistics")
        return cls(
            version=payload.get("version", 0),
            seconds=payload.get("seconds", 0.0),
            statistics=(
                GraphStatistics.from_dict(statistics)
                if statistics is not None
                else None
            ),
            procedures={
                name: list(rows)
                for name, rows in payload.get("procedures", {}).items()
            },
        )


def replace_version(statistics: GraphStatistics, version: int) -> GraphStatistics:
    """Copy ``statistics`` with a new store version."""
    copied = GraphStatistics(**vars(statistics))
    copied.version = version
    return copied


def compute_analytics_report(
    store: GraphStore, statistics: GraphStatistics | None = None
) -> AnalyticsReport:
    """Run statistics plus every precompute procedure against ``store``."""
    started = time.perf_counter()
    if statistics is None:
        statistics = compute_statistics(store)
    context = ProcedureContext(store, statistics)
    procedures = {
        name: spec.run(context)
        for name, spec in PROCEDURES.items()
        if spec.precompute
    }
    return AnalyticsReport(
        version=store.version,
        seconds=time.perf_counter() - started,
        statistics=statistics,
        procedures=procedures,
    )
