"""The ``CALL algo.*`` procedure registry.

Each procedure wraps one measure from :mod:`repro.analytics.measures`
behind a stable name, a fixed column tuple, and a deterministic row
order, so the same registry serves three consumers: the Cypher engine's
``CALL`` clause, the build-time precompute
(:mod:`repro.analytics.report`), and the ``repro analytics`` CLI.
Procedures flagged ``precompute`` run with default arguments at build
time and their rows are cached in the snapshot archive; the engine
serves the cache whenever a zero-argument ``CALL`` hits a store whose
version matches the cached generation.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analytics import measures
from repro.graphdb.store import GraphStore


@dataclass(frozen=True)
class ProcedureContext:
    """What a procedure sees when invoked: the store and, when the
    engine has them, planner statistics."""

    store: GraphStore
    statistics: Any = None


@dataclass(frozen=True)
class ProcedureSpec:
    """One registered procedure."""

    name: str
    summary: str
    #: Human-readable argument signature, e.g. ``(damping?, iterations?)``.
    signature: str
    columns: tuple[str, ...]
    runner: Callable[..., list[dict[str, Any]]] = field(compare=False)
    #: Whether the zero-argument invocation is computed at build time
    #: and cached in the snapshot archive.
    precompute: bool = False

    def run(self, context: ProcedureContext, *args: Any) -> list[dict[str, Any]]:
        return self.runner(context, *args)


def _components(
    context: ProcedureContext, rel_type: str | None = None
) -> list[dict[str, Any]]:
    return [
        {"component": component[0], "size": len(component)}
        for component in measures.weakly_connected_components(
            context.store, rel_type
        )
    ]


def _pagerank(
    context: ProcedureContext, damping: float = 0.85, iterations: int = 40
) -> list[dict[str, Any]]:
    scores = measures.pagerank(
        context.store, damping=float(damping), iterations=int(iterations)
    )
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [{"asn": asn, "score": score} for asn, score in ordered]


def _degree_distribution(
    context: ProcedureContext,
    rel_type: str | None = None,
    direction: str = "both",
    label: str | None = None,
) -> list[dict[str, Any]]:
    histogram = measures.degree_histogram(
        context.store,
        rel_type=rel_type,
        direction=measures.parse_direction(direction),
        label=label,
    )
    return [
        {"degree": degree, "nodes": count}
        for degree, count in sorted(histogram.items())
    ]


def _degree_centrality(
    context: ProcedureContext,
    label: str | None = None,
    rel_type: str | None = None,
    direction: str = "both",
) -> list[dict[str, Any]]:
    rows = measures.degree_centrality(
        context.store,
        label=label,
        rel_type=rel_type,
        direction=measures.parse_direction(direction),
    )
    return [
        {"node": node_id, "degree": degree, "score": score}
        for node_id, degree, score in rows
    ]


def _betweenness(
    context: ProcedureContext, label: str = "AS"
) -> list[dict[str, Any]]:
    scores = measures.betweenness_centrality(context.store, label=label)
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [{"asn": asn, "score": score} for asn, score in ordered]


def _kreach(
    context: ProcedureContext,
    node: int,
    k: int,
    rel_type: str | None = None,
    direction: str = "both",
) -> list[dict[str, Any]]:
    depths = measures.k_reach(
        context.store,
        int(node),
        int(k),
        rel_type=rel_type,
        direction=measures.parse_direction(direction),
    )
    ordered = sorted(depths.items(), key=lambda item: (item[1], item[0]))
    return [{"node": node_id, "depth": depth} for node_id, depth in ordered]


def _customer_cone(context: ProcedureContext) -> list[dict[str, Any]]:
    cones = measures.customer_cones(context.store)
    return [{"asn": asn, "size": len(members)} for asn, members in sorted(cones.items())]


PROCEDURES: dict[str, ProcedureSpec] = {
    spec.name: spec
    for spec in (
        ProcedureSpec(
            name="algo.components",
            summary="Weakly-connected components, largest first; the "
            "component id is its smallest member node id.",
            signature="(rel_type?)",
            columns=("component", "size"),
            runner=_components,
            precompute=True,
        ),
        ProcedureSpec(
            name="algo.pagerank",
            summary="PageRank over the directed AS graph "
            "(PEERS_WITH + DEPENDS_ON), highest score first.",
            signature="(damping?, iterations?)",
            columns=("asn", "score"),
            runner=_pagerank,
            precompute=True,
        ),
        ProcedureSpec(
            name="algo.degree_distribution",
            summary="Degree histogram, optionally restricted to one "
            "relationship type, direction, or label.",
            signature="(rel_type?, direction?, label?)",
            columns=("degree", "nodes"),
            runner=_degree_distribution,
            precompute=True,
        ),
        ProcedureSpec(
            name="algo.degree_centrality",
            summary="Per-node degree and normalized degree centrality, "
            "highest degree first.",
            signature="(label?, rel_type?, direction?)",
            columns=("node", "degree", "score"),
            runner=_degree_centrality,
        ),
        ProcedureSpec(
            name="algo.betweenness",
            summary="Brandes betweenness over the undirected AS graph, "
            "highest score first.",
            signature="(label?)",
            columns=("asn", "score"),
            runner=_betweenness,
        ),
        ProcedureSpec(
            name="algo.kreach",
            summary="Minimum hop count to every node within k hops of a "
            "source node.",
            signature="(node, k, rel_type?, direction?)",
            columns=("node", "depth"),
            runner=_kreach,
        ),
        ProcedureSpec(
            name="algo.customer_cone",
            summary="AS customer cone sizes from BGPKIT "
            "provider-to-customer links, by ascending ASN.",
            signature="()",
            columns=("asn", "size"),
            runner=_customer_cone,
            precompute=True,
        ),
    )
}


def get_procedure(name: str) -> ProcedureSpec | None:
    """Look up a procedure by (case-insensitive) dotted name."""
    return PROCEDURES.get(name.lower())


def suggest(name: str) -> list[str]:
    """Closest registered procedure names for a did-you-mean hint."""
    candidate = name.lower()
    matches = difflib.get_close_matches(candidate, PROCEDURES, n=3, cutoff=0.4)
    if not matches and "." not in candidate:
        matches = difflib.get_close_matches(
            f"algo.{candidate}", PROCEDURES, n=3, cutoff=0.4
        )
    return matches
