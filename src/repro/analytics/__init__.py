"""Graph analytics over the knowledge graph.

The subsystem behind ``CALL algo.*`` (Section 4 of the paper's
application studies, generalized): vectorized measures over the store's
typed adjacency (:mod:`repro.analytics.measures`), a procedure registry
shared by the Cypher engine, CLI and linter
(:mod:`repro.analytics.registry`), planner statistics
(:mod:`repro.analytics.statistics`), and the build-time precompute
report cached in the snapshot archive (:mod:`repro.analytics.report`).
See ``documentation/analytics.md`` for the measure catalog and the
``CALL`` grammar.
"""

from repro.analytics.measures import (
    AS_EDGE_TYPES,
    betweenness_centrality,
    bounded_reach,
    customer_cones,
    degree_centrality,
    degree_histogram,
    degree_histograms,
    k_reach,
    pagerank,
    parse_direction,
    transitive_closure,
    weakly_connected_components,
)
from repro.analytics.registry import (
    PROCEDURES,
    ProcedureContext,
    ProcedureSpec,
    get_procedure,
    suggest,
)
from repro.analytics.report import AnalyticsReport, compute_analytics_report
from repro.analytics.statistics import GraphStatistics, compute_statistics

__all__ = [
    "AS_EDGE_TYPES",
    "AnalyticsReport",
    "GraphStatistics",
    "PROCEDURES",
    "ProcedureContext",
    "ProcedureSpec",
    "betweenness_centrality",
    "bounded_reach",
    "compute_analytics_report",
    "compute_statistics",
    "customer_cones",
    "degree_centrality",
    "degree_histogram",
    "degree_histograms",
    "get_procedure",
    "k_reach",
    "pagerank",
    "parse_direction",
    "suggest",
    "transitive_closure",
    "weakly_connected_components",
]
