"""Vectorized graph measures over the store's typed adjacency.

Every measure in this module reads the store through the bulk accessors
of the :class:`repro.graphdb.interface.GraphReadStore` contract
(``node_ids``, ``label_ids``, ``iter_edges``, ``typed_degrees``,
``neighbor_ids``) instead of issuing one Cypher match per node, which is
what the legacy study code did.  Because only the contract is touched,
every measure runs unchanged against the dict backend and the columnar
backend (:mod:`repro.columnar`).  The semantics are pinned by equivalence tests against naive
pure-Python references (``tests/test_analytics_equivalence.py``), and
two of the helpers deliberately replicate pre-existing code paths
bit-for-bit:

* :func:`pagerank` reproduces the float-accumulation order of
  ``repro.analysis.centrality.as_pagerank`` so scores are identical,
  not merely close.
* :func:`transitive_closure` reproduces the memoized cycle-tolerant DFS
  the synthetic-world builder uses for customer cones.

Degree counting goes through :func:`repro.graphdb.directional_count`,
the same helper backing ``GraphStore.degree``/``degree_by_type``, so
``Direction.BOTH`` self-loop handling cannot diverge between the store
and these histograms.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Hashable, Iterable, Mapping
from typing import Any

from repro.graphdb.interface import GraphReadStore
from repro.graphdb.model import Direction
from repro.graphdb.store import directional_count

#: Relationship types forming the directed AS-to-AS graph used by the
#: paper's centrality analyses (BGPKIT peering plus IHR dependency).
AS_EDGE_TYPES = ("PEERS_WITH", "DEPENDS_ON")

#: On ``(:AS)-[:PEERS_WITH {rel}]->(:AS)`` edges from BGPKIT as2rel,
#: ``rel == 1`` marks a provider-to-customer link (start = provider).
PROVIDER_REL_VALUE = 1

_DIRECTION_NAMES = (
    ("out", Direction.OUT),
    ("in", Direction.IN),
    ("both", Direction.BOTH),
)


def parse_direction(value: Any) -> Direction:
    """Coerce a user-facing direction argument into :class:`Direction`."""
    if isinstance(value, Direction):
        return value
    if isinstance(value, str):
        for name, direction in _DIRECTION_NAMES:
            if value.lower() == name:
                return direction
    raise ValueError(f"invalid direction {value!r}; expected out, in or both")


# ----------------------------------------------------------------------
# Generic reachability helpers (the SPoF walks and customer cones are
# both instances of these)
# ----------------------------------------------------------------------


def transitive_closure(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
    keys: Iterable[Hashable] | None = None,
) -> dict[Hashable, set[Hashable]]:
    """Reflexive-transitive closure of a successor relation.

    One memoized depth-first walk per key; a key re-entered while still
    on the DFS stack contributes only itself, matching the cycle
    handling of the synthetic-topology cone computation it replaces.
    Returns ``{key: set of reachable keys including key}`` for each of
    ``keys`` (default: every key in ``adjacency``).
    """
    cache: dict[Hashable, set[Hashable]] = {}

    def closure(key: Hashable, visiting: set[Hashable]) -> set[Hashable]:
        if key in cache:
            return cache[key]
        if key in visiting:
            return {key}
        visiting.add(key)
        members = {key}
        for successor in adjacency.get(key, ()):
            members |= closure(successor, visiting)
        visiting.discard(key)
        cache[key] = members
        return members

    targets = list(keys) if keys is not None else list(adjacency)
    for key in targets:
        closure(key, set())
    return {key: cache[key] for key in targets}


def bounded_reach(
    frontier: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Hashable] | None],
    *,
    max_depth: int,
    visited: Iterable[Hashable] = (),
) -> list[Hashable]:
    """Breadth-first reachability bounded to ``max_depth`` expansions.

    ``successors(key)`` returns the keys reachable in one step, or
    ``None`` when the key is unknown — an unknown key is skipped
    *without* being marked visited, so it stays expandable should a
    later frontier learn about it.  This replicates the zone-walk
    semantics of the SPoF study.  Returns the keys actually expanded,
    in expansion order.
    """
    seen = set(visited)
    reached: list[Hashable] = []
    current = set(frontier)
    depth = 0
    while current and depth < max_depth:
        next_frontier: set[Hashable] = set()
        for key in current:
            if key in seen:
                continue
            links = successors(key)
            if links is None:
                continue
            seen.add(key)
            reached.append(key)
            for successor in links:
                if successor not in seen:
                    next_frontier.add(successor)
        current = next_frontier
        depth += 1
    return reached


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------


def weakly_connected_components(
    store: GraphReadStore, rel_type: str | None = None
) -> list[list[int]]:
    """Weakly-connected components via union-find over the edge list.

    Edge direction is ignored; isolated nodes form singleton
    components.  Components come back as sorted member lists, largest
    first (ties broken by smallest member id), and because unions always
    keep the smaller id as root, each component's canonical id is its
    smallest member.
    """
    parent = {node_id: node_id for node_id in store.node_ids()}

    def find(node_id: int) -> int:
        root = node_id
        while parent[root] != root:
            root = parent[root]
        while parent[node_id] != root:
            parent[node_id], node_id = root, parent[node_id]
        return root

    for _, start, end in store.iter_edges(rel_type):
        a, b = find(start), find(end)
        if a != b:
            if a > b:
                a, b = b, a
            parent[b] = a

    members: dict[int, list[int]] = {}
    for node_id in parent:
        members.setdefault(find(node_id), []).append(node_id)
    components = [sorted(ids) for ids in members.values()]
    components.sort(key=lambda ids: (-len(ids), ids[0]))
    return components


# ----------------------------------------------------------------------
# Degree distributions
# ----------------------------------------------------------------------


def degree_histogram(
    store: GraphReadStore,
    rel_type: str | None = None,
    direction: Direction = Direction.BOTH,
    label: str | None = None,
) -> dict[int, int]:
    """``{degree: node count}`` over one (label, type, direction) slice."""
    if label is not None:
        node_ids: Iterable[int] = store.label_ids(label)
    else:
        node_ids = store.node_ids()
    histogram: Counter[int] = Counter()
    for node_id in node_ids:
        degrees = store.typed_degrees(node_id)
        if rel_type is None:
            out = sum(entry[0] for entry in degrees.values())
            inbound = sum(entry[1] for entry in degrees.values())
            loops = sum(entry[2] for entry in degrees.values())
        else:
            out, inbound, loops = degrees.get(rel_type, (0, 0, 0))
        histogram[directional_count(out, inbound, loops, direction)] += 1
    return dict(histogram)


def degree_histograms(store: GraphReadStore) -> dict[tuple[str, str], dict[int, int]]:
    """All per-(type, direction) degree histograms in one node pass.

    Keys are ``(rel_type, direction_name)`` with ``"*"`` aggregating
    every relationship type and direction names ``out``/``in``/``both``.
    Each node contributes only to the types it actually touches during
    the pass; zero-degree buckets are back-filled afterwards so every
    histogram sums to the node count.
    """
    histograms: dict[tuple[str, str], Counter[int]] = {}
    counted: Counter[tuple[str, str]] = Counter()
    for node_id in store.node_ids():
        total_out = total_in = total_loops = 0
        for rel_type, (out, inbound, loops) in store.typed_degrees(node_id).items():
            total_out += out
            total_in += inbound
            total_loops += loops
            for name, direction in _DIRECTION_NAMES:
                key = (rel_type, name)
                bucket = histograms.setdefault(key, Counter())
                bucket[directional_count(out, inbound, loops, direction)] += 1
                counted[key] += 1
        for name, direction in _DIRECTION_NAMES:
            bucket = histograms.setdefault(("*", name), Counter())
            bucket[
                directional_count(total_out, total_in, total_loops, direction)
            ] += 1
    node_count = store.node_count
    for key, bucket in histograms.items():
        if key[0] == "*":
            continue
        missing = node_count - counted[key]
        if missing:
            bucket[0] += missing
    return {key: dict(bucket) for key, bucket in histograms.items()}


def degree_centrality(
    store: GraphReadStore,
    label: str | None = None,
    rel_type: str | None = None,
    direction: Direction = Direction.BOTH,
) -> list[tuple[int, int, float]]:
    """``(node_id, degree, degree / (n - 1))`` sorted by degree desc.

    ``n`` is the number of candidate nodes (the label population when a
    label is given); ties are broken by ascending node id.
    """
    if label is not None:
        node_ids = sorted(store.label_ids(label))
    else:
        node_ids = sorted(store.node_ids())
    n = len(node_ids)
    rows: list[tuple[int, int, float]] = []
    for node_id in node_ids:
        degrees = store.typed_degrees(node_id)
        if rel_type is None:
            out = sum(entry[0] for entry in degrees.values())
            inbound = sum(entry[1] for entry in degrees.values())
            loops = sum(entry[2] for entry in degrees.values())
        else:
            out, inbound, loops = degrees.get(rel_type, (0, 0, 0))
        degree = directional_count(out, inbound, loops, direction)
        rows.append((node_id, degree, degree / (n - 1) if n > 1 else 0.0))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


# ----------------------------------------------------------------------
# Centrality
# ----------------------------------------------------------------------


def pagerank(
    store: GraphReadStore,
    damping: float = 0.85,
    iterations: int = 40,
    rel_types: Iterable[str] = AS_EDGE_TYPES,
    label: str = "AS",
    key: str = "asn",
) -> dict[Any, float]:
    """PageRank over the directed AS-to-AS subgraph, keyed by ``key``.

    The accumulation order replicates
    ``repro.analysis.centrality.as_pagerank`` exactly — ranks are
    summed per ascending source index with identical per-edge shares —
    so the returned floats are bit-identical to the Cypher-driven
    implementation, independent of edge-list construction order.
    Dangling mass is redistributed uniformly each iteration.
    """
    key_of: dict[int, Any] = {}
    for node_id in store.label_ids(label):
        value = store.node_property(node_id, key)
        if value is not None:
            key_of[node_id] = value

    edges: list[tuple[Any, Any]] = []
    for rel_type in rel_types:
        for _, start_id, end_id in store.iter_edges(rel_type):
            src = key_of.get(start_id)
            dst = key_of.get(end_id)
            if src is not None and dst is not None:
                edges.append((src, dst))
    keys = sorted({src for src, _ in edges} | {dst for _, dst in edges})
    if not keys:
        return {}
    index = {value: i for i, value in enumerate(keys)}
    out_links: list[list[int]] = [[] for _ in keys]
    for src, dst in edges:
        out_links[index[src]].append(index[dst])

    n = len(keys)
    rank = [1.0 / n] * n
    for _ in range(iterations):
        incoming = [0.0] * n
        dangling = 0.0
        for i, targets in enumerate(out_links):
            if not targets:
                dangling += rank[i]
                continue
            share = rank[i] / len(targets)
            for j in targets:
                incoming[j] += share
        base = (1.0 - damping) / n + damping * dangling / n
        rank = [base + damping * incoming[i] for i in range(n)]
    return {value: rank[index[value]] for value in keys}


def betweenness_centrality(
    store: GraphReadStore,
    label: str = "AS",
    rel_types: Iterable[str] = AS_EDGE_TYPES,
    key: str = "asn",
) -> dict[Any, float]:
    """Brandes betweenness over the undirected AS subgraph.

    Parallel edges are collapsed and self-loops dropped (shortest paths
    see a simple graph).  Scores are halved once at the end, the
    undirected-graph convention.  Neighbor iteration is sorted so float
    accumulation is deterministic across runs.
    """
    key_of: dict[int, Any] = {}
    for node_id in store.label_ids(label):
        value = store.node_property(node_id, key)
        if value is not None:
            key_of[node_id] = value

    adjacency: dict[int, set[int]] = {node_id: set() for node_id in key_of}
    for rel_type in rel_types:
        for _, start_id, end_id in store.iter_edges(rel_type):
            if (
                start_id in adjacency
                and end_id in adjacency
                and start_id != end_id
            ):
                adjacency[start_id].add(end_id)
                adjacency[end_id].add(start_id)

    ordered = sorted(adjacency)
    neighbors = {node_id: sorted(adjacency[node_id]) for node_id in ordered}
    centrality = {node_id: 0.0 for node_id in ordered}
    for source in ordered:
        stack: list[int] = []
        predecessors: dict[int, list[int]] = {v: [] for v in ordered}
        sigma = dict.fromkeys(ordered, 0)
        sigma[source] = 1
        distance = {source: 0}
        queue = [source]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            stack.append(v)
            for w in neighbors[v]:
                if w not in distance:
                    distance[w] = distance[v] + 1
                    queue.append(w)
                if distance[w] == distance[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        delta = dict.fromkeys(ordered, 0.0)
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]
    return {key_of[node_id]: centrality[node_id] / 2.0 for node_id in ordered}


# ----------------------------------------------------------------------
# Reachability measures
# ----------------------------------------------------------------------


def k_reach(
    store: GraphReadStore,
    node_id: int,
    k: int,
    rel_type: str | None = None,
    direction: Direction = Direction.BOTH,
) -> dict[int, int]:
    """Minimum hop count to every node within ``k`` hops of ``node_id``.

    The source itself is excluded.  Returns ``{node_id: depth}`` with
    depths in ``1..k``.
    """
    if k <= 0 or not store.has_node(node_id):
        return {}
    depths: dict[int, int] = {}
    seen = {node_id}
    frontier = [node_id]
    for depth in range(1, k + 1):
        next_frontier: list[int] = []
        for current in frontier:
            for neighbor in store.neighbor_ids(current, rel_type, direction):
                if neighbor not in seen:
                    seen.add(neighbor)
                    depths[neighbor] = depth
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return depths


def customer_cones(store: GraphReadStore) -> dict[Any, set[Any]]:
    """AS customer cones from BGPKIT provider-to-customer links.

    Provider links are ``(:AS)-[:PEERS_WITH {rel: 1}]->(:AS)`` with the
    provider at the start.  Every AS carrying an ``asn`` gets a cone;
    a stub AS's cone is just itself.  Cycle handling matches the
    synthetic-world builder (see :func:`transitive_closure`).
    """
    asn_of: dict[int, Any] = {}
    for node_id in store.label_ids("AS"):
        asn = store.node_property(node_id, "asn")
        if asn is not None:
            asn_of[node_id] = asn
    customers: dict[Any, list[Any]] = {}
    for rel in store.relationships_with_type("PEERS_WITH"):
        if rel.properties.get("rel") != PROVIDER_REL_VALUE:
            continue
        provider = asn_of.get(rel.start_id)
        customer = asn_of.get(rel.end_id)
        if provider is None or customer is None:
            continue
        customers.setdefault(provider, []).append(customer)
    return transitive_closure(customers, keys=sorted(asn_of.values()))
