"""Concurrency contracts: declarative lock annotations + runtime checking.

The serving stack is a heavily concurrent system — a threaded HTTP
server, a readers-writer lock on :class:`~repro.graphdb.store.GraphStore`,
atomic hot-swap of serving state, generation-keyed caches, and shared
telemetry registries.  This package makes the locking contracts those
pieces rely on *machine-checkable* instead of conventional:

- :mod:`repro.concurrency.guards` — the declarative registry.  Classes
  publish a ``GUARDED_BY`` map (attribute -> guard spec) and methods
  that require a caller-held lock carry ``@guarded_by("_lock")``.  The
  static analyzer in :mod:`repro.lint.concurrency` reads both straight
  from the AST; at runtime the decorator is pure metadata.
- :mod:`repro.concurrency.runtime` — the debug harness.  Env-gated
  (``REPRO_LOCK_DEBUG=1``) and zero-cost when off: lock holders are
  recorded per thread, ``_locked`` methods assert their lock is actually
  held, and a global :class:`LockOrderMonitor` tracks the runtime
  acquires-while-holding graph and raises :class:`LockOrderError` the
  first time two locks are ever taken in opposite orders — turning a
  potential deadlock into a deterministic test failure.

Nothing in here imports the store, engine, or server, so every layer can
depend on it without cycles.  The static side lives in
:mod:`repro.lint.concurrency` (``repro check-concurrency``); both sides
share the guard-spec grammar parsed by :func:`parse_guard_spec`.
"""

from repro.concurrency.guards import (
    GUARD_MODES,
    GuardSpec,
    guarded_by,
    parse_guard_spec,
    required_locks,
)
from repro.concurrency.runtime import (
    MONITOR,
    LockDisciplineError,
    LockOrderError,
    LockOrderMonitor,
    TrackedLock,
    lock_debug_enabled,
    new_lock,
    set_lock_debug,
)

__all__ = [
    "GUARD_MODES",
    "GuardSpec",
    "LockDisciplineError",
    "LockOrderError",
    "LockOrderMonitor",
    "MONITOR",
    "TrackedLock",
    "guarded_by",
    "lock_debug_enabled",
    "new_lock",
    "parse_guard_spec",
    "required_locks",
]
