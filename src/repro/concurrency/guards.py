"""The declarative guarded-by registry.

Concurrency contracts are declared next to the state they protect, in
two forms the static analyzer (:mod:`repro.lint.concurrency`) reads
straight from the AST:

``GUARDED_BY`` class attribute
    A ``dict[str, str]`` mapping attribute names to *guard specs*::

        class StatementRegistry:
            GUARDED_BY = {
                "_statements": "_lock",          # all access under _lock
                "recorded_total": "write:_lock", # mutations only
            }

``@guarded_by("_lock")`` method decorator
    Declares that the method requires the named lock to be held *by the
    caller* — the method itself takes no lock.  ``_locked``-suffixed
    methods carry the same contract implicitly (against the class's
    primary lock) and additionally self-check at runtime under the
    debug harness.

Guard spec grammar (``parse_guard_spec``):

``"<lock>"``
    Full guard: reads need the lock held shared or exclusive, mutations
    need it exclusive.  The default for registries whose readers build
    consistent snapshots (statement stats, SLO buckets, metrics).
``"write:<lock>"``
    Write guard: mutations need the lock exclusive, reads are
    deliberately lock-free.  The GraphStore pattern — read accessors
    take no lock, callers needing isolation wrap in ``read_lock()`` —
    and the pattern for GIL-atomic counters read by monitoring
    endpoints.
``"frozen"``
    Immutable after construction: the attribute may only be assigned in
    ``__init__``.  ``ServingState`` and the service's cache handles.
``"atomic"``
    Declared lock-free by design (a single reference assignment /
    read).  Documents intent; the analyzer checks nothing.

``<lock>`` is the name of a lock attribute on the same instance
(``_lock``, ``_rwlock``, ``_cond``, ...).  For readers-writer locks the
exclusive hold is ``write_lock()`` / ``.write()`` and the shared hold is
``read_lock()`` / ``.read()``; for plain mutexes every hold is
exclusive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

#: Recognized guard-spec modes, in documentation order.
GUARD_MODES = ("full", "write", "frozen", "atomic")

_F = TypeVar("_F", bound=Callable[..., object])


@dataclass(frozen=True)
class GuardSpec:
    """One parsed guard spec: how an attribute must be accessed."""

    mode: str  # one of GUARD_MODES
    lock: str | None  # lock attribute name; None for frozen/atomic

    def __str__(self) -> str:
        if self.mode == "full":
            return self.lock or ""
        if self.mode == "write":
            return f"write:{self.lock}"
        return self.mode


def parse_guard_spec(spec: str) -> GuardSpec:
    """Parse one ``GUARDED_BY`` value; raises ``ValueError`` when malformed.

    Shared by the decorator (fail fast at import) and the static
    analyzer (RACE006 on unparsable specs).
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"guard spec must be a non-empty string, got {spec!r}")
    if spec in ("frozen", "atomic"):
        return GuardSpec(spec, None)
    mode, sep, lock = spec.partition(":")
    if not sep:
        mode, lock = "full", spec
    if mode not in ("full", "write"):
        raise ValueError(f"unknown guard mode {mode!r} in spec {spec!r}")
    if not lock.isidentifier():
        raise ValueError(f"guard spec {spec!r} does not name a lock attribute")
    return GuardSpec(mode, lock)


def guarded_by(*locks: str) -> Callable[[_F], _F]:
    """Declare that a method requires ``locks`` held by its caller.

    The decorator is metadata: it validates the lock names once at
    import time, records them on the function as ``__guarded_by__``,
    and returns the function unchanged — zero runtime cost per call.
    The static analyzer treats the named locks as held throughout the
    method body and checks every *callsite* for the hold instead
    (RACE003).
    """
    if not locks:
        raise ValueError("guarded_by() needs at least one lock attribute name")
    for lock in locks:
        if not isinstance(lock, str) or not lock.isidentifier():
            raise ValueError(f"guarded_by() lock name {lock!r} is not an identifier")

    def decorate(func: _F) -> _F:
        func.__guarded_by__ = tuple(locks)  # type: ignore[attr-defined]
        return func

    return decorate


def required_locks(func: Callable[..., object]) -> tuple[str, ...]:
    """The locks a callable declared via :func:`guarded_by`, if any."""
    return tuple(getattr(func, "__guarded_by__", ()))
