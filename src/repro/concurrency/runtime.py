"""Runtime lock-discipline harness: env-gated, zero-cost when off.

With ``REPRO_LOCK_DEBUG=1`` in the environment (or after
:func:`set_lock_debug`), lock factories across the codebase
(:func:`repro.graphdb.rwlock.new_rwlock`, :func:`new_lock`) hand out
*instrumented* locks that

- record which thread holds them, so ``_locked`` methods can assert
  their contract (``check_write_held``) instead of trusting the caller;
- report every acquisition to the global :class:`LockOrderMonitor`,
  which maintains the runtime acquires-while-holding graph and raises
  :class:`LockOrderError` *before* blocking the first time two locks
  are ever taken in opposite orders — a potential deadlock becomes a
  deterministic, immediate test failure instead of a hung CI job.

When the flag is off (production serving), the factories return the
plain uninstrumented locks and the contract checks compile down to a
no-op method call — the server throughput guard in
``benchmarks/test_server_throughput.py`` holds this to <5% overhead.
"""

from __future__ import annotations

import os
import threading
from types import TracebackType
from typing import Any, Protocol

from repro.concurrency.guards import guarded_by

_ENV_FLAG = "REPRO_LOCK_DEBUG"

_enabled = os.environ.get(_ENV_FLAG, "").strip().lower() not in ("", "0", "false", "off")


def lock_debug_enabled() -> bool:
    """True when lock factories should hand out instrumented locks."""
    return _enabled


def set_lock_debug(enabled: bool) -> None:
    """Flip the debug flag (tests); affects locks constructed *after*."""
    global _enabled
    _enabled = enabled


class LockDisciplineError(RuntimeError):
    """A lock contract was violated (mutation without the lock held)."""


class LockOrderError(LockDisciplineError):
    """Two locks were acquired in opposite orders (potential deadlock)."""


class LockLike(Protocol):
    """The subset of the lock interface the factories promise."""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool | None: ...


class LockOrderMonitor:
    """The global runtime acquires-while-holding graph.

    Each thread keeps a stack of the instrumented locks it holds.
    :meth:`acquiring` is called *before* an acquisition blocks: it adds
    one edge per currently held lock and refuses (raises
    :class:`LockOrderError`) when the new edge would close a cycle —
    i.e. some earlier execution established the opposite order.  The
    graph is cumulative across the process, so a violation is caught
    even when the two conflicting acquisitions never overlap in time.
    """

    GUARDED_BY = {
        "_edges": "_lock",
        "acquisitions": "write:_lock",
        "violations": "write:_lock",
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: lock name -> set of lock names acquired while holding it.
        self._edges: dict[str, set[str]] = {}
        self._tls = threading.local()
        self.acquisitions = 0
        self.violations = 0

    # -- per-thread hold stack -------------------------------------------

    def _stack(self) -> list[str]:
        stack: list[str] | None = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held(self) -> tuple[str, ...]:
        """Names of the instrumented locks this thread currently holds."""
        return tuple(self._stack())

    # -- recording -------------------------------------------------------

    def acquiring(self, name: str) -> None:
        """Record intent to acquire ``name``; raises on an order cycle.

        Called before the real acquisition blocks, so an inverted order
        fails fast instead of deadlocking the test run.
        """
        stack = self._stack()
        if stack:
            with self._lock:
                self.acquisitions += 1
                for held in stack:
                    if held == name:
                        continue
                    path = self._path(name, held)
                    if path is not None:
                        self.violations += 1
                        chain = " -> ".join([*path, name])
                        raise LockOrderError(
                            f"lock order violation: acquiring {name!r} while "
                            f"holding {held!r}, but the opposite order "
                            f"{chain} was previously established"
                        )
                    self._edges.setdefault(held, set()).add(name)
        else:
            with self._lock:
                self.acquisitions += 1
        stack.append(name)

    def abandoned(self, name: str) -> None:
        """Undo :meth:`acquiring` for an acquisition that failed."""
        self.released(name)

    def released(self, name: str) -> None:
        """Record that this thread released ``name``."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    @guarded_by("_lock")
    def _path(self, src: str, dst: str) -> list[str] | None:
        """A path ``src -> ... -> dst`` in the edge graph (caller locks)."""
        parents: dict[str, str] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop()
            for succ in self._edges.get(node, ()):
                if succ in seen:
                    continue
                parents[succ] = node
                if succ == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                seen.add(succ)
                frontier.append(succ)
        return None

    # -- reading ---------------------------------------------------------

    def edges(self) -> dict[str, set[str]]:
        """A copy of the acquires-while-holding graph."""
        with self._lock:
            return {name: set(succs) for name, succs in self._edges.items()}

    def info(self) -> dict[str, Any]:
        """Summary counters (tests, debug endpoints)."""
        with self._lock:
            return {
                "locks": sorted(
                    set(self._edges) | {s for ss in self._edges.values() for s in ss}
                ),
                "edges": sum(len(succs) for succs in self._edges.values()),
                "acquisitions": self.acquisitions,
                "violations": self.violations,
            }

    def clear(self) -> None:
        """Reset the graph and counters (this thread's stack included)."""
        with self._lock:
            self._edges.clear()
            self.acquisitions = 0
            self.violations = 0
        self._tls.stack = []


#: Process-wide monitor every instrumented lock reports to.
MONITOR = LockOrderMonitor()


class TrackedLock:
    """A named, monitor-reporting wrapper around ``threading.Lock``.

    Non-reentrant like the lock it wraps — and because the monitor sees
    the hold, a re-acquisition by the owning thread raises
    :class:`LockDisciplineError` immediately instead of deadlocking.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self.name in MONITOR.held():
            raise LockDisciplineError(
                f"self-deadlock: thread already holds {self.name!r}"
            )
        MONITOR.acquiring(self.name)
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired:
            MONITOR.abandoned(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        MONITOR.released(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock {self.name} locked={self._inner.locked()}>"


def new_lock(name: str) -> LockLike:
    """A mutex for ``name``: plain and free normally, tracked in debug."""
    if _enabled:
        return TrackedLock(name)
    return threading.Lock()
