"""One-call knowledge-graph construction.

``build_iyp(world)`` runs every registered crawler against the world's
simulated datasets (Knowledge Extraction), lets the shared IYP facade
fuse identical entities (Fusion), and finishes with the refinement pass
— the three columns of the paper's Figure 2.

Each crawler runs under its own telemetry scope: a tracer span, a
thread-local :class:`~repro.obs.record.AccessCollector` counting the
store mutations it caused (nodes/relationships created vs merged), a
structured JSON log line on ``repro.pipeline``, and — when a metrics
registry is passed — Prometheus counters.  The per-crawler numbers land
in :class:`BuildReport.crawler_runs`.

Incremental builds (``build_iyp(..., incremental=True)``) reuse the
previous build's store and :class:`BuildReport` instead of starting
over: every fetched payload is checksummed (the
:class:`~repro.datasets.base.RecordingFetcher` is always in the path,
so any build can seed the next incremental one), crawlers whose inputs
did not change are skipped entirely, changed crawlers re-run against
the live store with change tracking on, links they no longer assert are
retired, and the refinement pass re-runs only when the churn touched
structure it actually reads.  The net effect of the whole build lands
in ``report.delta`` as an ordered
:class:`~repro.delta.records.DeltaBatch` ready for
:meth:`~repro.graphdb.store.GraphStore.apply_delta` on a replica.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core import IYP
from repro.datasets.base import FetchError, RecordingFetcher
from repro.datasets.registry import crawlers_for, make_fetcher
from repro.graphdb.errors import GraphError
from repro.graphdb.store import GraphStore
from repro.lint import GraphValidationReport, GraphValidator
from repro.obs import NULL_TRACER, AccessCollector, Tracer, collecting
from repro.pipeline.postprocess import run_postprocessing
from repro.server.metrics import Metrics
from repro.simnet.world import World

log = logging.getLogger("repro.pipeline")

#: Node labels whose structure the refinement pass reads.  Structural
#: churn confined to other labels (AS renames, peering changes, ...)
#: cannot change any refinement output, so incremental builds skip the
#: pass entirely in that case.
_POSTPROCESS_LABELS = frozenset(
    {"IP", "Prefix", "URL", "HostName", "DomainName", "Country"}
)

#: Properties the refinement pass reads (on the labels above).
_POSTPROCESS_PROPS = frozenset(
    {"ip", "prefix", "url", "name", "country_code", "af", "alpha3"}
)

#: Kinds of changelog events that mark a relationship as still asserted
#: by the crawler that just re-ran (anything else it contributed before
#: is stale and gets retired).
_TOUCH_KINDS = frozenset({"rel_created", "rel_merged", "rel_updated"})


@dataclass
class CrawlerRun:
    """Telemetry for one crawler execution."""

    name: str
    seconds: float = 0.0
    nodes_created: int = 0
    nodes_merged: int = 0
    relationships_created: int = 0
    relationships_merged: int = 0
    error: str | None = None
    #: One checksum over every payload the crawler fetched; the next
    #: incremental build compares it to decide whether to re-run.
    payload_checksum: str = ""
    #: The URLs behind that checksum, in fetch order.
    urls: list[str] = field(default_factory=list)
    #: True when an incremental build proved the inputs unchanged and
    #: did not run the crawler at all.
    skipped: bool = False
    #: Stale links retired after an incremental re-run (links the
    #: previous build attributed to this crawler that the re-run no
    #: longer asserted).
    relationships_deleted: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "nodes_created": self.nodes_created,
            "nodes_merged": self.nodes_merged,
            "relationships_created": self.relationships_created,
            "relationships_merged": self.relationships_merged,
            "relationships_deleted": self.relationships_deleted,
            "error": self.error,
            "payload_checksum": self.payload_checksum,
            "urls": list(self.urls),
            "skipped": self.skipped,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CrawlerRun":
        """Rebuild a run record from manifest build metadata."""
        return cls(
            name=data["name"],
            seconds=data.get("seconds", 0.0),
            nodes_created=data.get("nodes_created", 0),
            nodes_merged=data.get("nodes_merged", 0),
            relationships_created=data.get("relationships_created", 0),
            relationships_merged=data.get("relationships_merged", 0),
            relationships_deleted=data.get("relationships_deleted", 0),
            error=data.get("error"),
            payload_checksum=data.get("payload_checksum", ""),
            urls=list(data.get("urls", ())),
            skipped=data.get("skipped", False),
        )


@dataclass
class BuildReport:
    """What happened during a build: timings, sizes, failures."""

    crawler_seconds: dict[str, float] = field(default_factory=dict)
    crawler_errors: dict[str, str] = field(default_factory=dict)
    crawler_runs: list[CrawlerRun] = field(default_factory=list)
    refinement_counts: dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    nodes: int = 0
    relationships: int = 0
    trace_id: str | None = None
    schema_report: GraphValidationReport | None = None
    archived_as: str | None = None
    #: Build-time analytics precompute
    #: (:class:`repro.analytics.AnalyticsReport`): graph statistics plus
    #: the cached rows of every precompute procedure.  None when the
    #: build ran with ``analytics=False``.
    analytics: Any | None = None
    #: True when this report came from an incremental build.
    incremental: bool = False
    #: True when an incremental build proved the refinement pass could
    #: not observe any of the churn and skipped it.
    postprocess_skipped: bool = False
    #: The build's net effect as an ordered
    #: :class:`~repro.delta.records.DeltaBatch` (incremental builds
    #: only): apply it to a copy of the previous store and you get this
    #: build's result.
    delta: Any | None = None

    @property
    def ok(self) -> bool:
        if self.crawler_errors:
            return False
        return self.schema_report is None or self.schema_report.ok

    def build_metadata(self) -> dict[str, Any]:
        """The build facts an archive manifest entry records.

        The per-crawler runs ride along so data-quality telemetry
        (:mod:`repro.obs.quality`) can derive coverage and fusion
        agreement per source from the manifest alone, without re-running
        the build — and so the *next* build can go incremental straight
        from the manifest (:meth:`from_build_metadata`): the per-crawler
        payload checksums are all it needs to decide what to skip.
        """
        return {
            "total_seconds": round(self.total_seconds, 3),
            "nodes": self.nodes,
            "relationships": self.relationships,
            "crawlers": len(self.crawler_runs),
            "crawler_errors": dict(self.crawler_errors),
            "crawler_runs": [run.to_dict() for run in self.crawler_runs],
            "schema_ok": self.schema_report is None or self.schema_report.ok,
            "trace_id": self.trace_id,
            "incremental": self.incremental,
            "refinement_counts": dict(self.refinement_counts),
        }

    @classmethod
    def from_build_metadata(cls, data: dict[str, Any]) -> "BuildReport":
        """A report good enough to seed an incremental build, rebuilt
        from an archive manifest entry's ``build`` metadata."""
        report = cls(
            total_seconds=data.get("total_seconds", 0.0),
            nodes=data.get("nodes", 0),
            relationships=data.get("relationships", 0),
            crawler_errors=dict(data.get("crawler_errors", {})),
            refinement_counts=dict(data.get("refinement_counts", {})),
            incremental=data.get("incremental", False),
        )
        report.crawler_runs = [
            CrawlerRun.from_dict(entry) for entry in data.get("crawler_runs", ())
        ]
        report.crawler_seconds = {
            run.name: run.seconds for run in report.crawler_runs
        }
        return report


def _record_crawler_metrics(metrics: Metrics, run: CrawlerRun) -> None:
    status = "error" if run.error else "ok"
    metrics.inc("crawler_runs_total", labels={"crawler": run.name, "status": status})
    metrics.inc("crawler_seconds_total", run.seconds)
    metrics.inc("crawler_nodes_created_total", run.nodes_created)
    metrics.inc("crawler_nodes_merged_total", run.nodes_merged)
    metrics.inc("crawler_relationships_created_total", run.relationships_created)
    metrics.inc("crawler_relationships_merged_total", run.relationships_merged)


def _execute_crawler(
    crawler: Any,
    fetcher: RecordingFetcher,
    report: BuildReport,
    metrics: Metrics | None,
    tracer: Tracer,
    raise_on_error: bool,
) -> CrawlerRun:
    """Run one crawler with full telemetry; always appends its run."""
    run = CrawlerRun(name=crawler.name)
    collector = AccessCollector()
    crawl_start = time.perf_counter()
    fetcher.begin()
    try:
        with tracer.span("crawler", crawler=crawler.name):
            with collecting(collector):
                crawler.run()
    except Exception as exc:  # noqa: BLE001 - report which dataset failed
        run.error = f"{type(exc).__name__}: {exc}"
        if raise_on_error:
            raise
        report.crawler_errors[crawler.name] = run.error
    finally:
        run.urls = fetcher.end()
        run.payload_checksum = fetcher.payload_checksum(run.urls)
        run.seconds = time.perf_counter() - crawl_start
        hits = collector.hits
        run.nodes_created = hits.get("node_created", 0)
        run.nodes_merged = hits.get("node_merged", 0)
        run.relationships_created = hits.get("rel_created", 0)
        run.relationships_merged = hits.get("rel_merged", 0)
        report.crawler_runs.append(run)
        report.crawler_seconds[crawler.name] = run.seconds
        if metrics is not None:
            _record_crawler_metrics(metrics, run)
        log.info("crawler %s", json.dumps(run.to_dict(), sort_keys=True))
    return run


def _changed_crawlers(
    crawlers: list[Any],
    previous: BuildReport,
    fetcher: RecordingFetcher,
) -> dict[str, bool]:
    """Which crawlers must re-run, by re-checksumming their inputs.

    Unknown crawlers, previously failed ones, and any whose payload
    cannot be re-fetched are conservatively treated as changed.
    """
    prev_runs = {run.name: run for run in previous.crawler_runs}
    changed: dict[str, bool] = {}
    for crawler in crawlers:
        prev = prev_runs.get(crawler.name)
        if prev is None or prev.error or not prev.payload_checksum:
            changed[crawler.name] = True
            continue
        try:
            current = fetcher.payload_checksum(list(prev.urls))
        except FetchError:
            changed[crawler.name] = True
            continue
        changed[crawler.name] = current != prev.payload_checksum
    return changed


def _rels_by_source(store: GraphStore, sources: set[str]) -> dict[str, set[int]]:
    """One scan: relationship ids per watched ``reference_name``."""
    before: dict[str, set[int]] = {name: set() for name in sources}
    for rel in store.iter_relationships():
        name = rel.properties.get("reference_name")
        if isinstance(name, str) and name in before:
            before[name].add(rel.id)
    return before


def _retire_stale(
    store: GraphStore, stale: set[int], dangling: set[int]
) -> int:
    """Delete relationships a re-run no longer asserted; collect their
    endpoints so orphaned value nodes can be dropped afterwards."""
    for rel_id in sorted(stale):
        rel = store.get_relationship(rel_id)
        dangling.add(rel.start_id)
        dangling.add(rel.end_id)
        store.delete_relationship(rel_id)
    return len(stale)


def _drop_orphans(store: GraphStore, candidates: set[int]) -> int:
    """Delete nodes left with no relationships at all.

    Every IYP node exists because some link references it (crawlers and
    refinement only create nodes to connect them), so a node orphaned by
    stale-link retirement would not exist in a from-scratch rebuild
    either.
    """
    count = 0
    for node_id in sorted(candidates):
        if store.has_node(node_id) and store.degree(node_id) == 0:
            store.delete_node(node_id)
            count += 1
    return count


def _postprocess_affected(store: GraphStore, events: list[Any]) -> bool:
    """Could the refinement pass observe any of this build's churn?

    True when a structural event (or a property change it reads) touches
    one of :data:`_POSTPROCESS_LABELS`.  Endpoint labels of deleted
    relationships are resolved through the changelog's before-images
    when the node itself is gone.
    """
    deleted_labels: dict[int, frozenset[str]] = {}
    deleted_endpoints: dict[int, tuple[int, int]] = {}
    for event in events:
        if event.kind == "node_deleted":
            deleted_labels[event.entity_id] = event.labels or frozenset()
        elif event.kind == "rel_deleted":
            assert event.start_id is not None and event.end_id is not None
            deleted_endpoints[event.entity_id] = (event.start_id, event.end_id)

    def labels_of(node_id: int) -> frozenset[str]:
        if store.has_node(node_id):
            return frozenset(store.get_node(node_id).labels)
        return deleted_labels.get(node_id, frozenset())

    for event in events:
        kind = event.kind
        if kind in ("node_created", "node_deleted"):
            if labels_of(event.entity_id) & _POSTPROCESS_LABELS:
                return True
        elif kind == "label_added":
            if event.label in _POSTPROCESS_LABELS:
                return True
        elif kind == "node_updated":
            if (
                event.changes
                and set(event.changes) & _POSTPROCESS_PROPS
                and labels_of(event.entity_id) & _POSTPROCESS_LABELS
            ):
                return True
        elif kind in ("rel_created", "rel_deleted"):
            endpoints = deleted_endpoints.get(event.entity_id)
            if endpoints is None:
                try:
                    rel = store.get_relationship(event.entity_id)
                except GraphError:
                    continue
                endpoints = (rel.start_id, rel.end_id)
            if (
                labels_of(endpoints[0]) & _POSTPROCESS_LABELS
                or labels_of(endpoints[1]) & _POSTPROCESS_LABELS
            ):
                return True
    return False


def build_iyp(
    world: World,
    dataset_names: list[str] | None = None,
    postprocess: bool = True,
    iyp: IYP | None = None,
    raise_on_error: bool = True,
    metrics: Metrics | None = None,
    tracer: Tracer | None = None,
    validate: bool = True,
    analytics: bool = True,
    archive: Any | None = None,
    archive_label: str | None = None,
    incremental: bool = False,
    previous: BuildReport | None = None,
    archive_base: str = "latest",
) -> tuple[IYP, BuildReport]:
    """Build the knowledge graph from a synthetic world.

    ``dataset_names`` restricts the import to a subset (useful for
    focused tests and the dataset-comparison study); by default every
    dataset in the registry is imported.  Pass ``metrics`` to accumulate
    per-crawler Prometheus counters into an existing registry (e.g. the
    one a co-located query service will expose), and ``tracer`` to hang
    the build's span tree off a live tracer.

    With ``validate`` (the default) the finished graph is swept by the
    ontology schema validator; the per-crawler violation report lands in
    ``report.schema_report`` and any violations flip ``report.ok``.

    With ``analytics`` (the default) the finished graph is measured
    once — graph statistics for the cost-based planner plus every
    precompute ``algo.*`` procedure — and the resulting
    :class:`repro.analytics.AnalyticsReport` lands in
    ``report.analytics`` (and, when archiving, in the manifest entry,
    so a serving process can answer those ``CALL`` queries from cache).
    Analytics never affects ``report.ok``.

    Pass ``archive`` (a :class:`repro.archive.SnapshotArchive`) to
    archive the finished graph in one step: the snapshot lands in the
    archive under ``archive_label`` with this report's build metadata on
    its manifest entry, and ``report.archived_as`` records the label.

    With ``incremental`` the build is O(changes) instead of O(world):
    pass the previous build's ``iyp`` (mutated in place) and its
    ``previous`` report (or one rebuilt from the archive manifest via
    :meth:`BuildReport.from_build_metadata`).  Crawlers whose payload
    checksums match the previous build are skipped; changed ones re-run
    under change tracking, after which links they stopped asserting are
    retired (and value nodes orphaned by that, dropped).  The refinement
    pass re-runs only when the churn touched structure it reads.  The
    whole build's net effect lands in ``report.delta``; when archiving,
    the entry is a binary delta against ``archive_base`` instead of a
    full snapshot.
    """
    started = time.perf_counter()
    if incremental:
        if previous is None:
            raise ValueError("incremental build requires the previous BuildReport")
        if iyp is None:
            raise ValueError(
                "incremental build mutates the previous build's IYP in place"
            )
    iyp = iyp or IYP()
    fetcher = RecordingFetcher(make_fetcher(world))
    tracer = tracer or NULL_TRACER
    report = BuildReport(incremental=incremental)
    with tracer.trace("build") as build_span:
        if build_span is not None:
            report.trace_id = build_span.trace_id
        crawlers = list(crawlers_for(iyp, fetcher, dataset_names))
        if incremental:
            assert previous is not None
            _build_incremental(
                iyp, crawlers, previous, fetcher, report,
                postprocess=postprocess, metrics=metrics, tracer=tracer,
                raise_on_error=raise_on_error,
                all_sources=dataset_names is None,
            )
        else:
            for crawler in crawlers:
                _execute_crawler(
                    crawler, fetcher, report, metrics, tracer, raise_on_error
                )
            if postprocess:
                with tracer.span("postprocess"):
                    report.refinement_counts = run_postprocessing(iyp)
        if validate:
            with tracer.span("validate_schema"):
                report.schema_report = GraphValidator().validate(iyp.store)
            if metrics is not None:
                for code, count in report.schema_report.by_code().items():
                    metrics.inc(
                        "schema_violations_total", count, labels={"code": code}
                    )
            if not report.schema_report.ok:
                log.warning(
                    "schema validation: %d violation(s) %s",
                    len(report.schema_report.violations),
                    json.dumps(report.schema_report.by_code(), sort_keys=True),
                )
        if analytics:
            # Imported here so a build without analytics never pays for
            # the package import.
            from repro.analytics import compute_analytics_report

            with tracer.span("analytics"):
                report.analytics = compute_analytics_report(iyp.store)
            log.info(
                "analytics precompute: %d procedure(s) in %.3fs",
                len(report.analytics.procedures),
                report.analytics.seconds,
            )
    report.total_seconds = time.perf_counter() - started
    report.nodes = iyp.store.node_count
    report.relationships = iyp.store.relationship_count
    if archive is not None:
        label = archive_label or f"build-{len(archive.entries()) + 1:04d}"
        analytics_payload = (
            report.analytics.to_dict() if report.analytics is not None else None
        )
        with tracer.span("archive", label=label):
            if incremental and report.delta is not None:
                entry = archive.add_delta(
                    iyp.store,
                    report.delta,
                    label,
                    base=archive_base,
                    build=report.build_metadata(),
                    analytics=analytics_payload,
                )
            else:
                entry = archive.add(
                    iyp.store,
                    label,
                    build=report.build_metadata(),
                    analytics=analytics_payload,
                )
        report.archived_as = entry.label
        log.info(
            "archived %s %s (%s, checksum %s)",
            entry.kind, entry.label, entry.filename, entry.checksum[:12],
        )
    return iyp, report


def _build_incremental(
    iyp: IYP,
    crawlers: list[Any],
    previous: BuildReport,
    fetcher: RecordingFetcher,
    report: BuildReport,
    *,
    postprocess: bool,
    metrics: Metrics | None,
    tracer: Tracer,
    raise_on_error: bool,
    all_sources: bool,
) -> None:
    """The incremental crawl + refine phases, mutating ``iyp`` in place.

    Leaves the whole build's net effect in ``report.delta``.
    """
    from repro.delta import delta_from_changelog

    store = iyp.store
    prev_runs = {run.name: run for run in previous.crawler_runs}
    with tracer.span("checksum"):
        changed = _changed_crawlers(crawlers, previous, fetcher)
    # Sources present last build but gone from the registry now: all
    # their links are stale.  Only meaningful when building the full
    # registry — a dataset_names subset says nothing about the rest.
    current_names = {crawler.name for crawler in crawlers}
    removed = (
        {name for name in prev_runs if name not in current_names}
        if all_sources
        else set()
    )
    watch = {name for name, dirty in changed.items() if dirty} | removed
    with tracer.span("prescan", sources=len(watch)):
        before = _rels_by_source(store, watch) if watch else {}
    dangling: set[int] = set()
    with store.track_changes() as events:
        for crawler in crawlers:
            if not changed[crawler.name]:
                prev = prev_runs[crawler.name]
                run = CrawlerRun(
                    name=crawler.name,
                    skipped=True,
                    payload_checksum=prev.payload_checksum,
                    urls=list(prev.urls),
                )
                report.crawler_runs.append(run)
                report.crawler_seconds[crawler.name] = 0.0
                if metrics is not None:
                    metrics.inc(
                        "crawler_skips_total", labels={"crawler": crawler.name}
                    )
                continue
            mark = len(events)
            run = _execute_crawler(
                crawler, fetcher, report, metrics, tracer, raise_on_error
            )
            if run.error is None:
                # Everything the re-run created, merged, or updated is
                # still asserted; the rest of its previous contribution
                # is stale.  A failed run retires nothing — its old
                # links outlive the failure, exactly like a failed full
                # rebuild would keep serving the old snapshot.
                touched = {
                    event.entity_id
                    for event in events[mark:]
                    if event.kind in _TOUCH_KINDS
                }
                stale = before.get(crawler.name, set()) - touched
                run.relationships_deleted = _retire_stale(store, stale, dangling)
        for name in sorted(removed):
            _retire_stale(store, before.get(name, set()), dangling)
        orphans_dropped = _drop_orphans(store, dangling)
        if postprocess:
            if _postprocess_affected(store, events):
                refinement_before = _rels_by_source(store, {"iyp.refinement"})
                mark = len(events)
                with tracer.span("postprocess"):
                    report.refinement_counts = run_postprocessing(iyp)
                touched = {
                    event.entity_id
                    for event in events[mark:]
                    if event.kind in _TOUCH_KINDS
                }
                stale = refinement_before["iyp.refinement"] - touched
                refinement_dangling: set[int] = set()
                _retire_stale(store, stale, refinement_dangling)
                _drop_orphans(store, refinement_dangling)
            else:
                report.postprocess_skipped = True
                report.refinement_counts = dict(previous.refinement_counts)
    with tracer.span("extract_delta"):
        report.delta = delta_from_changelog(store, events)
    skipped = sum(1 for run in report.crawler_runs if run.skipped)
    log.info(
        "incremental build: %d/%d crawler(s) skipped, %d source(s) removed, "
        "%d orphan node(s) dropped, postprocess %s, delta %s",
        skipped, len(crawlers), len(removed), orphans_dropped,
        "skipped" if report.postprocess_skipped else "ran",
        json.dumps(report.delta.summary(), sort_keys=True),
    )
