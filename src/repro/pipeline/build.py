"""One-call knowledge-graph construction.

``build_iyp(world)`` runs every registered crawler against the world's
simulated datasets (Knowledge Extraction), lets the shared IYP facade
fuse identical entities (Fusion), and finishes with the refinement pass
— the three columns of the paper's Figure 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import IYP
from repro.datasets.registry import crawlers_for, make_fetcher
from repro.pipeline.postprocess import run_postprocessing
from repro.simnet.world import World


@dataclass
class BuildReport:
    """What happened during a build: timings, sizes, failures."""

    crawler_seconds: dict[str, float] = field(default_factory=dict)
    crawler_errors: dict[str, str] = field(default_factory=dict)
    refinement_counts: dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    nodes: int = 0
    relationships: int = 0

    @property
    def ok(self) -> bool:
        return not self.crawler_errors


def build_iyp(
    world: World,
    dataset_names: list[str] | None = None,
    postprocess: bool = True,
    iyp: IYP | None = None,
    raise_on_error: bool = True,
) -> tuple[IYP, BuildReport]:
    """Build the knowledge graph from a synthetic world.

    ``dataset_names`` restricts the import to a subset (useful for
    focused tests and the dataset-comparison study); by default every
    dataset in the registry is imported.
    """
    started = time.perf_counter()
    iyp = iyp or IYP()
    fetcher = make_fetcher(world)
    report = BuildReport()
    for crawler in crawlers_for(iyp, fetcher, dataset_names):
        crawl_start = time.perf_counter()
        try:
            crawler.run()
        except Exception as exc:  # noqa: BLE001 - report which dataset failed
            if raise_on_error:
                raise
            report.crawler_errors[crawler.name] = f"{type(exc).__name__}: {exc}"
        report.crawler_seconds[crawler.name] = time.perf_counter() - crawl_start
    if postprocess:
        report.refinement_counts = run_postprocessing(iyp)
    report.total_seconds = time.perf_counter() - started
    report.nodes = iyp.store.node_count
    report.relationships = iyp.store.relationship_count
    return iyp, report
