"""One-call knowledge-graph construction.

``build_iyp(world)`` runs every registered crawler against the world's
simulated datasets (Knowledge Extraction), lets the shared IYP facade
fuse identical entities (Fusion), and finishes with the refinement pass
— the three columns of the paper's Figure 2.

Each crawler runs under its own telemetry scope: a tracer span, a
thread-local :class:`~repro.obs.record.AccessCollector` counting the
store mutations it caused (nodes/relationships created vs merged), a
structured JSON log line on ``repro.pipeline``, and — when a metrics
registry is passed — Prometheus counters.  The per-crawler numbers land
in :class:`BuildReport.crawler_runs`.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core import IYP
from repro.datasets.registry import crawlers_for, make_fetcher
from repro.lint import GraphValidationReport, GraphValidator
from repro.obs import NULL_TRACER, AccessCollector, Tracer, collecting
from repro.pipeline.postprocess import run_postprocessing
from repro.server.metrics import Metrics
from repro.simnet.world import World

log = logging.getLogger("repro.pipeline")


@dataclass
class CrawlerRun:
    """Telemetry for one crawler execution."""

    name: str
    seconds: float = 0.0
    nodes_created: int = 0
    nodes_merged: int = 0
    relationships_created: int = 0
    relationships_merged: int = 0
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "nodes_created": self.nodes_created,
            "nodes_merged": self.nodes_merged,
            "relationships_created": self.relationships_created,
            "relationships_merged": self.relationships_merged,
            "error": self.error,
        }


@dataclass
class BuildReport:
    """What happened during a build: timings, sizes, failures."""

    crawler_seconds: dict[str, float] = field(default_factory=dict)
    crawler_errors: dict[str, str] = field(default_factory=dict)
    crawler_runs: list[CrawlerRun] = field(default_factory=list)
    refinement_counts: dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    nodes: int = 0
    relationships: int = 0
    trace_id: str | None = None
    schema_report: GraphValidationReport | None = None
    archived_as: str | None = None
    #: Build-time analytics precompute
    #: (:class:`repro.analytics.AnalyticsReport`): graph statistics plus
    #: the cached rows of every precompute procedure.  None when the
    #: build ran with ``analytics=False``.
    analytics: Any | None = None

    @property
    def ok(self) -> bool:
        if self.crawler_errors:
            return False
        return self.schema_report is None or self.schema_report.ok

    def build_metadata(self) -> dict[str, Any]:
        """The build facts an archive manifest entry records.

        The per-crawler runs ride along so data-quality telemetry
        (:mod:`repro.obs.quality`) can derive coverage and fusion
        agreement per source from the manifest alone, without re-running
        the build.
        """
        return {
            "total_seconds": round(self.total_seconds, 3),
            "nodes": self.nodes,
            "relationships": self.relationships,
            "crawlers": len(self.crawler_runs),
            "crawler_errors": dict(self.crawler_errors),
            "crawler_runs": [run.to_dict() for run in self.crawler_runs],
            "schema_ok": self.schema_report is None or self.schema_report.ok,
            "trace_id": self.trace_id,
        }


def _record_crawler_metrics(metrics: Metrics, run: CrawlerRun) -> None:
    status = "error" if run.error else "ok"
    metrics.inc("crawler_runs_total", labels={"crawler": run.name, "status": status})
    metrics.inc("crawler_seconds_total", run.seconds)
    metrics.inc("crawler_nodes_created_total", run.nodes_created)
    metrics.inc("crawler_nodes_merged_total", run.nodes_merged)
    metrics.inc("crawler_relationships_created_total", run.relationships_created)
    metrics.inc("crawler_relationships_merged_total", run.relationships_merged)


def build_iyp(
    world: World,
    dataset_names: list[str] | None = None,
    postprocess: bool = True,
    iyp: IYP | None = None,
    raise_on_error: bool = True,
    metrics: Metrics | None = None,
    tracer: Tracer | None = None,
    validate: bool = True,
    analytics: bool = True,
    archive: Any | None = None,
    archive_label: str | None = None,
) -> tuple[IYP, BuildReport]:
    """Build the knowledge graph from a synthetic world.

    ``dataset_names`` restricts the import to a subset (useful for
    focused tests and the dataset-comparison study); by default every
    dataset in the registry is imported.  Pass ``metrics`` to accumulate
    per-crawler Prometheus counters into an existing registry (e.g. the
    one a co-located query service will expose), and ``tracer`` to hang
    the build's span tree off a live tracer.

    With ``validate`` (the default) the finished graph is swept by the
    ontology schema validator; the per-crawler violation report lands in
    ``report.schema_report`` and any violations flip ``report.ok``.

    With ``analytics`` (the default) the finished graph is measured
    once — graph statistics for the cost-based planner plus every
    precompute ``algo.*`` procedure — and the resulting
    :class:`repro.analytics.AnalyticsReport` lands in
    ``report.analytics`` (and, when archiving, in the manifest entry,
    so a serving process can answer those ``CALL`` queries from cache).
    Analytics never affects ``report.ok``.

    Pass ``archive`` (a :class:`repro.archive.SnapshotArchive`) to
    archive the finished graph in one step: the snapshot lands in the
    archive under ``archive_label`` with this report's build metadata on
    its manifest entry, and ``report.archived_as`` records the label.
    """
    started = time.perf_counter()
    iyp = iyp or IYP()
    fetcher = make_fetcher(world)
    tracer = tracer or NULL_TRACER
    report = BuildReport()
    with tracer.trace("build") as build_span:
        if build_span is not None:
            report.trace_id = build_span.trace_id
        for crawler in crawlers_for(iyp, fetcher, dataset_names):
            run = CrawlerRun(name=crawler.name)
            collector = AccessCollector()
            crawl_start = time.perf_counter()
            try:
                with tracer.span("crawler", crawler=crawler.name):
                    with collecting(collector):
                        crawler.run()
            except Exception as exc:  # noqa: BLE001 - report which dataset failed
                run.error = f"{type(exc).__name__}: {exc}"
                if raise_on_error:
                    raise
                report.crawler_errors[crawler.name] = run.error
            finally:
                run.seconds = time.perf_counter() - crawl_start
                hits = collector.hits
                run.nodes_created = hits.get("node_created", 0)
                run.nodes_merged = hits.get("node_merged", 0)
                run.relationships_created = hits.get("rel_created", 0)
                run.relationships_merged = hits.get("rel_merged", 0)
                report.crawler_runs.append(run)
                report.crawler_seconds[crawler.name] = run.seconds
                if metrics is not None:
                    _record_crawler_metrics(metrics, run)
                log.info("crawler %s", json.dumps(run.to_dict(), sort_keys=True))
        if postprocess:
            with tracer.span("postprocess"):
                report.refinement_counts = run_postprocessing(iyp)
        if validate:
            with tracer.span("validate_schema"):
                report.schema_report = GraphValidator().validate(iyp.store)
            if metrics is not None:
                for code, count in report.schema_report.by_code().items():
                    metrics.inc(
                        "schema_violations_total", count, labels={"code": code}
                    )
            if not report.schema_report.ok:
                log.warning(
                    "schema validation: %d violation(s) %s",
                    len(report.schema_report.violations),
                    json.dumps(report.schema_report.by_code(), sort_keys=True),
                )
        if analytics:
            # Imported here so a build without analytics never pays for
            # the package import.
            from repro.analytics import compute_analytics_report

            with tracer.span("analytics"):
                report.analytics = compute_analytics_report(iyp.store)
            log.info(
                "analytics precompute: %d procedure(s) in %.3fs",
                len(report.analytics.procedures),
                report.analytics.seconds,
            )
    report.total_seconds = time.perf_counter() - started
    report.nodes = iyp.store.node_count
    report.relationships = iyp.store.relationship_count
    if archive is not None:
        label = archive_label or f"build-{len(archive.entries()) + 1:04d}"
        with tracer.span("archive", label=label):
            entry = archive.add(
                iyp.store,
                label,
                build=report.build_metadata(),
                analytics=(
                    report.analytics.to_dict()
                    if report.analytics is not None
                    else None
                ),
            )
        report.archived_as = entry.label
        log.info(
            "archived snapshot %s (%s, checksum %s)",
            entry.label, entry.filename, entry.checksum[:12],
        )
    return iyp, report
