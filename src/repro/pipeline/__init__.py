"""Graph construction pipeline: import all datasets, then refine.

:func:`build_iyp` is the one-call entry point used by the examples and
benchmarks: synthetic world in, fully fused and refined knowledge graph
out.
"""

from repro.pipeline.build import BuildReport, build_iyp
from repro.pipeline.postprocess import REFINEMENT_REFERENCE, run_postprocessing

__all__ = ["BuildReport", "REFINEMENT_REFERENCE", "build_iyp", "run_postprocessing"]
