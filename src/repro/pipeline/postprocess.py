"""The refinement pass (paper Section 2.3, "Fusion & Refinement").

After all datasets are imported, common knowledge that is implicit in
the data is made explicit:

1. every IP and Prefix node gets an ``af`` (address family) property;
2. every IP is linked (PART_OF) to its longest matching prefix;
3. every prefix is linked (PART_OF) to its covering prefix;
4. URL nodes are linked (PART_OF) to their HostName;
5. HostNames are linked (PART_OF) to their registrable DomainName, and
   DomainNames to their parent zones (PARENT), up to the TLD;
6. every Country node gets its three-letter code and common name.

All links added here carry the ``iyp.refinement`` provenance so they
can be told apart from imported data.
"""

from __future__ import annotations

from repro.core import IYP, Reference
from repro.nettypes import (
    InvalidAddressError,
    InvalidPrefixError,
    InvalidURLError,
    PrefixTrie,
    address_family,
    hostname_of_url,
    prefix_af,
    registered_domain,
)
from repro.nettypes.countries import UnknownCountryError, lookup
from repro.nettypes.dns import normalize_name, parent_zones, public_suffix

REFINEMENT_REFERENCE = Reference(
    organization="IYP",
    dataset_name="iyp.refinement",
    url_info="https://github.com/InternetHealthReport/internet-yellow-pages",
)


def run_postprocessing(iyp: IYP) -> dict[str, int]:
    """Run every refinement step; returns per-step link/property counts."""
    counts = {
        "af_properties": add_address_families(iyp),
        "ip_part_of_prefix": link_ips_to_prefixes(iyp),
        "prefix_part_of_prefix": link_covering_prefixes(iyp),
        "url_part_of_hostname": link_urls_to_hostnames(iyp),
        "hostname_hierarchy": link_name_hierarchy(iyp),
        "country_codes": complete_country_codes(iyp),
    }
    return counts


def add_address_families(iyp: IYP) -> int:
    """Set the ``af`` property on every IP and Prefix node."""
    count = 0
    for node in iyp.store.nodes_with_label("IP"):
        if "af" in node.properties:
            continue
        try:
            iyp.store.update_node(node.id, {"af": address_family(node.properties["ip"])})
            count += 1
        except InvalidAddressError:
            continue
    for node in iyp.store.nodes_with_label("Prefix"):
        if "af" in node.properties:
            continue
        try:
            iyp.store.update_node(node.id, {"af": prefix_af(node.properties["prefix"])})
            count += 1
        except InvalidPrefixError:
            continue
    return count


def _prefix_trie(iyp: IYP) -> PrefixTrie:
    trie = PrefixTrie()
    for node in iyp.store.nodes_with_label("Prefix"):
        try:
            trie.insert(node.properties["prefix"], node)
        except InvalidPrefixError:
            continue
    return trie


def link_ips_to_prefixes(iyp: IYP) -> int:
    """Link every IP node to the Prefix node of its longest match."""
    trie = _prefix_trie(iyp)
    count = 0
    for node in iyp.store.nodes_with_label("IP"):
        try:
            match = trie.longest_match_ip(node.properties["ip"])
        except (InvalidAddressError, ValueError):
            continue
        if match is None:
            continue
        _prefix_text, prefix_node = match
        iyp.add_link(node, "PART_OF", prefix_node, None, REFINEMENT_REFERENCE)
        count += 1
    return count


def link_covering_prefixes(iyp: IYP) -> int:
    """Link every Prefix node to its closest covering Prefix node."""
    trie = _prefix_trie(iyp)
    count = 0
    for node in iyp.store.nodes_with_label("Prefix"):
        try:
            match = trie.covering_prefix(node.properties["prefix"])
        except InvalidPrefixError:
            continue
        if match is None:
            continue
        _prefix_text, covering_node = match
        if covering_node.id == node.id:
            continue
        iyp.add_link(node, "PART_OF", covering_node, None, REFINEMENT_REFERENCE)
        count += 1
    return count


def link_urls_to_hostnames(iyp: IYP) -> int:
    """Link every URL node to the HostName it embeds."""
    count = 0
    for node in iyp.store.nodes_with_label("URL"):
        try:
            hostname = hostname_of_url(node.properties["url"])
        except InvalidURLError:
            continue
        host_node = iyp.get_node("HostName", name=hostname)
        iyp.add_link(node, "PART_OF", host_node, None, REFINEMENT_REFERENCE)
        count += 1
    return count


def link_name_hierarchy(iyp: IYP) -> int:
    """HostName -> registrable DomainName (PART_OF) and zone cuts (PARENT).

    Crawlers already create most HostName PART_OF links; this pass fills
    gaps (e.g. hostnames created by the URL step) and builds the
    DomainName PARENT chain up to the TLD.
    """
    count = 0
    for node in iyp.store.nodes_with_label("HostName"):
        name = node.properties.get("name")
        if not name:
            continue
        registrable = registered_domain(name)
        if registrable is None:
            continue
        existing = [
            rel
            for rel in iyp.store.relationships_of(node.id, rel_type="PART_OF")
        ]
        domain_node = iyp.get_node("DomainName", name=registrable)
        if not any(
            rel.other_end(node.id) == domain_node.id for rel in existing
        ):
            iyp.add_link(node, "PART_OF", domain_node, None, REFINEMENT_REFERENCE)
            count += 1
    # Zone cuts: registrable domain -> public suffix zones.
    for node in list(iyp.store.nodes_with_label("DomainName")):
        name = node.properties.get("name")
        if not name or "." not in name:
            continue
        suffix = public_suffix(normalize_name(name))
        if name == suffix:
            continue
        chain = [zone for zone in parent_zones(name) if len(zone) >= len(suffix)]
        child = node
        for zone in chain:
            parent_node = iyp.get_node("DomainName", name=zone)
            existing = iyp.store.relationships_between(
                parent_node.id, child.id, "PARENT"
            )
            if not existing:
                iyp.add_link(parent_node, "PARENT", child, None, REFINEMENT_REFERENCE)
                count += 1
            child = parent_node
    return count


def complete_country_codes(iyp: IYP) -> int:
    """Give every Country node alpha-3 code and common name properties."""
    count = 0
    for node in iyp.store.nodes_with_label("Country"):
        code = node.properties.get("country_code", "")
        if "alpha3" in node.properties and "name" in node.properties:
            continue
        try:
            info = lookup(code)
        except UnknownCountryError:
            continue
        iyp.store.update_node(node.id, {"alpha3": info.alpha3, "name": info.name})
        count += 1
    return count
