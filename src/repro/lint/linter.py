"""Static analysis of Cypher queries against the IYP ontology.

The linter walks the parsed AST — queries are never executed — and
emits :class:`~repro.lint.diagnostics.Diagnostic` findings:

``LNT000``
    The query does not parse at all.
``LNT001`` / ``LNT002``
    A node label / relationship type that the ontology does not define
    (the paper's ``:Prefx`` typo class — the query would silently
    return zero rows).
``LNT003``
    A ``(src)-[rel]->(dst)`` combination the ontology's endpoint
    definitions rule out, e.g. ``(:Prefix)-[:ORIGINATE]->(:AS)``
    (backwards) — directed arrows are checked against the stored
    orientation, undirected patterns accept either.
``LNT004``
    A property name no crawler writes for that label or type.
``LNT005``
    Disconnected pattern components inside one MATCH — a cartesian
    product (components anchored to previously bound variables do not
    count as disconnected).
``LNT006`` / ``LNT007``
    A variable bound but never used (info) / used but never bound
    (error).  Names starting with ``_`` and queries ending in
    ``RETURN *`` / ``WITH *`` opt out of the unused check.
``LNT008``
    A pattern whose only property lookups have no index — the matcher
    will fall back to a full label scan.  Requires a store, so it only
    fires when linting against a snapshot (CLI ``--snapshot``, server).
``LNT009``
    A comparison whose literal type cannot match the catalogued
    property kind (e.g. ``a.asn = '2907'``), including string
    operators applied to numeric properties.
``LNT010``
    A ``CALL`` naming a procedure the registry does not define, with
    did-you-mean suggestions against the registered ``algo.*`` names.

Label knowledge flows across clauses: a variable bound as ``(x:AS)`` in
one MATCH keeps its label for endpoint and property checks in later
clauses, mirroring how the paper's Listing 3 reuses ``pfx``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analytics.registry import get_procedure, suggest
from repro.cypher import ast
from repro.cypher.errors import CypherSyntaxError
from repro.cypher.parser import parse
from repro.lint.diagnostics import Diagnostic, diagnostic
from repro.ontology import (
    ENTITIES,
    NODE_PROPERTIES,
    RELATIONSHIP_PROPERTIES,
    RELATIONSHIPS,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphdb.store import GraphStore

_COMPARISON_OPS = frozenset({"eq", "neq", "lt", "le", "gt", "ge"})
_STRING_OPS = frozenset({"starts_with", "ends_with", "contains", "regex"})
_NUMERIC_KINDS = frozenset({"int", "float"})


def lint_query(query: str, store: "GraphStore | None" = None) -> list[Diagnostic]:
    """Lint one query string; convenience wrapper around QueryLinter."""
    return QueryLinter(store).lint(query)


class QueryLinter:
    """Stateless facade: one instance may lint many queries."""

    def __init__(self, store: "GraphStore | None" = None) -> None:
        self._store = store

    def lint(self, query: str) -> list[Diagnostic]:
        try:
            tree = parse(query)
        except CypherSyntaxError as exc:
            span = None
            if exc.line is not None and exc.column is not None:
                span = ast.Span(exc.position or 0, exc.line, exc.column)
            return [diagnostic("LNT000", str(exc), span)]
        return self.lint_tree(tree)

    def lint_tree(self, tree: ast.Query) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        for part in (tree, *tree.union_parts):
            _PartLinter(self._store, findings).run(part.clauses)
        seen: set[tuple] = set()
        unique: list[Diagnostic] = []
        for item in findings:
            key = (item.code, item.message, item.span)
            if key not in seen:
                seen.add(key)
                unique.append(item)
        unique.sort(key=lambda d: (d.span.offset if d.span else -1, d.code))
        return unique


class _PartLinter:
    """Lints one UNION part; variable scope does not cross parts."""

    def __init__(
        self, store: "GraphStore | None", findings: list[Diagnostic]
    ) -> None:
        self._store = store
        self._out = findings
        self._scope: dict[str, ast.Span | None] = {}
        self._node_labels: dict[str, set[str]] = {}
        self._rel_types: dict[str, set[str]] = {}
        self._binds: list[tuple[str, ast.Span | None]] = []
        self._used: set[str] = set()
        self._has_star = False

    def _emit(self, code: str, message: str, span: ast.Span | None) -> None:
        self._out.append(diagnostic(code, message, span))

    # -- clause walk -----------------------------------------------------

    def run(self, clauses: tuple[ast.Clause, ...]) -> None:
        last = len(clauses) - 1
        for index, clause in enumerate(clauses):
            if isinstance(clause, ast.MatchClause):
                pre_scope = set(self._scope)
                self._check_cartesian(clause, pre_scope)
                for pattern in clause.patterns:
                    self._walk_pattern(pattern, register_binds=True)
                    self._check_index_anchors(pattern, pre_scope)
                if clause.where is not None:
                    self._expr(clause.where)
            elif isinstance(clause, ast.UnwindClause):
                self._expr(clause.expression)
                self._bind(clause.alias, None, register=True)
            elif isinstance(clause, (ast.WithClause, ast.ReturnClause)):
                self._projection(clause)
            elif isinstance(clause, ast.CreateClause):
                for pattern in clause.patterns:
                    self._walk_pattern(pattern, register_binds=False)
            elif isinstance(clause, ast.MergeClause):
                self._walk_pattern(clause.pattern, register_binds=False)
                for item in clause.on_create + clause.on_match:
                    self._set_item(item)
            elif isinstance(clause, ast.SetClause):
                for item in clause.items:
                    self._set_item(item)
            elif isinstance(clause, ast.RemoveClause):
                for item in clause.items:
                    self._expr(item.subject)
            elif isinstance(clause, ast.DeleteClause):
                for expression in clause.expressions:
                    self._expr(expression)
            elif isinstance(clause, ast.CallClause):
                self._check_call(clause, is_final=index == last)
        if not self._has_star:
            for name, span in self._binds:
                if name not in self._used and not name.startswith("_"):
                    self._emit(
                        "LNT006",
                        f"variable `{name}` is bound but never used",
                        span,
                    )

    def _projection(self, clause: ast.WithClause | ast.ReturnClause) -> None:
        if clause.star:
            self._has_star = True
        aliases: dict[str, set[str]] = {}
        for item in clause.items:
            self._expr(item.expression)
            if isinstance(item.expression, ast.Variable):
                labels = self._node_labels.get(item.expression.name)
                if labels:
                    aliases[item.alias] = set(labels)
        is_with = isinstance(clause, ast.WithClause)
        if is_with and not clause.star:
            # WITH narrows the scope to its projected aliases; ORDER BY
            # and WHERE below may reference both old and new names, so
            # widen only after checking the narrowing is sound.
            new_scope = {item.alias: None for item in clause.items}
        else:
            new_scope = dict(self._scope)
            for item in clause.items:
                new_scope[item.alias] = None
        merged = {**self._scope, **new_scope}
        old_scope = self._scope
        self._scope = merged
        for sort in clause.order_by:
            self._expr(sort.expression)
        if clause.skip is not None:
            self._expr(clause.skip)
        if clause.limit is not None:
            self._expr(clause.limit)
        if is_with and clause.where is not None:
            self._expr(clause.where)
        self._scope = new_scope if is_with else old_scope
        if is_with:
            kept = self._node_labels if clause.star else {}
            self._node_labels = {**kept, **aliases}
            if not clause.star:
                self._rel_types = {}

    def _check_call(self, clause: ast.CallClause, is_final: bool) -> None:
        for arg in clause.args:
            self._expr(arg)
        spec = get_procedure(clause.procedure)
        if spec is None:
            message = f"unknown procedure `{clause.procedure}` in CALL"
            hints = suggest(clause.procedure)
            if hints:
                message += (
                    "; did you mean "
                    + " or ".join(f"`{hint}`" for hint in hints)
                    + "?"
                )
            self._emit("LNT010", message, clause.name_span)
        if clause.yields:
            yields = clause.yields
        elif spec is not None:
            yields = tuple(
                ast.YieldItem(column, column) for column in spec.columns
            )
        else:
            yields = ()
        for item in yields:
            # A final CALL's yields are the query's result columns, so
            # they are "used" by definition; only explicit YIELDs in
            # the middle of a pipeline join the unused-variable check.
            register = bool(clause.yields) and not is_final
            self._bind(item.alias, item.span, register=register)

    def _set_item(self, item: ast.SetItem) -> None:
        self._expr(item.subject)
        if item.value is not None:
            self._expr(item.value)
        for label in item.labels:
            if label not in ENTITIES:
                self._emit(
                    "LNT001",
                    f"unknown node label :{label} (not in the ontology)",
                    None,
                )

    # -- patterns --------------------------------------------------------

    def _bind(
        self, name: str, span: ast.Span | None, register: bool
    ) -> None:
        if name in self._scope:
            self._used.add(name)
            return
        self._scope[name] = span
        if register:
            self._binds.append((name, span))

    def _walk_pattern(
        self, pattern: ast.PathPattern, register_binds: bool, local_only: bool = False
    ) -> None:
        if pattern.path_variable and not local_only:
            self._bind(pattern.path_variable, None, register_binds)
        for index, node in enumerate(pattern.nodes):
            self._walk_node(node, register_binds, local_only)
            if index > 0:
                rel = pattern.relationships[index - 1]
                self._walk_rel(
                    rel, pattern.nodes[index - 1], node, register_binds, local_only
                )

    def _walk_node(
        self, node: ast.NodePattern, register_binds: bool, local_only: bool
    ) -> None:
        if node.variable and not local_only:
            self._bind(node.variable, node.span, register_binds)
            if node.labels:
                self._node_labels.setdefault(node.variable, set()).update(node.labels)
        for index, label in enumerate(node.labels):
            if label not in ENTITIES:
                span = node.label_spans[index] if index < len(node.label_spans) else None
                self._emit(
                    "LNT001",
                    f"unknown node label :{label} (not in the ontology)",
                    span,
                )
        labels = self._effective_node_labels(node)
        known = [label for label in labels if label in ENTITIES]
        for index, (key, value) in enumerate(node.properties):
            self._expr(value)
            span = (
                node.property_spans[index]
                if index < len(node.property_spans)
                else None
            )
            if known and not any(key in NODE_PROPERTIES[label] for label in known):
                names = "/".join(f":{label}" for label in sorted(known))
                self._emit(
                    "LNT004",
                    f"property `{key}` is not produced for {names} nodes",
                    span,
                )
            elif known:
                self._check_kind_against_literal(
                    self._node_property_kinds(known, key), key, value, span
                )

    def _walk_rel(
        self,
        rel: ast.RelPattern,
        left: ast.NodePattern,
        right: ast.NodePattern,
        register_binds: bool,
        local_only: bool,
    ) -> None:
        if rel.variable and not local_only:
            self._bind(rel.variable, rel.span, register_binds)
            if rel.types:
                self._rel_types.setdefault(rel.variable, set()).update(rel.types)
        known_types = []
        for index, rel_type in enumerate(rel.types):
            span = rel.type_spans[index] if index < len(rel.type_spans) else None
            if rel_type not in RELATIONSHIPS:
                self._emit(
                    "LNT002",
                    f"unknown relationship type :{rel_type} (not in the ontology)",
                    span,
                )
            else:
                known_types.append((rel_type, span))
        self._check_endpoints(rel, left, right, known_types)
        for index, (key, value) in enumerate(rel.properties):
            self._expr(value)
            span = (
                rel.property_spans[index] if index < len(rel.property_spans) else None
            )
            types = [t for t, _ in known_types]
            if types and not any(
                key in RELATIONSHIP_PROPERTIES[t] for t in types
            ):
                names = "/".join(f":{t}" for t in sorted(types))
                self._emit(
                    "LNT004",
                    f"property `{key}` is not produced on {names} relationships",
                    span,
                )
            elif types:
                kinds = {
                    RELATIONSHIP_PROPERTIES[t].get(key)
                    for t in types
                } - {None}
                self._check_kind_against_literal(kinds, key, value, span)

    def _check_endpoints(
        self,
        rel: ast.RelPattern,
        left: ast.NodePattern,
        right: ast.NodePattern,
        known_types: list[tuple[str, ast.Span | None]],
    ) -> None:
        if rel.is_variable_length:
            return
        src = [x for x in self._effective_node_labels(left) if x in ENTITIES]
        dst = [x for x in self._effective_node_labels(right) if x in ENTITIES]
        if not src or not dst:
            return
        for rel_type, span in known_types:
            endpoints = RELATIONSHIPS[rel_type].endpoints
            forward = _permitted(endpoints, src, dst)
            backward = _permitted(endpoints, dst, src)
            if rel.direction == "out":
                ok = forward
            elif rel.direction == "in":
                ok = backward
            else:
                ok = forward or backward
            if not ok:
                arrow = {"out": "->", "in": "<-", "both": "-"}[rel.direction]
                src_s = "|".join(f":{x}" for x in sorted(src))
                dst_s = "|".join(f":{x}" for x in sorted(dst))
                self._emit(
                    "LNT003",
                    f"({src_s})-[:{rel_type}]{arrow}({dst_s}) is not a "
                    f"permitted endpoint combination for :{rel_type}",
                    span,
                )

    def _effective_node_labels(self, node: ast.NodePattern) -> set[str]:
        labels = set(node.labels)
        if node.variable:
            labels.update(self._node_labels.get(node.variable, ()))
        return labels

    # -- cartesian products ---------------------------------------------

    def _check_cartesian(self, clause: ast.MatchClause, pre_scope: set[str]) -> None:
        if len(clause.patterns) < 2:
            return
        components: list[tuple[set[str], ast.Span | None]] = []
        for pattern in clause.patterns:
            names = _pattern_variable_names(pattern)
            span = pattern.nodes[0].span
            merged_names, merged_span = set(names), span
            rest: list[tuple[set[str], ast.Span | None]] = []
            for other_names, other_span in components:
                if names and other_names & names:
                    merged_names |= other_names
                    merged_span = other_span or merged_span
                else:
                    rest.append((other_names, other_span))
            rest.append((merged_names, merged_span))
            components = rest
        anchored = [c for c in components if c[0] & pre_scope]
        floating = [c for c in components if not (c[0] & pre_scope)]
        effective = (1 if anchored else 0) + len(floating)
        if effective > 1:
            offender = floating[1] if len(floating) > 1 else floating[0]
            self._emit(
                "LNT005",
                f"MATCH has {effective} disconnected pattern components; "
                "the result is a cartesian product",
                offender[1],
            )

    # -- index anchors ---------------------------------------------------

    def _check_index_anchors(
        self, pattern: ast.PathPattern, pre_scope: set[str]
    ) -> None:
        if self._store is None:
            return
        if any(n.variable in pre_scope for n in pattern.nodes if n.variable):
            return  # anchored on an already-bound variable: no scan
        unindexed: list[tuple[str, str, ast.Span | None]] = []
        for node in pattern.nodes:
            keys = [key for key, _ in node.properties]
            if not keys:
                continue
            known = [
                label
                for label in self._effective_node_labels(node)
                if label in ENTITIES
            ]
            if not known:
                continue
            if any(
                self._store.has_index(label, key)
                for label in known
                for key in keys
            ):
                return  # the planner has an index seek available
            unindexed.append((known[0], keys[0], node.span))
        for label, key, span in unindexed:
            self._emit(
                "LNT008",
                f"lookup on :{label}({key}) has no index; the pattern "
                "anchors with a full label scan",
                span,
            )

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: ast.Expression, local: frozenset[str] = frozenset()) -> None:
        if isinstance(expr, ast.Variable):
            if expr.name in self._scope:
                self._used.add(expr.name)
            elif expr.name not in local:
                self._emit(
                    "LNT007",
                    f"variable `{expr.name}` is used but never bound",
                    expr.span,
                )
            return
        if isinstance(expr, ast.PropertyAccess):
            self._expr(expr.subject, local)
            self._check_property_access(expr)
            return
        if isinstance(expr, ast.BinaryOp):
            self._expr(expr.left, local)
            self._expr(expr.right, local)
            self._check_comparison(expr)
            return
        if isinstance(expr, ast.UnaryOp):
            self._expr(expr.operand, local)
        elif isinstance(expr, ast.IsNull):
            self._expr(expr.operand, local)
        elif isinstance(expr, ast.ListLiteral):
            for item in expr.items:
                self._expr(item, local)
        elif isinstance(expr, ast.MapLiteral):
            for _, value in expr.items:
                self._expr(value, local)
        elif isinstance(expr, ast.IndexAccess):
            self._expr(expr.subject, local)
            if expr.index is not None:
                self._expr(expr.index, local)
            if expr.end is not None:
                self._expr(expr.end, local)
        elif isinstance(expr, ast.CaseExpression):
            if expr.operand is not None:
                self._expr(expr.operand, local)
            for condition, value in expr.whens:
                self._expr(condition, local)
                self._expr(value, local)
            if expr.default is not None:
                self._expr(expr.default, local)
        elif isinstance(expr, ast.FunctionCall):
            for arg in expr.args:
                self._expr(arg, local)
        elif isinstance(expr, ast.ListComprehension):
            self._expr(expr.source, local)
            inner = local | {expr.variable}
            if expr.predicate is not None:
                self._expr(expr.predicate, inner)
            if expr.projection is not None:
                self._expr(expr.projection, inner)
        elif isinstance(expr, ast.ListPredicate):
            self._expr(expr.source, local)
            self._expr(expr.predicate, local | {expr.variable})
        elif isinstance(expr, ast.Reduce):
            self._expr(expr.init, local)
            self._expr(
                expr.expression, local | {expr.accumulator, expr.variable}
            )
        elif isinstance(expr, ast.PatternPredicate):
            # Pattern predicates reference bound variables and may name
            # fresh ones locally; lint labels/types/endpoints but do not
            # bind into the outer scope.
            for node in expr.pattern.nodes:
                if node.variable and node.variable in self._scope:
                    self._used.add(node.variable)
            for rel in expr.pattern.relationships:
                if rel.variable and rel.variable in self._scope:
                    self._used.add(rel.variable)
            self._walk_pattern(expr.pattern, register_binds=False, local_only=True)

    def _check_property_access(self, expr: ast.PropertyAccess) -> None:
        if not isinstance(expr.subject, ast.Variable):
            return
        name = expr.subject.name
        labels = [
            label
            for label in self._node_labels.get(name, ())
            if label in ENTITIES
        ]
        if labels:
            if not any(expr.key in NODE_PROPERTIES[label] for label in labels):
                names = "/".join(f":{label}" for label in sorted(labels))
                self._emit(
                    "LNT004",
                    f"property `{expr.key}` is not produced for {names} nodes",
                    expr.key_span,
                )
            return
        types = [
            rel_type
            for rel_type in self._rel_types.get(name, ())
            if rel_type in RELATIONSHIPS
        ]
        if types and not any(
            expr.key in RELATIONSHIP_PROPERTIES[t] for t in types
        ):
            names = "/".join(f":{t}" for t in sorted(types))
            self._emit(
                "LNT004",
                f"property `{expr.key}` is not produced on {names} relationships",
                expr.key_span,
            )

    def _check_comparison(self, expr: ast.BinaryOp) -> None:
        if expr.op in _STRING_OPS:
            kinds = self._expression_kinds(expr.left)
            if kinds and kinds <= _NUMERIC_KINDS:
                self._emit(
                    "LNT009",
                    f"string operator on numeric property "
                    f"`{_describe(expr.left)}`",
                    _expr_span(expr.left),
                )
            return
        if expr.op not in _COMPARISON_OPS:
            return
        for prop, literal in (
            (expr.left, expr.right),
            (expr.right, expr.left),
        ):
            if not isinstance(literal, ast.Literal):
                continue
            kinds = self._expression_kinds(prop)
            literal_kind = _literal_kind(literal.value)
            if not kinds or literal_kind is None:
                continue
            if not any(_compatible(kind, literal_kind) for kind in kinds):
                kind = "/".join(sorted(kinds))
                self._emit(
                    "LNT009",
                    f"comparing {kind} property `{_describe(prop)}` to "
                    f"{literal_kind} literal {literal.value!r}",
                    literal.span or _expr_span(prop),
                )
            return

    def _expression_kinds(self, expr: ast.Expression) -> set[str]:
        """Catalogued kinds a property access may yield; empty = unknown."""
        if not (
            isinstance(expr, ast.PropertyAccess)
            and isinstance(expr.subject, ast.Variable)
        ):
            return set()
        name = expr.subject.name
        labels = [
            label
            for label in self._node_labels.get(name, ())
            if label in ENTITIES
        ]
        if labels:
            return self._node_property_kinds(labels, expr.key)
        types = [
            rel_type
            for rel_type in self._rel_types.get(name, ())
            if rel_type in RELATIONSHIPS
        ]
        return {
            RELATIONSHIP_PROPERTIES[t].get(expr.key) for t in types
        } - {None}

    @staticmethod
    def _node_property_kinds(labels: Iterable[str], key: str) -> set[str]:
        return {NODE_PROPERTIES[label].get(key) for label in labels} - {None}

    def _check_kind_against_literal(
        self,
        kinds: set[str],
        key: str,
        value: ast.Expression,
        span: ast.Span | None,
    ) -> None:
        if not isinstance(value, ast.Literal) or not kinds:
            return
        literal_kind = _literal_kind(value.value)
        if literal_kind is None:
            return
        if not any(_compatible(kind, literal_kind) for kind in kinds):
            kind = "/".join(sorted(kinds))
            self._emit(
                "LNT009",
                f"comparing {kind} property `{key}` to {literal_kind} "
                f"literal {value.value!r}",
                value.span or span,
            )


# -- helpers -------------------------------------------------------------


def _permitted(
    endpoints: tuple[tuple[str, str], ...],
    src: Iterable[str],
    dst: Iterable[str],
) -> bool:
    src, dst = set(src), set(dst)
    return any(
        (start == "*" or start in src) and (end == "*" or end in dst)
        for start, end in endpoints
    )


def _pattern_variable_names(pattern: ast.PathPattern) -> set[str]:
    names = {n.variable for n in pattern.nodes if n.variable}
    names |= {r.variable for r in pattern.relationships if r.variable}
    if pattern.path_variable:
        names.add(pattern.path_variable)
    return names


def _literal_kind(value: object) -> str | None:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, list):
        return "list"
    return None


def _compatible(kind: str, literal_kind: str) -> bool:
    if kind == literal_kind:
        return True
    return kind in _NUMERIC_KINDS and literal_kind in _NUMERIC_KINDS


def _describe(expr: ast.Expression) -> str:
    if isinstance(expr, ast.PropertyAccess):
        return f"{_describe(expr.subject)}.{expr.key}"
    if isinstance(expr, ast.Variable):
        return expr.name
    return "expr"


def _expr_span(expr: ast.Expression) -> ast.Span | None:
    if isinstance(expr, ast.PropertyAccess):
        return expr.key_span
    if isinstance(expr, ast.Variable):
        return expr.span
    if isinstance(expr, ast.Literal):
        return expr.span
    return None
