"""Pull Cypher queries out of files for batch linting.

``repro lint`` accepts three source shapes:

- ``.py`` modules: module-level string constants that look like Cypher
  (contain a MATCH/CREATE/MERGE/UNWIND/RETURN keyword) — this is how
  ``src/repro/studies/queries.py`` stores the paper listings;
- ``.md`` documents: fenced code blocks tagged ``cypher`` — the
  listings embedded in EXPERIMENTS.md;
- anything else (``.cypher``, ``.cql``, stdin): the whole text is one
  query.

Each extracted query keeps a name (constant name or block ordinal) so
diagnostics can cite their origin.
"""

from __future__ import annotations

import ast as python_ast
import re
from pathlib import Path

_QUERY_KEYWORD = re.compile(
    r"\b(MATCH|CREATE|MERGE|UNWIND|RETURN)\b", re.IGNORECASE
)
_CYPHER_FENCE = re.compile(
    r"^```\s*cypher\s*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def looks_like_cypher(text: str) -> bool:
    """Heuristic used to pick query constants out of Python modules."""
    return bool(_QUERY_KEYWORD.search(text))


def extract_from_python(source: str) -> list[tuple[str, str]]:
    """(name, query) for each module-level Cypher string constant."""
    module = python_ast.parse(source)
    queries: list[tuple[str, str]] = []
    for statement in module.body:
        targets: list[str] = []
        value = None
        if isinstance(statement, python_ast.Assign):
            targets = [
                t.id for t in statement.targets if isinstance(t, python_ast.Name)
            ]
            value = statement.value
        elif isinstance(statement, python_ast.AnnAssign) and isinstance(
            statement.target, python_ast.Name
        ):
            targets = [statement.target.id]
            value = statement.value
        if (
            targets
            and isinstance(value, python_ast.Constant)
            and isinstance(value.value, str)
            and looks_like_cypher(value.value)
        ):
            for name in targets:
                queries.append((name, value.value))
    return queries


def extract_from_markdown(source: str) -> list[tuple[str, str]]:
    """(name, query) for each ```cypher fenced block, in order."""
    return [
        (f"cypher block {index}", match.group(1))
        for index, match in enumerate(_CYPHER_FENCE.finditer(source), start=1)
    ]


def extract_queries(path: str | Path) -> list[tuple[str, str]]:
    """Extract (name, query) pairs from a file, by extension."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".py":
        return [(f"{path}:{name}", query) for name, query in extract_from_python(text)]
    if path.suffix in (".md", ".markdown"):
        return [(f"{path}:{name}", query) for name, query in extract_from_markdown(text)]
    return [(str(path), text)]
