"""Static analysis for the reproduction: query linting and graph
schema validation.

The query side (:class:`QueryLinter`) checks parsed Cypher against the
ontology without executing it; the data side (:class:`GraphValidator`)
sweeps a loaded store for coded violations grouped per crawler; the code
side (:class:`ConcurrencyAnalyzer`) checks the serving stack's own lock
discipline (``RACE001``-``RACE007``).  All emit stable codes documented
in ``documentation/linting.md``.
"""

from repro.lint.concurrency import (
    ConcurrencyAnalyzer,
    analyze_paths,
    analyze_source,
    default_targets,
)
from repro.lint.diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    diagnostic,
    fails_strict,
    worst_severity,
)
from repro.lint.extract import (
    extract_from_markdown,
    extract_from_python,
    extract_queries,
    looks_like_cypher,
)
from repro.lint.linter import QueryLinter, lint_query
from repro.lint.schema import (
    GRAPH_BUCKET,
    SCHEMA_CODES,
    UNKNOWN_BUCKET,
    GraphValidationReport,
    GraphValidator,
    SchemaViolation,
)

__all__ = [
    "CODES",
    "ConcurrencyAnalyzer",
    "GRAPH_BUCKET",
    "UNKNOWN_BUCKET",
    "Diagnostic",
    "GraphValidationReport",
    "GraphValidator",
    "QueryLinter",
    "SCHEMA_CODES",
    "SEVERITIES",
    "SchemaViolation",
    "analyze_paths",
    "analyze_source",
    "default_targets",
    "diagnostic",
    "extract_from_markdown",
    "extract_from_python",
    "extract_queries",
    "fails_strict",
    "lint_query",
    "looks_like_cypher",
    "worst_severity",
]
