"""Store-level schema validation — the "data sanitizer".

Where :class:`repro.ontology.SchemaValidator` reports free-form
messages, this validator sweeps a loaded graph and reports *coded*
violations grouped per crawler (via each relationship's
``reference_name`` provenance), so the pipeline can attach the outcome
to :class:`~repro.pipeline.build.BuildReport` and the metrics registry
can count violations by code:

``SCH001``  node carries no ontology label
``SCH002``  node is missing an identifying (uniqueness-key) property
``SCH003``  relationship type is not defined by the ontology
``SCH004``  relationship endpoints violate the ontology (either
            orientation is accepted: IYP stores links directed but
            queries them undirected)
``SCH005``  relationship lacks provenance (no ``reference_name``)
``SCH006``  dangling Reference metadata: provenance present but
            incomplete (``reference_org`` missing) or carrying
            ``reference_*`` properties the Reference model does not
            define
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ontology import ENTITIES, REFERENCE_PROPERTIES, RELATIONSHIPS

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphdb.model import Node, Relationship
    from repro.graphdb.store import GraphStore

#: Crawler bucket for node-level violations (nodes carry no provenance).
GRAPH_BUCKET = "(graph)"
#: Crawler bucket for relationships without a usable reference_name.
UNKNOWN_BUCKET = "(unknown)"

SCHEMA_CODES: dict[str, str] = {
    "SCH001": "non-ontology node label",
    "SCH002": "missing uniqueness-key property",
    "SCH003": "unknown relationship type",
    "SCH004": "endpoint labels violate the ontology",
    "SCH005": "missing provenance (reference_name)",
    "SCH006": "dangling Reference metadata",
}


@dataclass(frozen=True)
class SchemaViolation:
    """One coded violation, attributed to the crawler that produced it."""

    code: str
    kind: str  # 'node' | 'relationship'
    element_id: int
    crawler: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.code} [{self.crawler}] {self.kind} "
            f"{self.element_id}: {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "kind": self.kind,
            "element_id": self.element_id,
            "crawler": self.crawler,
            "message": self.message,
        }


@dataclass
class GraphValidationReport:
    """Aggregated sweep outcome, with per-crawler and per-code views."""

    violations: list[SchemaViolation] = field(default_factory=list)
    nodes_checked: int = 0
    relationships_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_crawler(self) -> dict[str, list[SchemaViolation]]:
        grouped: dict[str, list[SchemaViolation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.crawler, []).append(violation)
        return dict(sorted(grouped.items()))

    def by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self, limit: int = 20) -> dict[str, Any]:
        """JSON-friendly summary; detail is capped at ``limit`` entries."""
        return {
            "ok": self.ok,
            "nodes_checked": self.nodes_checked,
            "relationships_checked": self.relationships_checked,
            "violation_count": len(self.violations),
            "by_code": self.by_code(),
            "by_crawler": {
                crawler: len(items) for crawler, items in self.by_crawler().items()
            },
            "violations": [v.to_dict() for v in self.violations[:limit]],
        }


class GraphValidator:
    """Sweeps a :class:`GraphStore` for coded ontology violations."""

    def validate(self, store: "GraphStore") -> GraphValidationReport:
        report = GraphValidationReport()
        for node in store.iter_nodes():
            report.nodes_checked += 1
            self._check_node(node, report)
        for rel in store.iter_relationships():
            report.relationships_checked += 1
            self._check_relationship(store, rel, report)
        return report

    def _check_node(self, node: "Node", report: GraphValidationReport) -> None:
        known = [label for label in node.labels if label in ENTITIES]
        if not known:
            report.violations.append(
                SchemaViolation(
                    "SCH001",
                    "node",
                    node.id,
                    GRAPH_BUCKET,
                    f"no ontology label among {sorted(node.labels)}",
                )
            )
            return
        for label in known:
            missing = [
                key
                for key in ENTITIES[label].key_properties
                if key not in node.properties
            ]
            if missing:
                report.violations.append(
                    SchemaViolation(
                        "SCH002",
                        "node",
                        node.id,
                        GRAPH_BUCKET,
                        f":{label} missing identifying properties {missing}",
                    )
                )

    def _check_relationship(
        self, store: "GraphStore", rel: "Relationship", report: GraphValidationReport
    ) -> None:
        crawler = rel.properties.get("reference_name") or UNKNOWN_BUCKET
        definition = RELATIONSHIPS.get(rel.type)
        if definition is None:
            report.violations.append(
                SchemaViolation(
                    "SCH003",
                    "relationship",
                    rel.id,
                    crawler,
                    f"unknown relationship type :{rel.type}",
                )
            )
            return
        start = store.get_node(rel.start_id)
        end = store.get_node(rel.end_id)
        if not self._endpoints_permitted(definition.endpoints, start, end):
            report.violations.append(
                SchemaViolation(
                    "SCH004",
                    "relationship",
                    rel.id,
                    crawler,
                    f":{rel.type} between {sorted(start.labels)} and "
                    f"{sorted(end.labels)} violates the ontology",
                )
            )
        self._check_reference(rel, crawler, report)

    def _check_reference(
        self, rel: "Relationship", crawler: str, report: GraphValidationReport
    ) -> None:
        props = rel.properties
        if "reference_name" not in props:
            report.violations.append(
                SchemaViolation(
                    "SCH005",
                    "relationship",
                    rel.id,
                    crawler,
                    f":{rel.type} lacks provenance (reference_name)",
                )
            )
            return
        problems = []
        if "reference_org" not in props:
            problems.append("reference_org missing")
        stray = sorted(
            key
            for key in props
            if key.startswith("reference_") and key not in REFERENCE_PROPERTIES
        )
        if stray:
            problems.append(f"undefined reference properties {stray}")
        if problems:
            report.violations.append(
                SchemaViolation(
                    "SCH006",
                    "relationship",
                    rel.id,
                    crawler,
                    f":{rel.type} has dangling Reference metadata: "
                    + "; ".join(problems),
                )
            )

    @staticmethod
    def _endpoints_permitted(
        endpoints: tuple[tuple[str, str], ...], start: "Node", end: "Node"
    ) -> bool:
        for start_label, end_label in endpoints:
            if (start_label == "*" or start_label in start.labels) and (
                end_label == "*" or end_label in end.labels
            ):
                return True
            if (end_label == "*" or end_label in start.labels) and (
                start_label == "*" or start_label in end.labels
            ):
                return True
        return False
