"""Structured diagnostics shared by the query linter and the CLI.

Every check in :mod:`repro.lint.linter` emits :class:`Diagnostic`
instances with a stable code (``LNT000``-``LNT010``), a severity, a
human-readable message and, when known, the source span of the offending
token.  Codes and severities are documented in
``documentation/linting.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cypher.ast import Span

#: Severities, most severe first.  ``--strict`` fails on error and
#: warning; ``info`` diagnostics (style-level, e.g. an unused variable)
#: never fail a lint run.
SEVERITIES = ("error", "warning", "info")

#: code -> (severity, short title)
CODES: dict[str, tuple[str, str]] = {
    "LNT000": ("error", "syntax error"),
    "LNT001": ("error", "unknown node label"),
    "LNT002": ("error", "unknown relationship type"),
    "LNT003": ("error", "impossible relationship endpoints"),
    "LNT004": ("warning", "unknown property name"),
    "LNT005": ("warning", "cartesian product"),
    "LNT006": ("info", "variable bound but never used"),
    "LNT007": ("error", "variable used but never bound"),
    "LNT008": ("warning", "property lookup without index"),
    "LNT009": ("warning", "suspicious type comparison"),
    "LNT010": ("error", "unknown procedure name"),
    # Concurrency-safety codes (repro.lint.concurrency / repro
    # check-concurrency): RACE001-RACE006 are guarded-by violations,
    # RACE007 is a static lock-order cycle.
    "RACE001": ("error", "unguarded mutation of guarded attribute"),
    "RACE002": ("error", "unguarded read of lock-guarded attribute"),
    "RACE003": ("error", "locked-contract method called without its lock"),
    "RACE004": ("warning", "check-then-act race on guarded state"),
    "RACE005": ("warning", "mutable module-level state in concurrent module"),
    "RACE006": ("error", "malformed concurrency annotation"),
    "RACE007": ("error", "lock-order cycle (potential deadlock)"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pointing at a source location when known."""

    code: str
    severity: str
    message: str
    span: Span | None = None

    def format(self, source: str | None = None) -> str:
        """Render as ``source:line:col: severity CODE: message``."""
        location = ""
        if self.span is not None:
            location = f"{self.span.line}:{self.span.column}: "
        prefix = f"{source}:" if source else ""
        return f"{prefix}{location}{self.severity} {self.code}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
            payload["offset"] = self.span.offset
        return payload


def diagnostic(code: str, message: str, span: Span | None = None) -> Diagnostic:
    """Build a diagnostic with the registered severity for ``code``."""
    severity = CODES[code][0]
    return Diagnostic(code, severity, message, span)


def worst_severity(diagnostics: list[Diagnostic]) -> str | None:
    """The most severe level present, or None for a clean result."""
    for severity in SEVERITIES:
        if any(d.severity == severity for d in diagnostics):
            return severity
    return None


def fails_strict(diagnostics: list[Diagnostic]) -> bool:
    """Strict mode fails on errors and warnings, but not info notes."""
    return any(d.severity in ("error", "warning") for d in diagnostics)
