"""Concurrency-safety analysis for the Python codebase itself.

The third static-analysis surface beside the Cypher linter and the graph
validator: an ``ast``-based pass over the serving stack that checks the
lock contracts declared through :mod:`repro.concurrency` (class-level
``GUARDED_BY`` maps and ``@guarded_by`` decorators) and the ``_locked``
naming convention, and builds the static acquires-while-holding graph to
find potential deadlocks.  Run it with ``repro check-concurrency`` (or
``repro lint --python``); CI keeps the repo at zero findings.

Codes (documented in ``documentation/linting.md``):

``RACE001``  mutation of a guarded attribute outside its lock's
             exclusive region (or assignment to a ``frozen`` attribute
             outside ``__init__``).
``RACE002``  read of a fully guarded attribute without the lock held
             (shared or exclusive).  ``write:``-guarded attributes are
             deliberately lock-free to read.
``RACE003``  call of a ``_locked``-suffixed or ``@guarded_by`` method on
             a path that does not hold the required lock exclusively —
             the ``_locked`` contract says the *caller* locks.
``RACE004``  check-then-act: a conditional tests guarded state without
             the lock and then mutates the same state in its body; the
             state can change between the check and the act.
``RACE005``  mutable module-level container in a server/obs module —
             shared across every request thread with no lock to name.
``RACE006``  malformed annotation: unparsable guard spec, a guard
             naming a lock attribute the class never creates, or a bad
             ``@guarded_by`` argument.
``RACE007``  cycle in the static lock-order graph: two locks acquired
             in opposite orders on different code paths can deadlock.

The analysis is interprocedural through the annotation system: a method
body is checked under the locks its own annotations promise, and every
*callsite* of an annotated method is checked for the promised locks
(RACE003), so a ``_locked`` method reachable from an unlocked public
entry point is flagged at the call edge.  Lock-order summaries propagate
through resolvable calls to a fixpoint, so a cycle spanning several
methods (or classes) is still found.

Lock acquisitions are recognized in the forms the codebase uses::

    with self._lock: ...                  # mutex / RLock / Condition
    with self._rwlock.read(): ...         # shared
    with self._rwlock.write(): ...        # exclusive
    with self.read_lock(): ...            # provider method
    with store.write_lock(): ...          # provider on a typed attribute
    with self._mutation(): ...            # @contextmanager wrapping yield

Receivers other than ``self`` are resolved through ``self.X = Class()``
attribute typing, falling back to a unique method name across every
analyzed class.  Known limitations, by design: aliasing through locals
(``d = self._d; d[k] = v``) is invisible, and a spec can always be
silenced with ``# concurrency: ignore[RACE001]`` on the offending line.

Reentrancy: the store's RWLock and ``threading.RLock`` may be
re-acquired by their holder, so self-edges on those locks are not
deadlocks; a plain ``threading.Lock`` self-edge is reported (RACE007).
``threading.Condition`` attributes are excluded from the order graph
entirely — the RWLock is *implemented* on one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.concurrency.guards import GuardSpec, parse_guard_spec
from repro.cypher.ast import Span
from repro.lint.diagnostics import Diagnostic, diagnostic

#: Constructor name -> lock kind, for recognizing lock attributes.
LOCK_CONSTRUCTORS = {
    "Lock": "mutex",
    "RLock": "rlock",
    "Condition": "cond",
    "RWLock": "rwlock",
    "DebugRWLock": "rwlock",
    "new_rwlock": "rwlock",
    "new_lock": "mutex",
    "TrackedLock": "mutex",
}

#: Container-mutating method names: calling one of these on a guarded
#: attribute is a mutation of that attribute.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "setdefault", "update",
})

#: Module-level container constructors flagged by RACE005.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter",
})

#: Builtin container types recorded as attribute types so that method
#: calls on them (``self._data.get(...)``) are never resolved to a
#: same-named method of an analyzed class via the unique-name fallback.
BUILTIN_CONTAINERS = frozenset({
    "dict", "frozenset", "list", "set", "tuple",
    "Counter", "OrderedDict", "defaultdict", "deque",
})

#: Method names the builtin containers define: excluded from the
#: unique-name fallback, because ``entry.get(...)`` on an untyped
#: receiver is almost always a dict — not the one analyzed class that
#: happens to define a method of the same name.
CONTAINER_METHOD_NAMES = MUTATOR_METHODS | frozenset({
    "copy", "count", "get", "index", "items", "keys", "values",
})

#: Packages whose modules must not hold module-level mutable state
#: (every request thread shares them); matched on the file path.
SHARED_STATE_PACKAGES = ("server", "obs", "columnar")

_IGNORE_RE = re.compile(r"#\s*concurrency:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


# ---------------------------------------------------------------------------
# Per-file model
# ---------------------------------------------------------------------------


@dataclass
class MethodInfo:
    """One function of an analyzed class."""

    node: ast.FunctionDef
    #: Locks promised held by ``@guarded_by`` (attribute names).
    required: tuple[str, ...] = ()
    #: ``(lock_attr, mode)`` when the method is a lock provider —
    #: returns ``self.<lock>.read()/.write()``, the lock itself, or is a
    #: ``@contextmanager`` whose ``yield`` sits inside such a ``with``.
    provides: tuple[str, str] | None = None


@dataclass
class ClassInfo:
    """Locking-relevant facts about one class."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    #: attribute -> parsed guard spec, from the GUARDED_BY literal.
    guards: dict[str, GuardSpec] = field(default_factory=dict)
    #: lock attribute -> kind ("mutex" | "rlock" | "cond" | "rwlock").
    locks: dict[str, str] = field(default_factory=dict)
    #: attribute -> class name, from ``self.X = ClassName(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, MethodInfo] = field(default_factory=dict)

    def canon(self, lock_attr: str) -> str:
        return f"{self.name}.{lock_attr}"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    tree: ast.Module
    line_starts: list[int]
    #: line number -> set of suppressed codes (empty set = all codes).
    ignores: dict[int, frozenset[str]]
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)


@dataclass(frozen=True)
class _Acquire:
    """One resolved lock acquisition."""

    attr: str | None  # lock attribute when the receiver is self
    canon: str  # "Class.attr" canonical name
    kind: str
    mode: str  # "shared" | "exclusive"


# ---------------------------------------------------------------------------
# Parsing helpers
# ---------------------------------------------------------------------------


def _line_starts(source: str) -> list[int]:
    starts = [0]
    for line in source.splitlines(keepends=True):
        starts.append(starts[-1] + len(line))
    return starts


def _scan_ignores(source: str) -> dict[int, frozenset[str]]:
    ignores: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None:
            ignores[lineno] = frozenset()
        else:
            ignores[lineno] = frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            )
    return ignores


def _span(module: ModuleInfo, node: ast.AST) -> Span:
    line = getattr(node, "lineno", 1)
    column = getattr(node, "col_offset", 0) + 1
    offset = module.line_starts[min(line - 1, len(module.line_starts) - 1)]
    return Span(offset + column - 1, line, column)


def _call_name(func: ast.expr) -> str | None:
    """The trailing identifier of a call target (``a.b.c() -> "c"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _value_type_name(value: ast.expr) -> str | None:
    """The type an ``__init__`` assignment gives an attribute, if clear.

    Class constructors (capitalized calls) resolve method calls on the
    attribute to the right analyzed class; builtin container types —
    literals, comprehensions, and their constructors — are recorded so
    calls on them are *not* mis-resolved by the unique-name fallback
    (``self._data.get(...)`` is never ``SomeClass.get``).
    """
    if isinstance(value, ast.Call):
        name = _call_name(value.func)
        if name is not None and (name[:1].isupper() or name in BUILTIN_CONTAINERS):
            return name
        return None
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    return None


def _lock_kind_of_value(value: ast.expr) -> str | None:
    """Lock kind when ``value`` constructs a lock, else None."""
    if isinstance(value, ast.Call):
        name = _call_name(value.func)
        if name in LOCK_CONSTRUCTORS:
            return LOCK_CONSTRUCTORS[name]
    return None


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


def _self_attr(expr: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``, else None."""
    if isinstance(expr, ast.Attribute) and _is_self(expr.value):
        return expr.attr
    return None


def _mutation_root(target: ast.expr) -> tuple[str | None, list[ast.AST]]:
    """Resolve a store/delete target to the self attribute it mutates.

    ``self.X``, ``self.X[k]``, ``self.X[k][j]``, ``self.X.attr`` all
    mutate ``X``.  Returns ``(attr, consumed_nodes)``; attr is None for
    targets not rooted at ``self``.
    """
    consumed: list[ast.AST] = []
    node = target
    while True:
        consumed.append(node)
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            if _is_self(node.value):
                return node.attr, consumed
            node = node.value
        else:
            return None, consumed


def _contextmanager_provider(
    func: ast.FunctionDef, cls: "ClassInfo"
) -> tuple[str, str] | None:
    """``(lock, mode)`` for a ``@contextmanager`` whose yield is locked."""
    decorated = any(
        _call_name(dec) == "contextmanager" or
        (isinstance(dec, ast.Name) and dec.id == "contextmanager")
        for dec in func.decorator_list
    )
    if not decorated:
        return None

    found: list[tuple[str, str]] = []

    def walk(node: ast.AST, acquires: list[tuple[str, str]]) -> None:
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if acquires:
                found.append(acquires[-1])
            return
        if isinstance(node, ast.With):
            inner = list(acquires)
            for item in node.items:
                resolved = _resolve_self_acquire(item.context_expr, cls)
                if resolved is not None:
                    inner.append(resolved)
            for child in node.body:
                walk(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        for child in ast.iter_child_nodes(node):
            walk(child, acquires)

    for statement in func.body:
        walk(statement, [])
    return found[0] if found else None


def _resolve_self_acquire(
    expr: ast.expr, cls: "ClassInfo"
) -> tuple[str, str] | None:
    """``(lock_attr, mode)`` for ``self.<lock>`` / ``self.<lock>.read()``
    / ``self.<lock>.write()`` acquisition expressions."""
    attr = _self_attr(expr)
    if attr is not None and attr in cls.locks:
        return attr, "exclusive"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        receiver = expr.func.value
        attr = _self_attr(receiver)
        if attr is not None and attr in cls.locks:
            if expr.func.attr == "read":
                return attr, "shared"
            if expr.func.attr in ("write", "acquire"):
                return attr, "exclusive"
    return None


def _decorator_required(
    func: ast.FunctionDef,
) -> tuple[tuple[str, ...], list[ast.expr]]:
    """Lock names from an ``@guarded_by(...)`` decorator, plus any
    non-constant arguments (reported as RACE006 by the caller)."""
    required: list[str] = []
    bad: list[ast.expr] = []
    for dec in func.decorator_list:
        if isinstance(dec, ast.Call) and _call_name(dec.func) == "guarded_by":
            for arg in dec.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    required.append(arg.value)
                else:
                    bad.append(arg)
    return tuple(required), bad


# ---------------------------------------------------------------------------
# Module collection
# ---------------------------------------------------------------------------


def _collect_class(module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(name=node.name, module=module, node=node)

    for statement in node.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            if (
                len(targets) == 1
                and isinstance(targets[0], ast.Name)
                and targets[0].id == "GUARDED_BY"
            ):
                _parse_guard_map(module, cls, statement.value)
        elif isinstance(statement, ast.FunctionDef):
            cls.methods[statement.name] = MethodInfo(node=statement)

    init = cls.methods.get("__init__")
    init_bodies = [init.node] if init else []
    # Lock attributes and attribute types come from __init__ (and, for
    # lock attributes, any method — a lazily created lock still counts).
    for info in cls.methods.values():
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                target, value = sub.target, sub.value
            else:
                continue
            attr = _self_attr(target)
            if attr is None:
                continue
            kind = _lock_kind_of_value(value)
            if kind is not None:
                cls.locks[attr] = kind
            elif info.node in init_bodies:
                type_name = _value_type_name(value)
                if type_name is not None:
                    cls.attr_types[attr] = type_name

    for name, info in cls.methods.items():
        required, bad_args = _decorator_required(info.node)
        info.required = required
        for arg in bad_args:
            _emit(module, "RACE006",
                  "guarded_by() arguments must be string literals",
                  _span(module, arg))
        for lock in required:
            if cls.locks and lock not in cls.locks:
                _emit(module, "RACE006",
                      f"@guarded_by({lock!r}) on {cls.name}.{name}: class "
                      f"creates no lock attribute {lock!r}",
                      _span(module, info.node))
        info.provides = _method_provider(info.node, cls)

    for attr, spec in cls.guards.items():
        if spec.lock is not None and cls.locks and spec.lock not in cls.locks:
            _emit(module, "RACE006",
                  f"GUARDED_BY[{attr!r}] names lock {spec.lock!r} but "
                  f"{cls.name} creates no such lock attribute",
                  _span(module, cls.node))
    return cls


def _method_provider(func: ast.FunctionDef, cls: ClassInfo) -> tuple[str, str] | None:
    """Detect lock-provider methods (``return self._rwlock.read()`` or a
    locked ``@contextmanager``)."""
    provider = _contextmanager_provider(func, cls)
    if provider is not None:
        return provider
    for statement in func.body:
        if isinstance(statement, ast.Return) and statement.value is not None:
            return _resolve_self_acquire(statement.value, cls)
    return None


def _parse_guard_map(module: ModuleInfo, cls: ClassInfo, value: ast.expr) -> None:
    if not isinstance(value, ast.Dict):
        _emit(module, "RACE006",
              f"{cls.name}.GUARDED_BY must be a dict literal",
              _span(module, value))
        return
    for key, val in zip(value.keys, value.values, strict=True):
        if (
            not isinstance(key, ast.Constant) or not isinstance(key.value, str)
            or not isinstance(val, ast.Constant) or not isinstance(val.value, str)
        ):
            _emit(module, "RACE006",
                  f"{cls.name}.GUARDED_BY entries must map attribute name "
                  "strings to guard spec strings",
                  _span(module, val if val is not None else value))
            continue
        try:
            cls.guards[key.value] = parse_guard_spec(val.value)
        except ValueError as exc:
            _emit(module, "RACE006", str(exc), _span(module, val))


def _emit(module: ModuleInfo, code: str, message: str, span: Span) -> None:
    suppressed = module.ignores.get(span.line)
    if suppressed is not None and (not suppressed or code in suppressed):
        return
    module.diagnostics.append(diagnostic(code, message, span))


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class ConcurrencyAnalyzer:
    """Whole-program pass: guarded-by checking plus lock-order analysis."""

    def __init__(self) -> None:
        self.modules: list[ModuleInfo] = []
        #: class name -> ClassInfo (last definition wins; names are
        #: unique across the analyzed packages).
        self.classes: dict[str, ClassInfo] = {}
        #: method name -> class names defining it (unique-name fallback).
        self.method_owners: dict[str, list[str]] = {}
        #: canonical lock name -> kind.
        self.lock_kinds: dict[str, str] = {}
        #: direct order edges: (held, acquired) -> first witnessing span.
        self.order_edges: dict[tuple[str, str], tuple[ModuleInfo, Span]] = {}
        #: calls made while holding locks, for summary propagation.
        self.calls_under_hold: list[
            tuple[tuple[str, ...], str, str, ModuleInfo, Span]
        ] = []
        #: (class, method) -> canonical locks it may acquire (fixpoint).
        self.summaries: dict[tuple[str, str], set[str]] = {}
        #: call graph edges for the fixpoint: caller -> callees.
        self.call_graph: dict[tuple[str, str], set[tuple[str, str]]] = {}

    # -- loading ---------------------------------------------------------

    def add_source(self, source: str, path: str) -> ModuleInfo | None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            module = ModuleInfo(path, ast.Module(body=[], type_ignores=[]),
                                _line_starts(source), {})
            module.diagnostics.append(diagnostic(
                "RACE006", f"cannot parse: {exc.msg}",
                Span(0, exc.lineno or 1, (exc.offset or 0) + 1)))
            self.modules.append(module)
            return module
        module = ModuleInfo(
            path, tree, _line_starts(source), _scan_ignores(source)
        )
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                cls = _collect_class(module, node)
                module.classes[cls.name] = cls
                self.classes[cls.name] = cls
                for name in cls.methods:
                    self.method_owners.setdefault(name, []).append(cls.name)
                for attr, kind in cls.locks.items():
                    self.lock_kinds[cls.canon(attr)] = kind
        self.modules.append(module)
        return module

    def add_file(self, path: Path) -> None:
        self.add_source(path.read_text(encoding="utf-8"), str(path))

    # -- resolution ------------------------------------------------------

    def _unique_owner(self, method: str) -> ClassInfo | None:
        if method in CONTAINER_METHOD_NAMES:
            return None
        owners = self.method_owners.get(method, [])
        if len(owners) == 1:
            return self.classes[owners[0]]
        return None

    def _resolve_target(
        self, call: ast.Call, cls: ClassInfo | None
    ) -> tuple[ClassInfo, str] | None:
        """The (class, method) a call lands on, when statically known."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        receiver = func.value
        if cls is not None:
            if _is_self(receiver):
                if name in cls.methods:
                    return cls, name
                return None
            attr = _self_attr(receiver)
            if attr is not None:
                type_name = cls.attr_types.get(attr)
                if type_name is not None:
                    if type_name in self.classes:
                        target = self.classes[type_name]
                        if name in target.methods:
                            return target, name
                    # The type is known but outside the analyzed
                    # universe (a builtin container, say): the
                    # unique-name fallback would mis-resolve.
                    return None
        owner = self._unique_owner(name)
        if owner is not None:
            return owner, name
        return None

    def _resolve_acquires(
        self, expr: ast.expr, cls: ClassInfo | None
    ) -> list[_Acquire]:
        """Lock acquisitions performed by a ``with`` context expression."""
        if cls is not None:
            self_acquire = _resolve_self_acquire(expr, cls)
            if self_acquire is not None:
                attr, mode = self_acquire
                return [_Acquire(attr, cls.canon(attr), cls.locks[attr], mode)]
        if isinstance(expr, ast.Call):
            target = self._resolve_target(expr, cls)
            if target is not None:
                owner, name = target
                provides = owner.methods[name].provides
                if provides is not None:
                    lock, mode = provides
                    kind = owner.locks.get(lock, "mutex")
                    attr = lock if owner is cls and _is_self_call(expr) else None
                    return [_Acquire(attr, owner.canon(lock), kind, mode)]
        return []

    # -- analysis --------------------------------------------------------

    def run(self) -> None:
        """Check every collected module, then close the order graph."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    cls = module.classes[node.name]
                    for info in cls.methods.values():
                        self._check_method(module, cls, info)
                elif isinstance(node, ast.FunctionDef):
                    self._walk(module, None, None, node.body, {}, (), set())
            self._check_module_state(module)
        self._propagate_summaries()
        self._report_cycles()

    # .. guarded-by + order-edge walk .....................................

    def _check_method(
        self, module: ModuleInfo, cls: ClassInfo, info: MethodInfo
    ) -> None:
        func = info.node
        held: dict[str, str] = {}
        canon_held: tuple[str, ...] = ()
        if func.name == "__init__":
            # Construction is single-threaded: every guard is satisfied.
            for attr in cls.locks:
                held[attr] = "exclusive"
        else:
            assumed: Iterable[str] = info.required
            if not assumed and func.name.endswith("_locked"):
                # The naming convention: the caller holds the class's
                # lock(s); callsites are checked instead (RACE003).
                assumed = tuple(cls.locks)
            for lock in assumed:
                if lock in cls.locks:
                    held[lock] = "exclusive"
                    canon_held += (cls.canon(lock),)
        key = (cls.name, func.name)
        self.summaries.setdefault(key, set())
        self.call_graph.setdefault(key, set())
        self._walk(module, cls, key, func.body, held, canon_held, set())

    def _walk(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        key: tuple[str, str] | None,
        body: Sequence[ast.stmt],
        held: dict[str, str],
        canon_held: tuple[str, ...],
        consumed: set[int],
    ) -> None:
        for statement in body:
            self._visit(module, cls, key, statement, held, canon_held, consumed)

    def _visit(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        key: tuple[str, str] | None,
        node: ast.AST,
        held: dict[str, str],
        canon_held: tuple[str, ...],
        consumed: set[int],
    ) -> None:
        if isinstance(node, ast.With):
            acquires: list[_Acquire] = []
            for item in node.items:
                self._visit(module, cls, key, item.context_expr,
                            held, canon_held, consumed)
                acquires.extend(self._resolve_acquires(item.context_expr, cls))
            inner_held = dict(held)
            inner_canon = canon_held
            for acq in acquires:
                self._record_acquire(module, key, acq, inner_canon, node)
                if acq.attr is not None:
                    mode = inner_held.get(acq.attr)
                    if mode != "exclusive":  # don't downgrade a reentrant hold
                        inner_held[acq.attr] = acq.mode
                if acq.canon not in inner_canon:
                    inner_canon += (acq.canon,)
            self._walk(module, cls, key, node.body,
                       inner_held, inner_canon, consumed)
            return

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: usually an inline helper (sort key); check
            # it under the current holds rather than skipping it.
            self._walk(module, cls, key, node.body, held, canon_held, consumed)
            return

        if isinstance(node, ast.If) and cls is not None:
            self._check_then_act(module, cls, node, held, consumed)

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                self._check_mutation_target(
                    module, cls, key, target, held, consumed)

        if isinstance(node, ast.Call):
            self._check_call(module, cls, key, node, held, canon_held, consumed)

        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and id(node) not in consumed
            and cls is not None
        ):
            attr = _self_attr(node)
            if attr is not None:
                self._check_read(module, cls, attr, node, held)

        for child in ast.iter_child_nodes(node):
            self._visit(module, cls, key, child, held, canon_held, consumed)

    # .. individual checks ................................................

    def _check_mutation_target(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        key: tuple[str, str] | None,
        target: ast.expr,
        held: dict[str, str],
        consumed: set[int],
    ) -> None:
        if cls is None:
            return
        attr, nodes = _mutation_root(target)
        if attr is None:
            return
        for sub in nodes:
            consumed.add(id(sub))
            for inner in ast.walk(sub):
                if _self_attr(inner) == attr:
                    consumed.add(id(inner))
        self._report_mutation(
            module, cls, attr, target, held,
            in_init=key is not None and key[1] == "__init__",
            rebind=_self_attr(target) is not None,
        )

    def _report_mutation(
        self,
        module: ModuleInfo,
        cls: ClassInfo,
        attr: str,
        node: ast.AST,
        held: dict[str, str],
        *,
        in_init: bool = False,
        rebind: bool = False,
    ) -> None:
        spec = cls.guards.get(attr)
        if spec is None:
            return
        if spec.mode == "atomic":
            return
        if spec.mode == "frozen":
            # Frozen guards the *binding* only: a method call or item
            # write goes to the referenced object, whose thread-safety
            # is its own contract.
            if rebind and not in_init:
                _emit(module, "RACE001",
                      f"{cls.name}.{attr} is frozen (assign only in __init__)",
                      _span(module, node))
            return
        if in_init:
            # Construction is single-threaded: guards are vacuous.
            return
        if held.get(spec.lock or "") != "exclusive":
            _emit(module, "RACE001",
                  f"mutation of {cls.name}.{attr} without holding "
                  f"{spec.lock!r} exclusively",
                  _span(module, node))

    def _check_read(
        self,
        module: ModuleInfo,
        cls: ClassInfo,
        attr: str,
        node: ast.AST,
        held: dict[str, str],
    ) -> None:
        spec = cls.guards.get(attr)
        if spec is None or spec.mode != "full":
            return
        if spec.lock not in held:
            _emit(module, "RACE002",
                  f"read of {cls.name}.{attr} without holding {spec.lock!r} "
                  "(guard mode 'full': reads need the lock too)",
                  _span(module, node))

    def _check_call(
        self,
        module: ModuleInfo,
        cls: ClassInfo | None,
        key: tuple[str, str] | None,
        call: ast.Call,
        held: dict[str, str],
        canon_held: tuple[str, ...],
        consumed: set[int],
    ) -> None:
        # Mutating container method on a guarded attribute?
        if cls is not None and isinstance(call.func, ast.Attribute):
            if call.func.attr in MUTATOR_METHODS:
                attr, nodes = _mutation_root(call.func.value)
                if attr is not None and attr in cls.guards:
                    for sub in nodes:
                        consumed.add(id(sub))
                        for inner in ast.walk(sub):
                            if _self_attr(inner) == attr:
                                consumed.add(id(inner))
                    self._report_mutation(
                        module, cls, attr, call, held,
                        in_init=key is not None and key[1] == "__init__",
                    )

        target = self._resolve_target(call, cls)
        if target is None:
            return
        owner, name = target
        info = owner.methods[name]

        # RACE003: the _locked / @guarded_by contract at the callsite.
        required = info.required
        if not required and name.endswith("_locked"):
            required = tuple(owner.locks) if len(owner.locks) == 1 else ()
        for lock in required:
            canon = owner.canon(lock)
            satisfied = (
                (owner is cls and held.get(lock) == "exclusive")
                or canon in canon_held
            )
            if not satisfied:
                enclosing = ""
                if key is not None:
                    enclosing = f" (in {key[0]}.{key[1]})"
                _emit(module, "RACE003",
                      f"call of {owner.name}.{name} requires {lock!r} held "
                      f"exclusively by the caller{enclosing}",
                      _span(module, call))

        # Lock-order bookkeeping: remember the call for the fixpoint.
        if key is not None:
            self.call_graph[key].add((owner.name, name))
            if canon_held:
                self.calls_under_hold.append(
                    (canon_held, owner.name, name, module, _span(module, call))
                )
        # A provider called outside `with` (rare) still acquires.
        if info.provides is not None and canon_held and key is not None:
            pass  # the with-handler records real acquisitions

    def _check_then_act(
        self,
        module: ModuleInfo,
        cls: ClassInfo,
        node: ast.If,
        held: dict[str, str],
        consumed: set[int],
    ) -> None:
        """RACE004: test reads guarded state unlocked, body mutates it."""
        for attr, spec in cls.guards.items():
            if spec.mode in ("frozen", "atomic") or spec.lock is None:
                continue
            if held.get(spec.lock) == "exclusive":
                continue
            test_reads = [
                sub for sub in ast.walk(node.test) if _self_attr(sub) == attr
            ]
            if not test_reads:
                continue
            mutation = self._find_mutation(node.body, attr)
            if mutation is None:
                continue
            if self._double_checked(node.body, cls, attr, spec.lock):
                # Double-checked locking: the unguarded outer read is the
                # deliberate fast path — exempt it from RACE002 too.
                for read in test_reads:
                    consumed.add(id(read))
                continue
            _emit(module, "RACE004",
                  f"check-then-act on {cls.name}.{attr}: tested without "
                  f"{spec.lock!r} held, then mutated — the state can change "
                  "between the check and the act",
                  _span(module, node))
            for read in test_reads:
                consumed.add(id(read))

    def _find_mutation(self, body: Sequence[ast.stmt], attr: str) -> ast.AST | None:
        for statement in body:
            for sub in ast.walk(statement):
                if isinstance(sub, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign)
                        else [sub.target] if isinstance(sub, ast.AugAssign)
                        else sub.targets
                    )
                    for target in targets:
                        root, _ = _mutation_root(target)
                        if root == attr:
                            return sub
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in MUTATOR_METHODS
                ):
                    root, _ = _mutation_root(sub.func.value)
                    if root == attr:
                        return sub
        return None

    def _double_checked(
        self, body: Sequence[ast.stmt], cls: ClassInfo, attr: str, lock: str
    ) -> bool:
        """True when the body re-checks the attribute under the lock
        (double-checked locking — the mutation is safe)."""
        for statement in body:
            for sub in ast.walk(statement):
                if not isinstance(sub, ast.With):
                    continue
                acquires = [
                    _resolve_self_acquire(item.context_expr, cls)
                    for item in sub.items
                ]
                if not any(a is not None and a[0] == lock for a in acquires):
                    continue
                for inner in sub.body:
                    for candidate in ast.walk(inner):
                        if isinstance(candidate, ast.If) and any(
                            _self_attr(read) == attr
                            for read in ast.walk(candidate.test)
                        ):
                            return True
        return False

    # .. module-level state (RACE005) .....................................

    def _check_module_state(self, module: ModuleInfo) -> None:
        parts = Path(module.path).parts
        if not any(pkg in parts for pkg in SHARED_STATE_PACKAGES):
            return
        for node in module.tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            if isinstance(value, (ast.List, ast.Dict, ast.Set,
                                  ast.ListComp, ast.DictComp, ast.SetComp)):
                mutable = True
            elif isinstance(value, ast.Call):
                name = _call_name(value.func)
                mutable = name in MUTABLE_CONSTRUCTORS
            else:
                mutable = False
            if not mutable:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names == ["__all__"]:
                continue
            _emit(module, "RACE005",
                  f"module-level mutable container "
                  f"{', '.join(names) or '<target>'} in a shared module — "
                  "every request thread sees it; guard it in a class or "
                  "make it immutable",
                  _span(module, node))

    # .. lock-order closure (RACE007) .....................................

    def _record_acquire(
        self,
        module: ModuleInfo,
        key: tuple[str, str] | None,
        acq: _Acquire,
        canon_held: tuple[str, ...],
        node: ast.AST,
    ) -> None:
        if acq.kind == "cond":
            return  # the RWLock is implemented on a Condition
        if key is not None:
            self.summaries.setdefault(key, set()).add(acq.canon)
        for held in canon_held:
            if self.lock_kinds.get(held) == "cond":
                continue
            if held == acq.canon:
                if acq.kind in ("rwlock", "rlock"):
                    continue  # reentrant: a self-edge is not a deadlock
            self.order_edges.setdefault(
                (held, acq.canon), (module, _span(module, node))
            )

    def _propagate_summaries(self) -> None:
        """Fixpoint: a method may acquire whatever its callees acquire."""
        changed = True
        while changed:
            changed = False
            for caller, callees in self.call_graph.items():
                acc = self.summaries.setdefault(caller, set())
                before = len(acc)
                for callee in callees:
                    acc |= self.summaries.get(callee, set())
                if len(acc) != before:
                    changed = True
        for canon_held, owner, name, module, span in self.calls_under_hold:
            acquired = self.summaries.get((owner, name), set())
            for acq_canon in acquired:
                kind = self.lock_kinds.get(acq_canon, "mutex")
                if kind == "cond":
                    continue
                for held in canon_held:
                    if self.lock_kinds.get(held) == "cond":
                        continue
                    if held == acq_canon and kind in ("rwlock", "rlock"):
                        continue
                    self.order_edges.setdefault(
                        (held, acq_canon), (module, span)
                    )

    def _report_cycles(self) -> None:
        graph: dict[str, set[str]] = {}
        for held, acquired in self.order_edges:
            graph.setdefault(held, set()).add(acquired)

        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            signature = frozenset(cycle)
            if signature in reported:
                continue
            reported.add(signature)
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            module, span = self.order_edges.get(
                first_edge, (self.modules[0], Span(0, 1, 1))
            )
            chain = " -> ".join([*cycle, cycle[0]])
            _emit(module, "RACE007",
                  f"lock-order cycle: {chain} — these locks are acquired "
                  "in opposite orders on different code paths and can "
                  "deadlock",
                  span)

    @staticmethod
    def _find_cycle(graph: dict[str, set[str]], start: str) -> list[str] | None:
        """A cycle through ``start`` (DFS), as an ordered node list."""
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    return path
                if succ in seen:
                    continue
                seen.add(succ)
                stack.append((succ, path + [succ]))
        return None

    # -- results ---------------------------------------------------------

    def diagnostics(self) -> list[tuple[str, Diagnostic]]:
        """Every finding as ``(path, diagnostic)``, in file/line order."""
        results: list[tuple[str, Diagnostic]] = []
        for module in self.modules:
            ordered = sorted(
                module.diagnostics,
                key=lambda d: (d.span.line, d.span.column) if d.span else (0, 0),
            )
            results.extend((module.path, diag) for diag in ordered)
        return results


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

#: Packages (relative to the ``repro`` package root) analyzed by default.
DEFAULT_PACKAGES = (
    "graphdb",
    "server",
    "obs",
    "archive",
    "concurrency",
    "columnar",
    "delta",
)

#: Individual extra modules analyzed by default.
DEFAULT_EXTRA_FILES = ("cypher/lru.py",)


def default_targets() -> list[Path]:
    """The source files ``repro check-concurrency`` analyzes by default."""
    import repro

    root = Path(repro.__file__).parent
    files: list[Path] = []
    for package in DEFAULT_PACKAGES:
        files.extend(sorted((root / package).glob("*.py")))
    for extra in DEFAULT_EXTRA_FILES:
        files.append(root / extra)
    return [path for path in files if path.is_file()]


def analyze_paths(paths: Sequence[Path]) -> list[tuple[str, Diagnostic]]:
    """Analyze ``paths`` together (one order graph) and return findings."""
    analyzer = ConcurrencyAnalyzer()
    for path in paths:
        analyzer.add_file(path)
    analyzer.run()
    return analyzer.diagnostics()


def analyze_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Analyze one source string (the unit-test entry point)."""
    analyzer = ConcurrencyAnalyzer()
    analyzer.add_source(source, path)
    analyzer.run()
    return [diag for _, diag in analyzer.diagnostics()]


def _is_self_call(expr: ast.Call) -> bool:
    return (
        isinstance(expr.func, ast.Attribute) and _is_self(expr.func.value)
    )
