"""Configuration of the synthetic Internet generator.

The defaults are calibrated against the paper's 2024 measurements (see
DESIGN.md, "Calibration targets").  ``scale`` multiplies the entity
counts so tests can run on a small world and benchmarks on a larger one
without touching the distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WorldConfig:
    """Knobs of the synthetic world.

    Counts are at scale=1.0; pass e.g. ``scale=0.2`` for a small test
    world.  Probabilities are absolute and unaffected by scale.
    """

    seed: int = 20240501
    scale: float = 1.0

    # Topology ---------------------------------------------------------
    n_ases: int = 1200
    n_tier1: int = 12
    n_ixps: int = 40
    n_collectors: int = 6
    n_facilities: int = 60
    multi_as_org_fraction: float = 0.06  # orgs holding several ASes (siblings)

    # Addressing -------------------------------------------------------
    mean_prefixes_per_as: float = 4.0
    ipv6_prefix_fraction: float = 0.3
    moas_fraction: float = 0.01  # prefixes with multiple origin ASes
    anycast_fraction: float = 0.04

    # RPKI: per-category probability that an AS registers ROAs for its
    # prefixes.  Calibrated to Table 2 / Section 4.1.4 of the paper.
    rpki_propensity: dict[str, float] = field(
        default_factory=lambda: {
            "Content Delivery Network": 0.82,
            "DDoS Mitigation": 0.76,
            "Cloud": 0.70,
            "DNS Provider": 0.62,
            "Tier1": 0.65,
            "ISP": 0.55,
            "Hosting": 0.62,
            "Academic": 0.16,
            "Government": 0.21,
            "Enterprise": 0.40,
        }
    )
    # Fraction of announced prefix/origin pairs that are RPKI invalid,
    # and the share of those invalids caused by a too-small maxLength.
    rpki_invalid_fraction: float = 0.0012
    rpki_invalid_maxlen_share: float = 0.75

    # IRR --------------------------------------------------------------
    irr_coverage: float = 0.6

    # DNS / web --------------------------------------------------------
    n_domains: int = 20000
    top100k_equivalent: float = 0.1  # top/bottom band size as list fraction
    com_net_org_fraction: float = 0.49  # Table 3 "Coverage"
    discarded_fraction: float = 0.10  # SLDs without in-zone glue data
    in_zone_glue_fraction: float = 0.76
    # NS-count mix for .com/.net/.org SLDs (Table 3 2024 row):
    # not meet (1 NS) / meet (2 NS) / exceed (>2 NS), relative to kept SLDs.
    ns_not_meet: float = 0.045
    ns_meet: float = 0.20
    # remainder exceeds requirements
    n_dns_providers: int = 30
    self_hosted_dns_fraction: float = 0.12
    n_nameserver_slash24s_per_provider: int = 2
    cname_fraction: float = 0.12
    # Cohort hosting mix: probability that a domain in the top / middle /
    # bottom rank band is hosted on a CDN.
    cdn_hosted_top: float = 0.45
    cdn_hosted_middle: float = 0.12
    cdn_hosted_bottom: float = 0.18

    # Rankings ----------------------------------------------------------
    umbrella_overlap: float = 0.6  # Cisco Umbrella coverage of Tranco names
    cloudflare_top_fraction: float = 0.05

    # Atlas --------------------------------------------------------------
    n_atlas_probes: int = 300
    n_atlas_measurements: int = 120

    # Injected data error (Section 6.1 dataset-comparison lesson):
    # BGPKIT pfx2asn reports a wrong origin for this fraction of IPv6
    # prefixes, which the comparison study must detect against IHR ROV.
    bgpkit_ipv6_error_fraction: float = 0.01

    def scaled(self, count: int | float) -> int:
        """Scale an entity count, keeping at least 1."""
        return max(1, int(round(count * self.scale)))

    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """A small world for unit tests (builds in well under a second)."""
        return cls(seed=seed, scale=0.1, n_domains=2000, n_ases=250)

    @classmethod
    def medium(cls, seed: int = 20240501) -> "WorldConfig":
        """A medium world for integration tests and fast benches."""
        return cls(seed=seed, scale=0.5, n_domains=8000, n_ases=700)

    @classmethod
    def year2015(cls, seed: int = 20150601, scale: float = 0.5,
                 n_domains: int = 8000, n_ases: int = 700) -> "WorldConfig":
        """A 2015-era Internet, for the paper's temporal contrast.

        Calibrated to the original RiPKI and DNS Robustness numbers:
        near-zero RPKI deployment (6% coverage overall, 0.9% for CDNs),
        the old nameserver-count mix (meet ≈ 39%, exceed ≈ 20%, not
        meet ≈ 28%), and less DNS/web consolidation.
        """
        config = cls(seed=seed, scale=scale, n_domains=n_domains, n_ases=n_ases)
        config.rpki_propensity = {
            "Content Delivery Network": 0.01,
            "DDoS Mitigation": 0.08,
            "Cloud": 0.05,
            "DNS Provider": 0.06,
            "Tier1": 0.10,
            "ISP": 0.06,
            "Hosting": 0.06,
            "Academic": 0.03,
            "Government": 0.03,
            "Enterprise": 0.04,
        }
        config.rpki_invalid_fraction = 0.0009  # paper 2015: 0.09%
        # 2015 NS-count mix (relative to kept SLDs): not meet ~31%,
        # meet ~44%, remainder exceeds -- matching the ~28/39/20 split
        # of the original study after the ~13% discarded share.
        config.ns_not_meet = 0.31
        config.ns_meet = 0.44
        config.discarded_fraction = 0.135
        # Less consolidation and far less CDN hosting.
        config.cdn_hosted_top = 0.12
        config.cdn_hosted_middle = 0.03
        config.cdn_hosted_bottom = 0.03
        config.self_hosted_dns_fraction = 0.30
        config.anycast_fraction = 0.01
        return config
