"""A simulated iterative DNS resolver over the synthetic zone data.

Validates that the world's delegation chains actually work the way DNS
does: to resolve a name, walk the zone hierarchy (TLD, then registrable
domain), obtain the zone's nameserver set, and — crucially — obtain an
*address* for at least one nameserver.  In-bailiwick nameservers come
with glue; out-of-bailiwick nameservers must themselves be resolved
first, which is exactly where circular dependencies and missing glue
bite real operators (and what the SPoF study's third-party chains are
made of).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nettypes.dns import is_subdomain_of, public_suffix, registered_domain
from repro.simnet.dns import zone_nameservers
from repro.simnet.world import World


@dataclass
class Resolution:
    """Outcome of one resolution."""

    name: str
    ips: list[str] = field(default_factory=list)
    zones_visited: list[str] = field(default_factory=list)
    nameservers_used: list[str] = field(default_factory=list)
    failure: str | None = None  # 'nxdomain' | 'no-glue' | 'cycle' | 'depth'

    @property
    def ok(self) -> bool:
        return self.failure is None and bool(self.ips)


class SimResolver:
    """Iterative resolution over the world's zone cuts."""

    def __init__(self, world: World, max_depth: int = 8):
        self._world = world
        self._zones = zone_nameservers(world)
        self._max_depth = max_depth

    def resolve(self, name: str, _visiting: frozenset[str] = frozenset(),
                _depth: int = 0) -> Resolution:
        """Resolve a hostname to its addresses, walking delegations."""
        result = Resolution(name=name)
        if _depth > self._max_depth:
            result.failure = "depth"
            return result
        if name in _visiting:
            result.failure = "cycle"
            return result
        _visiting = _visiting | {name}

        # The zone holding this name: its registrable domain, falling
        # back to the TLD (for names like nic.<tld> hosts).
        registrable = registered_domain(name)
        suffix = public_suffix(name)
        zone = None
        for candidate in (registrable, suffix):
            if candidate and candidate in self._zones:
                zone = candidate
                break
        if zone is None:
            result.failure = "nxdomain"
            return result

        # Walk the hierarchy: TLD first, then the zone itself.
        if suffix != zone and suffix in self._zones:
            result.zones_visited.append(suffix)
        result.zones_visited.append(zone)

        # Obtain an address for one of the zone's nameservers.
        reachable_ns = None
        for ns_name in self._zones[zone]:
            ips = self._nameserver_address(ns_name, zone, _visiting, _depth)
            if ips:
                reachable_ns = ns_name
                result.nameservers_used.append(ns_name)
                break
        if reachable_ns is None:
            result.failure = "no-glue"
            return result

        # Finally, the answer itself.
        answer = self._answer(name)
        if answer is None:
            result.failure = "nxdomain"
            return result
        result.ips = answer
        return result

    def _nameserver_address(
        self, ns_name: str, zone: str, visiting: frozenset[str], depth: int
    ) -> list[str]:
        info = self._world.nameservers.get(ns_name)
        if info is None:
            return []
        if is_subdomain_of(ns_name, zone):
            return info.ips  # glue record travels with the delegation
        # Out-of-bailiwick: the resolver must resolve the NS name itself.
        sub = self.resolve(ns_name, visiting, depth + 1)
        return sub.ips if sub.ok else []

    def _answer(self, name: str) -> list[str] | None:
        domain = self._world.domains.get(name)
        if domain is not None:
            return list(domain.ips)
        ns_info = self._world.nameservers.get(name)
        if ns_info is not None:
            return list(ns_info.ips)
        return None


def resolution_report(world: World, sample: int | None = None) -> dict[str, int]:
    """Resolve (a sample of) every ranked domain; count outcomes."""
    resolver = SimResolver(world)
    names = world.tranco[:sample] if sample else world.tranco
    outcomes: dict[str, int] = {"ok": 0}
    for name in names:
        result = resolver.resolve(name)
        if result.ok:
            outcomes["ok"] += 1
        else:
            outcomes[result.failure or "unknown"] = (
                outcomes.get(result.failure or "unknown", 0) + 1
            )
    return outcomes
