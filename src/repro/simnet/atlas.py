"""RIPE Atlas probes and measurements.

Probes sit in eyeball ASes with an assigned IP inside one of the AS's
announced prefixes; measurements target the hostnames and addresses of
popular domains — the TARGET relationships of the Figure 4 sneak peek.
"""

from __future__ import annotations

import random

from repro.simnet.addressing import host_ip
from repro.simnet.world import AtlasMeasurementInfo, AtlasProbeInfo, World

_PROBE_TAGS = ["system-ipv4-works", "home", "datacentre", "dual-stack", "nat"]


def build_atlas(world: World, rng: random.Random) -> None:
    """Create probes and measurements."""
    config = world.config
    n_probes = config.scaled(config.n_atlas_probes)
    n_measurements = config.scaled(config.n_atlas_measurements)
    asns = sorted(world.ases)
    probe_asns = [
        asn for asn in asns if world.ases[asn].category in ("ISP", "Hosting", "Academic")
    ] or asns
    for probe_id in range(1, n_probes + 1):
        asn = rng.choice(probe_asns)
        v4 = [
            p.prefix
            for p in world.prefixes.values()
            if p.af == 4 and p.origins[0] == asn
        ]
        if not v4:
            continue
        world.atlas_probes[probe_id] = AtlasProbeInfo(
            probe_id=probe_id,
            asn=asn,
            country=world.ases[asn].country,
            ip=host_ip(rng, rng.choice(v4)),
            status="Connected" if rng.random() < 0.85 else "Disconnected",
            tags=rng.sample(_PROBE_TAGS, rng.randint(1, 3)),
        )
    probe_ids = sorted(world.atlas_probes)
    if not probe_ids:
        return
    top = world.tranco[: max(10, len(world.tranco) // 20)]
    for measurement_id in range(1, n_measurements + 1):
        domain = world.domains[rng.choice(top)]
        target_is_ip = rng.random() < 0.4 and bool(domain.ips)
        target = rng.choice(domain.ips) if target_is_ip else domain.hostname
        world.atlas_measurements[10_000_000 + measurement_id] = AtlasMeasurementInfo(
            measurement_id=10_000_000 + measurement_id,
            kind=rng.choice(["ping", "ping", "traceroute"]),
            target=target,
            target_is_ip=target_is_ip,
            af=4,
            probe_ids=sorted(
                rng.sample(probe_ids, min(len(probe_ids), rng.randint(3, 15)))
            ),
        )
