"""Population data: World Bank country estimates and APNIC-style
per-AS Internet population shares.

Within each country the eyeball ASes split the user population with a
heavy-tailed market share, mirroring the APNIC "AS population estimate"
dataset (the POPULATION relationships of the ontology).
"""

from __future__ import annotations

import random

from repro.nettypes.countries import iter_countries
from repro.simnet.world import World

# Rough relative population weights so country estimates look sane.
_POPULATION_BASE = {
    "CN": 1_410, "IN": 1_390, "US": 333, "ID": 275, "PK": 230, "BR": 214,
    "NG": 216, "BD": 170, "RU": 146, "MX": 128, "JP": 125, "PH": 113,
    "VN": 98, "EG": 104, "TR": 85, "IR": 86, "DE": 83, "TH": 70, "GB": 67,
    "FR": 65, "IT": 59, "ZA": 60, "KR": 52, "CO": 51, "ES": 47, "AR": 46,
    "UA": 41, "CA": 38, "PL": 38, "SA": 35, "MY": 33, "AU": 26, "TW": 24,
    "CL": 19, "NL": 18, "EC": 18, "KE": 54,
}


def build_population(world: World, rng: random.Random) -> None:
    """Create country populations and per-AS user shares."""
    for country in iter_countries():
        base = _POPULATION_BASE.get(country.alpha2, rng.randint(4, 40))
        world.country_population[country.alpha2] = base * 1_000_000 + rng.randint(
            0, 900_000
        )
    by_country: dict[str, list[int]] = {}
    for asn, info in world.ases.items():
        if info.category == "ISP":
            by_country.setdefault(info.country, []).append(asn)
    for country, asns in by_country.items():
        asns.sort()
        weights = [1.0 / (index + 1) ** 1.3 for index in range(len(asns))]
        total = sum(weights)
        for asn, weight in zip(asns, weights, strict=True):
            share = round(100.0 * weight / total, 2)
            if share > 0:
                world.as_population[(country, asn)] = share
