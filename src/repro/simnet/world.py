"""The synthetic world model and its build orchestrator.

:func:`build_world` assembles the world in dependency order: topology
(ASes, organizations, countries) → addressing (prefix allocations,
delegated files) → routing (originations, collectors) → RPKI/IRR →
IXPs/PeeringDB → DNS and web hosting (domains, rankings, nameservers,
resolutions) → Atlas → population estimates.  Everything is derived
from one seeded :class:`random.Random`, so the same config always
produces the identical world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simnet.config import WorldConfig


@dataclass
class OrgInfo:
    """An organization holding one or more ASes."""

    name: str
    country: str
    asns: list[int] = field(default_factory=list)
    peeringdb_org_id: int | None = None
    website: str | None = None


@dataclass
class ASInfo:
    """One autonomous system."""

    asn: int
    name: str
    org_name: str
    country: str
    category: str  # primary BGP.Tools-style tag
    extra_tags: list[str] = field(default_factory=list)
    asdb_categories: list[str] = field(default_factory=list)
    providers: list[int] = field(default_factory=list)
    peers: list[int] = field(default_factory=list)
    customers: list[int] = field(default_factory=list)
    cone_size: int = 1
    rank: int = 0  # CAIDA ASRank position (1 = largest cone)
    hegemony: float = 0.0
    rpki_propensity: float = 0.5
    peeringdb_net_id: int | None = None
    opaque_id: str = ""
    rir: str = ""

    @property
    def tags(self) -> list[str]:
        return [self.category, *self.extra_tags]


@dataclass
class ROA:
    """A Route Origin Authorization."""

    asn: int
    prefix: str
    max_length: int


@dataclass
class PrefixInfo:
    """One announced (routed) prefix."""

    prefix: str
    af: int
    origins: list[int]
    allocated_block: str  # covering RIR allocation
    opaque_id: str
    rir: str
    country: str
    anycast: bool = False
    roas: list[ROA] = field(default_factory=list)
    rov_status: str = "NotFound"  # Valid | Invalid | Invalid,more-specific | NotFound
    irr_status: str | None = None  # Valid | Invalid | None (not registered)


@dataclass
class IXPInfo:
    """One Internet Exchange Point."""

    name: str
    country: str
    peeringdb_ix_id: int
    caida_ix_id: int
    members: list[int] = field(default_factory=list)
    facility: str | None = None
    website: str | None = None


@dataclass
class NameServerInfo:
    """One authoritative nameserver hostname."""

    name: str
    ips: list[str]
    asn: int
    provider: str  # provider key or 'self:<domain>'


@dataclass
class DNSProvider:
    """A managed-DNS provider."""

    name: str
    domain: str  # the provider's own registrable domain
    asn: int
    mode: str  # 'shared_set' | 'per_customer'
    ns_pool: list[str] = field(default_factory=list)
    outsourced_to: str | None = None  # provider key its own domain uses


@dataclass
class TLDInfo:
    """A top-level domain and its registry operator."""

    tld: str
    operator_org: str
    country: str
    nameservers: list[str] = field(default_factory=list)


@dataclass
class DomainInfo:
    """One registrable domain of the ranked list."""

    name: str
    tld: str
    rank: int  # Tranco rank, 1-based
    umbrella_rank: int | None
    hostname: str  # the resolvable apex FQDN
    ips: list[str]
    hosting_asn: int
    cdn_hosted: bool
    nameservers: list[str]
    ns_provider: str
    has_glue: bool  # glue data present in zone files (else "discarded")
    in_zone_glue: bool
    cname_target: str | None = None
    registered_country: str = "US"
    queried_from_asns: list[int] = field(default_factory=list)


@dataclass
class AtlasProbeInfo:
    """One RIPE Atlas probe."""

    probe_id: int
    asn: int
    country: str
    ip: str
    status: str = "Connected"
    tags: list[str] = field(default_factory=list)


@dataclass
class AtlasMeasurementInfo:
    """One RIPE Atlas measurement."""

    measurement_id: int
    kind: str  # 'ping' | 'traceroute'
    target: str  # hostname or IP
    target_is_ip: bool
    af: int
    probe_ids: list[int] = field(default_factory=list)


@dataclass
class World:
    """The complete synthetic Internet."""

    config: WorldConfig
    orgs: dict[str, OrgInfo] = field(default_factory=dict)
    ases: dict[int, ASInfo] = field(default_factory=dict)
    prefixes: dict[str, PrefixInfo] = field(default_factory=dict)
    allocations: list[tuple[str, str, str, str]] = field(default_factory=list)
    # (block, opaque_id, rir, country) RIR allocation blocks
    collectors: list[str] = field(default_factory=list)
    collector_peers: dict[str, list[int]] = field(default_factory=dict)
    ixps: dict[int, IXPInfo] = field(default_factory=dict)  # by peeringdb ix id
    facilities: list[tuple[str, str]] = field(default_factory=list)  # (name, country)
    tlds: dict[str, TLDInfo] = field(default_factory=dict)
    dns_providers: dict[str, DNSProvider] = field(default_factory=dict)
    nameservers: dict[str, NameServerInfo] = field(default_factory=dict)
    domains: dict[str, DomainInfo] = field(default_factory=dict)
    tranco: list[str] = field(default_factory=list)  # domain names by rank
    umbrella: list[str] = field(default_factory=list)
    atlas_probes: dict[int, AtlasProbeInfo] = field(default_factory=dict)
    atlas_measurements: dict[int, AtlasMeasurementInfo] = field(default_factory=dict)
    country_population: dict[str, int] = field(default_factory=dict)
    as_population: dict[tuple[str, int], float] = field(default_factory=dict)
    # (country, asn) -> fraction of the country's users in that AS
    routing: object | None = None  # RoutingState from repro.simnet.bgpsim

    def as_of_ip(self, ip: str) -> int | None:
        """Origin AS of the longest prefix covering ``ip`` (trie-backed)."""
        match = self._trie.longest_match_ip(ip)
        if match is None:
            return None
        return match[1].origins[0]

    def prefix_of_ip(self, ip: str) -> str | None:
        """Longest announced prefix covering ``ip``."""
        match = self._trie.longest_match_ip(ip)
        return None if match is None else match[0]

    def finalize(self) -> None:
        """Build derived lookup structures after generation."""
        from repro.nettypes.prefixtrie import PrefixTrie

        trie = PrefixTrie()
        for info in self.prefixes.values():
            trie.insert(info.prefix, info)
        self._trie = trie


def build_world(config: WorldConfig | None = None) -> World:
    """Generate the full synthetic Internet for a configuration."""
    from repro.simnet import addressing, atlas, dns, ixp, population, routing, rpki, topology

    config = config or WorldConfig()
    rng = random.Random(config.seed)
    world = World(config=config)
    topology.build_topology(world, rng)
    addressing.build_addressing(world, rng)
    routing.build_routing(world, rng)
    rpki.build_rpki(world, rng)
    ixp.build_ixps(world, rng)
    world.finalize()  # DNS hosting picks IPs inside announced prefixes
    dns.build_dns(world, rng)
    atlas.build_atlas(world, rng)
    population.build_population(world, rng)
    return world
