"""Address allocation: RIR blocks, announced prefixes, delegated files.

Every AS receives one IPv4 allocation block (a /16 out of a synthetic
global pool) and, with some probability, an IPv6 /32.  Announced
prefixes are subnets of the allocations, so the refinement pass's
covering-prefix links have real structure to find.  Allocation records
carry opaque IDs, RIR, and country — the NRO delegated files the SPoF
study reads country codes from.
"""

from __future__ import annotations

import ipaddress
import random

from repro.simnet.world import PrefixInfo, World

RIR_BY_REGION = {
    "Americas": "arin",
    "Europe": "ripencc",
    "Asia": "apnic",
    "Oceania": "apnic",
    "Africa": "afrinic",
}
_LACNIC_COUNTRIES = {"BR", "AR", "CL", "CO", "MX"}


def rir_of(country: str) -> str:
    """Map a country to its RIR (approximation adequate for the study)."""
    from repro.nettypes.countries import lookup

    if country in _LACNIC_COUNTRIES:
        return "lacnic"
    try:
        region = lookup(country).region
    except KeyError:
        return "ripencc"
    return RIR_BY_REGION.get(region, "ripencc")


def build_addressing(world: World, rng: random.Random) -> None:
    """Allocate blocks and announced prefixes for every AS."""
    config = world.config
    v4_block = 0  # index over sequential /16s starting at 1.0.0.0
    v6_block = 0  # index over sequential /32s under 2a00::/12-ish pool
    for asn, info in sorted(world.ases.items()):
        info.rir = rir_of(info.country)
        info.opaque_id = f"{info.rir}-{info.org_name.lower().replace(' ', '-')[:24]}"
        # IPv4 allocation: one /16 per AS.
        base = ipaddress.ip_address("1.0.0.0") + v4_block * 65536
        v4_block += 1
        allocation4 = f"{base}/16"
        world.allocations.append((allocation4, info.opaque_id, info.rir, info.country))
        n_prefixes = max(1, int(rng.expovariate(1.0 / config.mean_prefixes_per_as)))
        n_prefixes = min(n_prefixes, 12)
        # Infrastructure networks announce many prefixes; this also keeps
        # their aggregate RPKI coverage close to the per-AS propensity
        # instead of hanging on a single Bernoulli roll.
        if info.category in ("Content Delivery Network", "Cloud", "DNS Provider",
                             "DDoS Mitigation", "Tier1", "Hosting"):
            n_prefixes = max(n_prefixes, 6)
        n_v6 = sum(1 for _ in range(n_prefixes) if rng.random() < config.ipv6_prefix_fraction)
        n_v4 = max(1, n_prefixes - n_v6)
        used_subnets: set[str] = set()
        for _ in range(n_v4):
            length = rng.choice([20, 22, 24, 24])
            subnet_index = rng.randrange(2 ** (length - 16))
            offset = subnet_index * 2 ** (32 - length)
            prefix = f"{base + offset}/{length}"
            if prefix in used_subnets or prefix in world.prefixes:
                continue
            used_subnets.add(prefix)
            world.prefixes[prefix] = PrefixInfo(
                prefix=prefix,
                af=4,
                origins=[asn],
                allocated_block=allocation4,
                opaque_id=info.opaque_id,
                rir=info.rir,
                country=info.country,
            )
        if n_v6:
            base6 = ipaddress.ip_address("2a00::") + (v6_block << 96)
            v6_block += 1
            allocation6 = f"{base6}/32"
            world.allocations.append(
                (allocation6, info.opaque_id, info.rir, info.country)
            )
            for _ in range(n_v6):
                length = rng.choice([32, 40, 48, 48])
                if length == 32:
                    prefix = allocation6
                else:
                    subnet_index = rng.randrange(2 ** (length - 32))
                    offset = subnet_index * 2 ** (128 - length)
                    prefix = f"{base6 + offset}/{length}"
                if prefix in used_subnets or prefix in world.prefixes:
                    continue
                used_subnets.add(prefix)
                world.prefixes[prefix] = PrefixInfo(
                    prefix=prefix,
                    af=6,
                    origins=[asn],
                    allocated_block=allocation6,
                    opaque_id=info.opaque_id,
                    rir=info.rir,
                    country=info.country,
                )


def host_ip(rng: random.Random, prefix: str, index: int | None = None) -> str:
    """Return one host address inside a prefix.

    With ``index`` the choice is deterministic (used for nameserver IPs
    that several datasets must agree on); otherwise random.
    """
    network = ipaddress.ip_network(prefix)
    size = network.num_addresses
    offset = (index if index is not None else rng.randrange(1, max(2, min(size - 1, 4096))))
    offset = 1 + (offset % max(1, min(size - 2, 65000)))
    return str(network.network_address + offset)
