"""AS-level topology: ASes, organizations, business categories, AS
relationships, customer cones, ASRank, and AS hegemony.

The topology is a three-layer transit hierarchy (tier-1 clique, transit
providers, edge networks) with lateral peering, matching the structure
CAIDA's ASRank and IHR's hegemony are computed from in the real
datasets.
"""

from __future__ import annotations

import random

from repro.analytics import transitive_closure
from repro.simnet.world import ASInfo, OrgInfo, World

# Country weights approximate AS registration counts per economy.
COUNTRY_WEIGHTS = [
    ("US", 0.24), ("BR", 0.06), ("RU", 0.06), ("GB", 0.05), ("DE", 0.05),
    ("CN", 0.04), ("IN", 0.04), ("FR", 0.03), ("JP", 0.03), ("NL", 0.03),
    ("AU", 0.025), ("CA", 0.025), ("IT", 0.02), ("ES", 0.02), ("PL", 0.02),
    ("UA", 0.02), ("ID", 0.02), ("KR", 0.015), ("SE", 0.015), ("CH", 0.015),
    ("TR", 0.015), ("ZA", 0.01), ("AR", 0.01), ("MX", 0.01), ("SG", 0.01),
    ("HK", 0.01), ("TW", 0.01), ("VN", 0.01), ("NG", 0.01), ("EG", 0.01),
    ("RO", 0.01), ("CZ", 0.01), ("AT", 0.01), ("BE", 0.01), ("DK", 0.01),
    ("NO", 0.01), ("FI", 0.01), ("PT", 0.01), ("GR", 0.01), ("IE", 0.01),
    ("NZ", 0.01), ("CL", 0.01), ("CO", 0.01), ("TH", 0.01), ("MY", 0.01),
    ("PH", 0.01), ("IL", 0.01), ("SA", 0.01), ("AE", 0.01), ("KE", 0.01),
]

# (category, weight); Tier1 is assigned separately to the first ASes.
CATEGORY_WEIGHTS = [
    ("ISP", 0.44),
    ("Hosting", 0.16),
    ("Enterprise", 0.14),
    ("Academic", 0.07),
    ("Government", 0.05),
    ("Cloud", 0.045),
    ("Content Delivery Network", 0.03),
    ("DNS Provider", 0.03),
    ("DDoS Mitigation", 0.015),
    ("Transit", 0.02),
]

# Stanford ASdb layer-1 category per BGP.Tools-style category.
ASDB_MAP = {
    "ISP": ["Computer and Information Technology", "Internet Service Provider (ISP)"],
    "Hosting": ["Computer and Information Technology", "Hosting and Cloud Provider"],
    "Enterprise": ["Retail Stores, Wholesale, and E-commerce Sites"],
    "Academic": ["Education and Research"],
    "Government": ["Government and Public Administration"],
    "Cloud": ["Computer and Information Technology", "Hosting and Cloud Provider"],
    "Content Delivery Network": [
        "Computer and Information Technology",
        "Media, Publishing, and Broadcasting",
    ],
    "DNS Provider": ["Computer and Information Technology"],
    "DDoS Mitigation": ["Computer and Information Technology"],
    "Transit": ["Computer and Information Technology", "Internet Service Provider (ISP)"],
    "Tier1": ["Computer and Information Technology", "Internet Service Provider (ISP)"],
}

_SYLLABLES = [
    "net", "tel", "com", "link", "data", "core", "edge", "nova", "gig",
    "byte", "peer", "route", "cloud", "fiber", "wave", "star", "metro",
    "global", "swift", "zen", "apex", "omni", "vertex", "lumen", "pulse",
]


def weighted_choice(rng: random.Random, weights: list[tuple[str, float]]) -> str:
    """Pick a key from (key, weight) pairs."""
    total = sum(weight for _, weight in weights)
    point = rng.random() * total
    for key, weight in weights:
        point -= weight
        if point <= 0:
            return key
    return weights[-1][0]


def _as_name(rng: random.Random, category: str, country: str, asn: int) -> str:
    stem = rng.choice(_SYLLABLES) + rng.choice(_SYLLABLES)
    suffix = {
        "Content Delivery Network": "CDN",
        "DNS Provider": "DNS",
        "DDoS Mitigation": "SHIELD",
        "Cloud": "CLOUD",
        "Academic": "EDU",
        "Government": "GOV",
        "Tier1": "BACKBONE",
    }.get(category, "NET")
    return f"{stem.upper()}-{suffix}-{country}"


def build_topology(world: World, rng: random.Random) -> None:
    """Populate ``world.ases`` and ``world.orgs``."""
    config = world.config
    n_ases = config.n_ases
    asns = sorted(rng.sample(range(1, 400000), n_ases))
    categories: list[str] = []
    for index in range(n_ases):
        if index < config.n_tier1:
            categories.append("Tier1")
        else:
            categories.append(weighted_choice(rng, CATEGORY_WEIGHTS))

    for index, asn in enumerate(asns):
        category = categories[index]
        country = weighted_choice(rng, COUNTRY_WEIGHTS)
        if category == "Tier1":
            country = rng.choice(["US", "US", "US", "JP", "DE", "FR", "SE", "IT"])
        # The infrastructure heavyweights that the SPoF study surfaces
        # are predominantly US-registered, as in the real Internet.
        if category in ("Content Delivery Network", "DNS Provider", "Cloud",
                        "DDoS Mitigation") and rng.random() < 0.7:
            country = "US"
        name = _as_name(rng, category, country, asn)
        info = ASInfo(
            asn=asn,
            name=name,
            org_name=f"{name.title().replace('-', ' ')} LLC",
            country=country,
            category=category,
            asdb_categories=list(ASDB_MAP[category]),
            rpki_propensity=config.rpki_propensity.get(
                category, config.rpki_propensity.get("Enterprise", 0.4)
            ),
        )
        if category == "Tier1":
            info.extra_tags.append("Tier1")
            info.rpki_propensity = config.rpki_propensity["Tier1"]
        if category == "ISP" and rng.random() < 0.6:
            info.extra_tags.append("Eyeball")
        world.ases[asn] = info

    _build_orgs(world, rng)
    _build_as_graph(world, rng, asns, categories)
    _compute_cones_and_ranks(world, asns)


def _build_orgs(world: World, rng: random.Random) -> None:
    """One org per AS, then merge a fraction into multi-AS (sibling) orgs."""
    config = world.config
    for info in world.ases.values():
        org = world.orgs.setdefault(
            info.org_name, OrgInfo(name=info.org_name, country=info.country)
        )
        org.asns.append(info.asn)
        org.website = f"https://www.{info.name.lower().replace('-', '')}.example"
    # Sibling groups: a few orgs absorb the ASes of 1-3 smaller orgs.
    asns = list(world.ases)
    n_groups = max(1, int(len(asns) * config.multi_as_org_fraction / 2))
    for _ in range(n_groups):
        absorber_asn, absorbed_asn = rng.sample(asns, 2)
        absorber = world.ases[absorber_asn]
        absorbed = world.ases[absorbed_asn]
        if absorber.org_name == absorbed.org_name:
            continue
        old_org = world.orgs.get(absorbed.org_name)
        new_org = world.orgs[absorber.org_name]
        if old_org is None or len(old_org.asns) != 1:
            continue
        del world.orgs[absorbed.org_name]
        absorbed.org_name = absorber.org_name
        new_org.asns.append(absorbed_asn)


def _build_as_graph(
    world: World, rng: random.Random, asns: list[int], categories: list[str]
) -> None:
    """Tier-1 clique + provider hierarchy + lateral peering."""
    tier1 = [
        asn for asn, cat in zip(asns, categories, strict=True) if cat == "Tier1"
    ]
    transits = [
        asn
        for asn, cat in zip(asns, categories, strict=True)
        if cat in ("Transit", "Tier1")
    ]
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            world.ases[a].peers.append(b)
            world.ases[b].peers.append(a)
    for asn, category in zip(asns, categories, strict=True):
        if category == "Tier1":
            continue
        upstream_pool = tier1 if category == "Transit" else transits
        n_providers = 1 + (rng.random() < 0.55) + (rng.random() < 0.2)
        for provider in rng.sample(upstream_pool, min(n_providers, len(upstream_pool))):
            if provider == asn:
                continue
            world.ases[asn].providers.append(provider)
            world.ases[provider].customers.append(asn)
    # Lateral peering between random non-tier1 pairs (IXP-style).
    n_peerings = len(asns) * 2
    for _ in range(n_peerings):
        a, b = rng.sample(asns, 2)
        if (
            b in world.ases[a].peers
            or b in world.ases[a].providers
            or b in world.ases[a].customers
        ):
            continue
        world.ases[a].peers.append(b)
        world.ases[b].peers.append(a)


def _compute_cones_and_ranks(world: World, asns: list[int]) -> None:
    """Customer-cone sizes via transitive closure, ASRank by cone,
    hegemony normalized."""
    cones = transitive_closure(
        {asn: world.ases[asn].customers for asn in asns}, keys=asns
    )
    for asn in asns:
        world.ases[asn].cone_size = len(cones[asn])
    ranked = sorted(asns, key=lambda a: (-world.ases[a].cone_size, a))
    total = len(asns)
    for position, asn in enumerate(ranked, start=1):
        info = world.ases[asn]
        info.rank = position
        info.hegemony = round(info.cone_size / total, 6)
