"""A deterministic synthetic Internet.

The paper builds IYP from 46 live datasets (BGP tables, RPKI
repositories, DNS measurement platforms, PeeringDB...).  Those sources
are unreachable offline, so this package generates a *coherent* synthetic
Internet — AS-level topology, address allocations, BGP routing, RPKI,
DNS hosting, rankings, IXPs — from a single seeded model.  Every dataset
crawler in :mod:`repro.datasets` then derives its input file from this
world in the original source's native format, which keeps the paper's
entire extract-transform-load path exercised.

The generator's knobs (:class:`WorldConfig`) are calibrated so the 2024
evaluation results keep their shape: RPKI coverage above 50% with CDNs
highest and academic/government networks lowest, a tiny invalid fraction
dominated by max-length mistakes, heavy DNS consolidation, and SPoF
concentration on US-registered ASes.
"""

from repro.simnet.config import WorldConfig
from repro.simnet.world import (
    ASInfo,
    DNSProvider,
    DomainInfo,
    NameServerInfo,
    OrgInfo,
    PrefixInfo,
    TLDInfo,
    World,
    build_world,
)

__all__ = [
    "ASInfo",
    "DNSProvider",
    "DomainInfo",
    "NameServerInfo",
    "OrgInfo",
    "PrefixInfo",
    "TLDInfo",
    "World",
    "WorldConfig",
    "build_world",
]
