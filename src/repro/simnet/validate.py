"""Self-check of a synthetic world's cross-dataset consistency.

Users who tune :class:`~repro.simnet.WorldConfig` (new scenarios, new
eras) need to know the world is still internally consistent before the
datasets rendered from it can be trusted.  This module checks the
invariants every dataset generator relies on; the CLI exposes it as
``python -m repro selfcheck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nettypes import prefix_contains
from repro.simnet.resolver import resolution_report
from repro.simnet.world import World


@dataclass
class WorldCheckReport:
    """Outcome of the consistency checks."""

    problems: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def note(self, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self.problems.append(message)


def validate_world(world: World, resolve_sample: int = 300) -> WorldCheckReport:
    """Run every consistency check; returns the aggregated report."""
    report = WorldCheckReport()

    # Topology ---------------------------------------------------------
    orphans = [
        asn for asn, info in world.ases.items()
        if info.category != "Tier1" and not info.providers
    ]
    report.note(not orphans, f"{len(orphans)} non-tier1 ASes without providers")
    asymmetric = [
        asn
        for asn, info in world.ases.items()
        for provider in info.providers
        if asn not in world.ases[provider].customers
    ]
    report.note(not asymmetric, f"{len(asymmetric)} asymmetric provider links")

    # Addressing -------------------------------------------------------
    stray = [
        info.prefix
        for info in world.prefixes.values()
        if not prefix_contains(info.allocated_block, info.prefix)
    ]
    report.note(not stray, f"{len(stray)} prefixes outside their allocation")
    unknown_origins = [
        info.prefix
        for info in world.prefixes.values()
        for origin in info.origins
        if origin not in world.ases
    ]
    report.note(
        not unknown_origins, f"{len(unknown_origins)} originations by unknown ASes"
    )

    # RPKI ---------------------------------------------------------------
    bad_rov = [
        info.prefix
        for info in world.prefixes.values()
        if (info.rov_status == "Valid") != bool(
            info.roas
            and info.roas[0].asn == info.origins[0]
            and info.roas[0].max_length >= int(info.prefix.rsplit("/", 1)[1])
        )
        and info.rov_status in ("Valid", "NotFound")
    ]
    report.note(not bad_rov, f"{len(bad_rov)} inconsistent ROV states")

    # DNS / web -----------------------------------------------------------
    homeless_ips = [
        domain.name
        for domain in world.domains.values()
        for ip in domain.ips
        if world.as_of_ip(ip) != domain.hosting_asn
    ]
    report.note(
        not homeless_ips, f"{len(homeless_ips)} domain IPs outside the hosting AS"
    )
    dangling_ns = [
        domain.name
        for domain in world.domains.values()
        for ns in domain.nameservers
        if ns not in world.nameservers
    ]
    report.note(not dangling_ns, f"{len(dangling_ns)} dangling nameserver names")
    ns_outside_as = [
        ns.name
        for ns in world.nameservers.values()
        for ip in ns.ips
        if world.as_of_ip(ip) != ns.asn
    ]
    report.note(
        not ns_outside_as, f"{len(ns_outside_as)} nameserver IPs outside their AS"
    )

    # End-to-end resolvability (iterative resolver) ------------------------
    outcomes = resolution_report(world, sample=resolve_sample)
    failures = {k: v for k, v in outcomes.items() if k != "ok"}
    report.note(not failures, f"unresolvable ranked domains: {failures}")

    # Rankings --------------------------------------------------------------
    report.note(
        sorted(world.tranco) == sorted(world.domains),
        "tranco list is not a permutation of the domain set",
    )
    report.note(
        set(world.umbrella) <= set(world.tranco),
        "umbrella contains unknown domains",
    )
    return report
