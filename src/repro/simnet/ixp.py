"""IXPs, co-location facilities, and the PeeringDB identifier space.

PeeringDB assigns its own IDs to networks, IXPs, facilities, and
organizations; CAIDA's IXP dataset has an independent ID space.  Both
are modeled so the EXTERNAL_ID machinery of the ontology is exercised
with two genuinely different identifier systems for the same IXPs.
"""

from __future__ import annotations

import random

from repro.simnet.world import IXPInfo, World

_IXP_CITIES = [
    ("AMS", "NL"), ("FRA", "DE"), ("LON", "GB"), ("NYC", "US"), ("ASH", "US"),
    ("SAO", "BR"), ("TOK", "JP"), ("SIN", "SG"), ("SYD", "AU"), ("PAR", "FR"),
    ("MOW", "RU"), ("HKG", "HK"), ("JNB", "ZA"), ("MAD", "ES"), ("WAW", "PL"),
    ("STO", "SE"), ("MIL", "IT"), ("VIE", "AT"), ("PRG", "CZ"), ("DUB", "IE"),
]


def build_ixps(world: World, rng: random.Random) -> None:
    """Create IXPs, facilities, and membership lists."""
    config = world.config
    n_ixps = config.scaled(config.n_ixps)
    n_facilities = config.scaled(config.n_facilities)
    for index in range(n_facilities):
        city, country = _IXP_CITIES[index % len(_IXP_CITIES)]
        world.facilities.append((f"DataDock {city} {index // len(_IXP_CITIES) + 1}", country))

    asns = list(world.ases)
    # Membership counts follow a heavy-tailed distribution: the biggest
    # exchanges have hundreds of members, the tail a handful.
    for index in range(n_ixps):
        city, country = _IXP_CITIES[index % len(_IXP_CITIES)]
        name = f"{city}-IX" if index < len(_IXP_CITIES) else f"{city}-IX {index}"
        share = 0.45 / (index + 1) ** 0.7
        n_members = max(3, int(len(asns) * share))
        members = sorted(rng.sample(asns, min(n_members, len(asns))))
        facility = world.facilities[index % len(world.facilities)][0]
        world.ixps[index + 1] = IXPInfo(
            name=name,
            country=country,
            peeringdb_ix_id=index + 1,
            caida_ix_id=1000 + index,
            members=members,
            facility=facility,
            website=f"https://www.{name.lower().replace(' ', '')}.example",
        )

    # PeeringDB net/org IDs for a large subset of ASes.
    next_net_id = 1
    next_org_id = 1
    org_ids: dict[str, int] = {}
    for asn in sorted(world.ases):
        info = world.ases[asn]
        if rng.random() < 0.75:
            info.peeringdb_net_id = next_net_id
            next_net_id += 1
            org = world.orgs[info.org_name]
            if org.peeringdb_org_id is None:
                org.peeringdb_org_id = next_org_id
                org_ids[info.org_name] = next_org_id
                next_org_id += 1
