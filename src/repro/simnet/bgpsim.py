"""BGP route propagation with Gao-Rexford policies.

Computes, for every origin AS, the best route each other AS selects
under the standard valley-free model:

- routes learned from customers are exported to everyone;
- routes learned from peers or providers are exported to customers only;
- route preference: customer > peer > provider, then shortest AS path,
  then lowest next-hop ASN (deterministic tie-break).

The simulator powers two datasets: PCH routing snapshots carry the AS
paths the collector peers select, and IHR's AS hegemony is computed
from the simulated paths exactly as the real dataset is computed from
BGP — the fraction of ASes whose best path toward an origin traverses a
given transit AS.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.simnet.world import World

Path = tuple[int, ...]


@dataclass
class RoutingState:
    """Results of route propagation."""

    # (source asn, origin asn) -> selected AS path (source first).
    collector_paths: dict[tuple[int, int], Path] = field(default_factory=dict)
    # origin asn -> {transit asn: hegemony score in [0, 1]}.
    hegemony: dict[int, dict[int, float]] = field(default_factory=dict)


def propagate(world: World, sources: set[int]) -> RoutingState:
    """Run propagation for every origin; keep paths for ``sources``."""
    providers_of = {asn: sorted(info.providers) for asn, info in world.ases.items()}
    customers_of = {asn: sorted(info.customers) for asn, info in world.ases.items()}
    peers_of = {asn: sorted(info.peers) for asn, info in world.ases.items()}
    origins = sorted({origin for p in world.prefixes.values() for origin in p.origins})
    n_ases = len(world.ases)
    state = RoutingState()
    for origin in origins:
        best = _best_paths(origin, providers_of, customers_of, peers_of)
        for source in sources:
            path = best.get(source)
            if path is not None:
                state.collector_paths[(source, origin)] = path
        counts: dict[int, int] = {}
        for source, path in best.items():
            for transit in path[1:-1]:  # neither source nor origin
                counts[transit] = counts.get(transit, 0) + 1
        state.hegemony[origin] = {
            transit: round(count / max(n_ases - 1, 1), 6)
            for transit, count in counts.items()
            if count / max(n_ases - 1, 1) >= 0.001
        }
    return state


def _best_paths(
    origin: int,
    providers_of: dict[int, list[int]],
    customers_of: dict[int, list[int]],
    peers_of: dict[int, list[int]],
) -> dict[int, Path]:
    """Best selected path from every AS toward ``origin``."""
    # Phase 1 -- customer routes: propagate from the origin upward along
    # customer->provider edges (BFS: unweighted, shortest first).
    customer_route: dict[int, Path] = {origin: (origin,)}
    queue: deque[int] = deque([origin])
    while queue:
        current = queue.popleft()
        for provider in providers_of[current]:
            if provider not in customer_route:
                customer_route[provider] = (provider,) + customer_route[current]
                queue.append(provider)

    # Phase 2 -- peer routes: one lateral hop from an AS holding a
    # customer route.  Customer routes always win, so only ASes without
    # one select a peer route.
    peer_route: dict[int, Path] = {}
    for asn, peers in peers_of.items():
        if asn in customer_route:
            continue
        best: Path | None = None
        for peer in peers:
            via = customer_route.get(peer)
            if via is None:
                continue
            candidate = (asn,) + via
            if best is None or (len(candidate), candidate[1]) < (len(best), best[1]):
                best = candidate
        if best is not None:
            peer_route[asn] = best

    # Phase 3 -- provider routes: propagate downward along
    # provider->customer edges from every AS that has any route, using
    # a Dijkstra-style frontier so shorter paths win deterministically.
    selected: dict[int, Path] = dict(customer_route)
    selected.update(peer_route)
    frontier: list[tuple[int, int, Path]] = [
        (len(path), asn, path) for asn, path in selected.items()
    ]
    heapq.heapify(frontier)
    provider_route: dict[int, Path] = {}
    while frontier:
        length, current, path = heapq.heappop(frontier)
        current_best = selected.get(current)
        if current_best is not None and len(current_best) < length:
            continue  # stale entry
        for customer in customers_of[current]:
            if customer in customer_route or customer in peer_route:
                continue
            candidate = (customer,) + path
            existing = provider_route.get(customer)
            if existing is not None and (len(existing), existing[1]) <= (
                len(candidate), candidate[1]
            ):
                continue
            provider_route[customer] = candidate
            selected[customer] = candidate
            heapq.heappush(frontier, (len(candidate), customer, candidate))
    return selected


def is_valley_free(
    path: Path,
    providers_of: dict[int, list[int]],
    peers_of: dict[int, list[int]],
) -> bool:
    """Check the Gao-Rexford validity of a path (source ... origin).

    Walking from the source toward the origin, the sequence of hop
    types must be: zero or more provider-hops (downhill toward the
    origin means the *previous* AS learned from a customer)... the
    practical check: reading from origin to source, hops go up
    (customer->provider) zero or more times, then at most one peer hop,
    then down (provider->customer) zero or more times.
    """
    reversed_path = tuple(reversed(path))  # origin ... source
    phase = "up"
    for first, second in zip(reversed_path, reversed_path[1:], strict=False):
        if second in providers_of.get(first, ()):  # climbing
            hop = "up"
        elif first in providers_of.get(second, ()):  # descending
            hop = "down"
        elif second in peers_of.get(first, ()):
            hop = "peer"
        else:
            hop = "down"
        if phase == "up":
            if hop == "up":
                continue
            phase = "peer" if hop == "peer" else "down"
        elif phase == "peer":
            if hop != "down":
                return False
            phase = "down"
        else:  # down
            if hop != "down":
                return False
    return True
