"""DNS and web hosting: domains, rankings, nameservers, consolidation.

This module encodes the phenomena the paper's evaluation measures:

- a ranked domain list (Tranco-like) with ~49% of names being
  .com/.net/.org SLDs (Table 3 "Coverage");
- rank-dependent hosting: the top of the list is CDN-heavy, the middle
  long-tailed, the bottom dominated by shared hosting (drives the
  Table 2 RPKI cohort ordering);
- managed-DNS consolidation: a Zipf market over providers, where
  "shared_set" providers give all customers the same NS set (large
  exact-set groups) and "per_customer" providers hand out pairs from a
  big pool concentrated in a couple of /24s (small exact groups, huge
  /24 groups — the Table 4 contrast);
- provider outsourcing chains ending at US-registered infrastructure
  operators, and ccTLD registries operated from their own countries
  (the Figure 5/6 SPoF shapes).
"""

from __future__ import annotations

import random

from repro.simnet.addressing import host_ip
from repro.simnet.topology import COUNTRY_WEIGHTS, weighted_choice
from repro.simnet.world import DNSProvider, DomainInfo, NameServerInfo, TLDInfo, World

GTLDS = [
    ("com", 0.78), ("net", 0.12), ("org", 0.10),
]
OTHER_TLDS = [
    ("ru", 0.14), ("cn", 0.09), ("uk", 0.09), ("de", 0.08), ("io", 0.07),
    ("jp", 0.06), ("br", 0.05), ("fr", 0.05), ("nl", 0.04), ("in", 0.04),
    ("info", 0.04), ("xyz", 0.04), ("online", 0.03), ("dev", 0.03),
    ("app", 0.03), ("pl", 0.03), ("it", 0.02), ("es", 0.02), ("au", 0.02),
    ("ca", 0.02), ("us", 0.01),
]
_CC_OPERATOR_COUNTRY = {
    "uk": "GB", "ru": "RU", "cn": "CN", "de": "DE", "jp": "JP", "br": "BR",
    "fr": "FR", "nl": "NL", "in": "IN", "pl": "PL", "it": "IT", "es": "ES",
    "au": "AU", "ca": "CA", "us": "US",
}

_WORDS = [
    "alpha", "breeze", "crest", "dawn", "ember", "flux", "grove", "haven",
    "iris", "jade", "krait", "lumen", "mango", "noble", "onyx", "pique",
    "quill", "ridge", "sable", "tidal", "umber", "vivid", "willow", "xenon",
    "yonder", "zephyr", "acorn", "bolt", "cedar", "drift",
]


def build_dns(world: World, rng: random.Random) -> None:
    """Populate TLDs, providers, nameservers, domains, and rankings."""
    _build_tlds(world, rng)
    _build_providers(world, rng)
    _build_domains(world, rng)
    _build_umbrella(world, rng)
    _build_cloudflare_queries(world, rng)


# ---------------------------------------------------------------------------
# TLD registries (hierarchical SPoF)
# ---------------------------------------------------------------------------


def _ases_by_category(world: World, *categories: str) -> list[int]:
    return sorted(
        asn for asn, info in world.ases.items() if info.category in categories
    )


def _ases_by_country_pref(world: World, pool: list[int], country: str,
                          rng: random.Random) -> int:
    """Prefer an AS from ``pool`` in ``country``; fall back to any AS in
    that country (a ccTLD registry is in its country even when no
    dedicated DNS-provider AS exists there), then to the pool."""
    local = [asn for asn in pool if world.ases[asn].country == country]
    if local:
        return rng.choice(local)
    anywhere = sorted(
        asn for asn, info in world.ases.items() if info.country == country
    )
    return rng.choice(anywhere) if anywhere else rng.choice(pool)


def _ns_for_zone(
    world: World, rng: random.Random, zone: str, asn: int, count: int, provider: str
) -> list[str]:
    """Create ``count`` nameserver hostnames for a zone, hosted in ``asn``."""
    names = []
    v4_prefixes = [
        p.prefix
        for p in world.prefixes.values()
        if p.af == 4 and p.origins[0] == asn
    ]
    for index in range(count):
        name = f"ns{index + 1}.{zone}"
        if name not in world.nameservers:
            prefix = v4_prefixes[index % len(v4_prefixes)] if v4_prefixes else None
            ips = [host_ip(rng, prefix, index=index + 7)] if prefix else []
            world.nameservers[name] = NameServerInfo(
                name=name, ips=ips, asn=asn, provider=provider
            )
        names.append(name)
    return names


def _build_tlds(world: World, rng: random.Random) -> None:
    dns_pool = _ases_by_category(world, "DNS Provider", "Cloud", "Tier1")
    if not dns_pool:
        dns_pool = sorted(world.ases)
    # gTLD registries are US-operated (the .com/.net/.org monoculture).
    gtld_asn = _ases_by_country_pref(world, dns_pool, "US", rng)
    for tld, _ in GTLDS + [(t, w) for t, w in OTHER_TLDS if t not in _CC_OPERATOR_COUNTRY]:
        operator = world.ases[gtld_asn]
        zone_ns = _ns_for_zone(world, rng, f"nic.{tld}", gtld_asn, 2, "registry")
        world.tlds[tld] = TLDInfo(
            tld=tld,
            operator_org=operator.org_name,
            country=operator.country,
            nameservers=zone_ns,
        )
    # ccTLD registries are operated from their own country.
    for tld, country in _CC_OPERATOR_COUNTRY.items():
        asn = _ases_by_country_pref(world, dns_pool, country, rng)
        operator = world.ases[asn]
        zone_ns = _ns_for_zone(world, rng, f"nic.{tld}", asn, 2, "registry")
        world.tlds[tld] = TLDInfo(
            tld=tld,
            operator_org=operator.org_name,
            country=operator.country,
            nameservers=zone_ns,
        )


# ---------------------------------------------------------------------------
# Managed-DNS providers
# ---------------------------------------------------------------------------


def _build_providers(world: World, rng: random.Random) -> None:
    config = world.config
    n_providers = max(6, config.scaled(config.n_dns_providers))
    provider_pool = _ases_by_category(
        world, "DNS Provider", "Cloud", "Content Delivery Network", "Hosting"
    )
    if len(provider_pool) < n_providers:
        provider_pool = provider_pool + sorted(world.ases)[: n_providers * 2]
    chosen = rng.sample(provider_pool, min(n_providers, len(provider_pool)))
    # The DNS market leaders and the backbone operators (last two) are
    # largely US companies, as in the real market -- this anchors the
    # Figure 5 finding that both direct and third-party dependency
    # concentrate on the US while ccTLD countries stay hierarchical.
    us_pool = [
        asn
        for asn in provider_pool
        if world.ases[asn].country == "US" and asn not in chosen
    ]
    biased = list(range(min(6, len(chosen)))) + [len(chosen) - 2, len(chosen) - 1]
    for position in biased:
        if world.ases[chosen[position]].country != "US" and us_pool:
            chosen[position] = us_pool.pop()
    # The last two providers are "infrastructure backbones": almost no
    # direct customers but the outsourcing target of everyone else
    # (the Akamai-shaped third-party column of Figure 6).
    keys: list[str] = []
    for index, asn in enumerate(chosen):
        word = _WORDS[index % len(_WORDS)]
        key = f"dns-{word}{index}"
        # Roughly a quarter of the provider *market share* sits outside
        # .com/.net/.org so the aggregate in-zone-glue fraction lands
        # near the Table 3 value (76%).  Deterministic by index: the
        # 2nd, 6th, 10th... providers use non-in-zone TLDs.
        if index % 4 == 1:
            tld = rng.choice(["io", "cloud", "dev"])
        else:
            tld = "com" if rng.random() < 0.85 else "net"
        domain = f"{word}dns{index}.{tld}"
        backbone = index >= len(chosen) - 2
        mode = "per_customer" if (index % 3 == 0 and not backbone) else "shared_set"
        provider = DNSProvider(
            name=key, domain=domain, asn=asn, mode=mode,
        )
        pool_size = 48 if mode == "per_customer" else rng.randint(4, 8)
        provider.ns_pool = _make_provider_pool(world, rng, provider, pool_size)
        keys.append(key)
        world.dns_providers[key] = provider
    # Outsourcing DAG: most providers host their own domain on another,
    # bigger provider or on a backbone; backbones self-host.
    backbone_keys = keys[-2:]
    for index, key in enumerate(keys):
        provider = world.dns_providers[key]
        if key in backbone_keys:
            provider.outsourced_to = None
            continue
        roll = rng.random()
        if index == 0 or roll >= 0.80:
            # The market leader (and a fifth of the rest) outsources to
            # a backbone -- the strongest third-party concentration.
            provider.outsourced_to = rng.choice(backbone_keys)
        elif roll < 0.25:
            provider.outsourced_to = None  # self-hosted control plane
        elif index > 0 and rng.random() < 0.4:
            provider.outsourced_to = keys[rng.randrange(0, index)]
        else:
            provider.outsourced_to = rng.choice(backbone_keys)
    # Every provider's own domain needs NS records for the SPoF chain.
    for key in keys:
        provider = world.dns_providers[key]
        if provider.outsourced_to is None:
            _ns_for_zone(world, rng, provider.domain, provider.asn, 2, key)


def _make_provider_pool(
    world: World, rng: random.Random, provider: DNSProvider, pool_size: int
) -> list[str]:
    """Provider nameserver hostnames, concentrated in a couple of /24s."""
    config = world.config
    v4_prefixes = [
        p.prefix
        for p in world.prefixes.values()
        if p.af == 4 and p.origins[0] == provider.asn
    ]
    if not v4_prefixes:
        raise RuntimeError(f"provider AS {provider.asn} has no IPv4 prefix")
    n_slash24 = max(1, config.n_nameserver_slash24s_per_provider)
    v6_prefixes = [
        p.prefix
        for p in world.prefixes.values()
        if p.af == 6 and p.origins[0] == provider.asn
    ]
    pool = []
    for index in range(pool_size):
        name = f"ns{index + 1:02d}.{provider.domain}"
        prefix = v4_prefixes[index % min(n_slash24, len(v4_prefixes))]
        # Deterministic host offsets keep all pool IPs in the same /24
        # of their prefix: offset < 200 stays inside the first /24.
        ips = [host_ip(rng, prefix, index=10 + index % 180)]
        # Dual-stack glue for a good share of provider nameservers, so
        # the af:4 filter in the paper's Listing 5 actually filters.
        if v6_prefixes and index % 3 != 0:
            ips.append(host_ip(rng, v6_prefixes[index % len(v6_prefixes)],
                               index=10 + index))
        world.nameservers[name] = NameServerInfo(
            name=name, ips=ips, asn=provider.asn, provider=provider.name
        )
        pool.append(name)
    return pool


# ---------------------------------------------------------------------------
# The ranked domain list
# ---------------------------------------------------------------------------


def _zipf_pick(rng: random.Random, items: list, exponent: float = 1.1):
    """Heavy-tailed choice: item 0 is the most likely."""
    weights = [1.0 / (index + 1) ** exponent for index in range(len(items))]
    total = sum(weights)
    point = rng.random() * total
    for item, weight in zip(items, weights, strict=True):
        point -= weight
        if point <= 0:
            return item
    return items[-1]


def _build_domains(world: World, rng: random.Random) -> None:
    config = world.config
    n_domains = config.n_domains
    cdn_ases = _ases_by_category(world, "Content Delivery Network")
    hosting_ases = _ases_by_category(world, "Hosting")
    cloud_ases = _ases_by_category(world, "Cloud")
    enterprise_ases = _ases_by_category(world, "Enterprise", "Academic", "Government")
    isp_ases = _ases_by_category(world, "ISP")
    provider_keys = list(world.dns_providers)
    # Direct-market provider order excludes the two backbones (tiny
    # direct share) -- they are appended last so Zipf barely picks them.
    direct_order = provider_keys[:-2] + provider_keys[-2:]

    top_band = int(n_domains * config.top100k_equivalent)
    bottom_band = n_domains - top_band
    used_names: set[str] = set()

    for rank in range(1, n_domains + 1):
        name = _domain_name(rng, used_names)
        if rng.random() < config.com_net_org_fraction:
            tld = weighted_choice(rng, GTLDS)
        else:
            tld = weighted_choice(rng, OTHER_TLDS)
        domain_name = f"{name}.{tld}"
        # Hosting cohort by rank band.
        if rank <= top_band:
            # Big brands self-host on enterprise/academic infrastructure
            # when not on a CDN -- the low-RPKI tail that makes the top
            # band's *prefix-level* coverage lag the bottom band's.
            cdn_probability = config.cdn_hosted_top
            pool_mix = [(enterprise_ases, 0.65), (cloud_ases, 0.2), (hosting_ases, 0.15)]
        elif rank > bottom_band:
            cdn_probability = config.cdn_hosted_bottom
            pool_mix = [(hosting_ases, 0.75), (cloud_ases, 0.15), (isp_ases, 0.1)]
        else:
            cdn_probability = config.cdn_hosted_middle
            pool_mix = [
                (hosting_ases, 0.35), (isp_ases, 0.25), (enterprise_ases, 0.25),
                (cloud_ases, 0.15),
            ]
        cdn_hosted = bool(cdn_ases) and rng.random() < cdn_probability
        if cdn_hosted:
            hosting_asn = _zipf_pick(rng, cdn_ases)
        else:
            pool = _pick_pool(rng, pool_mix)
            hosting_asn = _zipf_pick(rng, pool, exponent=0.9)
        ips = _host_ips(world, rng, hosting_asn, rank)
        nameservers, provider_key, self_hosted = _assign_nameservers(
            world, rng, domain_name, hosting_asn, direct_order
        )
        has_glue = rng.random() >= config.discarded_fraction
        in_zone_glue = _in_zone_glue(world, nameservers, self_hosted, tld)
        registered_country = _registration_country(rng, tld)
        cname_target = None
        if cdn_hosted and rng.random() < config.cname_fraction:
            cdn_provider = world.ases[hosting_asn]
            cname_target = (
                f"{name}.edge.{cdn_provider.name.lower().replace('-', '')}.com"
            )
        world.domains[domain_name] = DomainInfo(
            name=domain_name,
            tld=tld,
            rank=rank,
            umbrella_rank=None,
            hostname=domain_name,
            ips=ips,
            hosting_asn=hosting_asn,
            cdn_hosted=cdn_hosted,
            nameservers=nameservers,
            ns_provider=provider_key,
            has_glue=has_glue,
            in_zone_glue=in_zone_glue,
            cname_target=cname_target,
            registered_country=registered_country,
        )
        world.tranco.append(domain_name)


def _domain_name(rng: random.Random, used: set[str]) -> str:
    while True:
        name = rng.choice(_WORDS) + rng.choice(_WORDS)
        if rng.random() < 0.5:
            name += str(rng.randrange(100))
        if name not in used:
            used.add(name)
            return name


def _pick_pool(rng: random.Random, mix: list[tuple[list[int], float]]) -> list[int]:
    pools = [(pool, weight) for pool, weight in mix if pool]
    point = rng.random() * sum(weight for _, weight in pools)
    for pool, weight in pools:
        point -= weight
        if point <= 0:
            return pool
    return pools[-1][0]


def _host_ips(world: World, rng: random.Random, asn: int, rank: int) -> list[str]:
    v4 = [p.prefix for p in world.prefixes.values() if p.af == 4 and p.origins[0] == asn]
    v6 = [p.prefix for p in world.prefixes.values() if p.af == 6 and p.origins[0] == asn]
    ips = [host_ip(rng, rng.choice(v4))] if v4 else []
    if rank <= 1000 and v4 and rng.random() < 0.4:
        ips.append(host_ip(rng, rng.choice(v4)))
    if v6 and rng.random() < 0.35:
        ips.append(host_ip(rng, rng.choice(v6)))
    return ips


def _assign_nameservers(
    world: World,
    rng: random.Random,
    domain_name: str,
    hosting_asn: int,
    direct_order: list[str],
) -> tuple[list[str], str, bool]:
    config = world.config
    count = _ns_count(rng, config)
    if rng.random() < config.self_hosted_dns_fraction:
        names = _ns_for_zone(
            world, rng, domain_name, hosting_asn, count, f"self:{domain_name}"
        )
        return names, f"self:{domain_name}", True
    provider = world.dns_providers[_zipf_pick(rng, direct_order, exponent=1.05)]
    if provider.mode == "shared_set":
        names = provider.ns_pool[: min(count, len(provider.ns_pool))]
    else:
        names = rng.sample(provider.ns_pool, min(count, len(provider.ns_pool)))
    return list(names), provider.name, False


def _ns_count(rng: random.Random, config) -> int:
    roll = rng.random()
    if roll < config.ns_not_meet:
        return 1
    if roll < config.ns_not_meet + config.ns_meet:
        return 2
    return rng.choice([3, 3, 4, 4, 5, 6])


def _in_zone_glue(
    world: World, nameservers: list[str], self_hosted: bool, tld: str
) -> bool:
    """Glue is in-zone when the NS names live under .com/.net/.org."""
    in_zone_tlds = {"com", "net", "org"}
    if self_hosted:
        return tld in in_zone_tlds
    return all(ns.rsplit(".", 1)[-1] in in_zone_tlds for ns in nameservers)


def _registration_country(rng: random.Random, tld: str) -> str:
    cc = _CC_OPERATOR_COUNTRY.get(tld)
    if cc is not None and rng.random() < 0.6:
        return cc
    return weighted_choice(rng, COUNTRY_WEIGHTS)


# ---------------------------------------------------------------------------
# Other rankings and query data
# ---------------------------------------------------------------------------


def _build_umbrella(world: World, rng: random.Random) -> None:
    config = world.config
    n_overlap = int(len(world.tranco) * config.umbrella_overlap)
    sample = rng.sample(world.tranco, n_overlap)
    rng.shuffle(sample)
    world.umbrella = sample
    for position, domain in enumerate(sample, start=1):
        world.domains[domain].umbrella_rank = position


def _build_cloudflare_queries(world: World, rng: random.Random) -> None:
    config = world.config
    eyeballs = [
        asn
        for asn, info in world.ases.items()
        if "Eyeball" in info.extra_tags or info.category == "ISP"
    ]
    if not eyeballs:
        return
    eyeballs.sort()
    n_top = int(len(world.tranco) * config.cloudflare_top_fraction)
    for domain_name in world.tranco[:n_top]:
        count = rng.randint(3, 6)
        world.domains[domain_name].queried_from_asns = [
            _zipf_pick(rng, eyeballs, exponent=0.8) for _ in range(count)
        ]


# ---------------------------------------------------------------------------
# The DNS dependency graph (zone -> NS), consumed by the SPoF study
# ---------------------------------------------------------------------------


def zone_nameservers(world: World) -> dict[str, list[str]]:
    """Return every zone's NS set: ranked domains, provider control
    domains, and TLDs.  This is the synthetic equivalent of the
    OpenINTEL DNS Dependency Graph dataset."""
    zones: dict[str, list[str]] = {}
    for domain in world.domains.values():
        zones[domain.name] = list(domain.nameservers)
    for provider in world.dns_providers.values():
        if provider.domain in zones:
            continue
        if provider.outsourced_to is None:
            # Self-hosted: _build_providers created ns1/ns2.<domain>.
            own = [
                name
                for name in (f"ns1.{provider.domain}", f"ns2.{provider.domain}")
                if name in world.nameservers
            ]
            zones[provider.domain] = own or provider.ns_pool[:2]
        else:
            target = world.dns_providers[provider.outsourced_to]
            zones[provider.domain] = target.ns_pool[:2]
    for tld_info in world.tlds.values():
        zones[tld_info.tld] = list(tld_info.nameservers)
    return zones
