"""BGP routing artifacts: MOAS, anycast, collectors and their peers.

The announced prefixes already exist (addressing); this step adds the
routing-layer phenomena the datasets expose: multi-origin prefixes, an
anycast flag (BGP.Tools anycast-prefixes dataset), and the RIS/PCH
collector infrastructure with its peering ASes.
"""

from __future__ import annotations

import random

from repro.simnet.world import World


def build_routing(world: World, rng: random.Random) -> None:
    """Add MOAS origins, anycast flags, and BGP collectors."""
    config = world.config
    asns = list(world.ases)
    prefixes = list(world.prefixes.values())

    n_moas = int(len(prefixes) * config.moas_fraction)
    for info in rng.sample(prefixes, n_moas):
        extra = rng.choice(asns)
        if extra not in info.origins:
            info.origins.append(extra)

    # Anycast prefixes live disproportionately in CDN / DNS / DDoS ASes.
    anycast_friendly = {
        asn
        for asn, info in world.ases.items()
        if info.category in ("Content Delivery Network", "DNS Provider",
                             "DDoS Mitigation", "Cloud")
    }
    for info in prefixes:
        base = config.anycast_fraction
        probability = base * 8 if info.origins[0] in anycast_friendly else base / 2
        if rng.random() < probability:
            info.anycast = True

    # Collectors: RIS-style rrc collectors; tier-1s and a sample of other
    # ASes peer with them (PEERS_WITH in the graph).
    world.collectors = [f"rrc{i:02d}" for i in range(config.scaled(config.n_collectors))]
    tier1 = [asn for asn, info in world.ases.items() if info.category == "Tier1"]
    for collector in world.collectors:
        sample_size = min(len(asns), max(5, len(asns) // 10))
        peers = set(tier1) | set(rng.sample(asns, sample_size))
        world.collector_peers[collector] = sorted(peers)

    # Propagate routes (Gao-Rexford) so collector dumps carry real AS
    # paths and hegemony can be computed from routing, not topology.
    from repro.simnet.bgpsim import propagate

    sources = {peer for peers in world.collector_peers.values() for peer in peers}
    world.routing = propagate(world, sources)
