"""RPKI (ROAs and route-origin validation) and IRR registration.

Each AS registers ROAs for its prefixes with a probability set by its
business category (the calibration behind Table 2 and Section 4.1.4: CDN
and DDoS-mitigation networks near the top, academic and government at
the bottom).  A small, configurable fraction of announced prefix/origin
pairs is made RPKI-invalid — 75% of them through a too-small maxLength,
matching the paper's "75% of invalids are due to a wrong maximum prefix
length in ROAs".
"""

from __future__ import annotations

import random

from repro.simnet.world import ROA, World


def build_rpki(world: World, rng: random.Random) -> None:
    """Assign ROAs, ROV status, and IRR status to all prefixes."""
    config = world.config
    covered = []
    for info in world.prefixes.values():
        owner = world.ases[info.origins[0]]
        if rng.random() < owner.rpki_propensity:
            length = int(info.prefix.rsplit("/", 1)[1])
            info.roas.append(ROA(asn=owner.asn, prefix=info.prefix, max_length=length))
            info.rov_status = "Valid"
            covered.append(info)
        else:
            info.rov_status = "NotFound"
        # IRR registration is independent of RPKI and more widespread.
        if rng.random() < config.irr_coverage:
            info.irr_status = "Valid"

    # Inject the calibrated invalid population.
    n_invalid = max(1, int(len(world.prefixes) * config.rpki_invalid_fraction))
    n_invalid = min(n_invalid, len(covered))
    # Bias the invalids toward content-hosting networks so the RiPKI
    # query (which only sees prefixes hosting ranked domains) observes a
    # nonzero invalid fraction, as the paper does (0.12%).
    hosting_like = [
        info
        for info in covered
        if world.ases[info.origins[0]].category
        in ("Hosting", "Cloud", "Content Delivery Network", "ISP")
    ]
    pool = hosting_like if len(hosting_like) >= n_invalid else covered
    invalid_sample = rng.sample(pool, n_invalid)
    asns = list(world.ases)
    # Deterministic split so the maxLength share matches the configured
    # 75% even for the handful of invalids a small world produces.
    n_maxlen = max(1, round(n_invalid * config.rpki_invalid_maxlen_share))
    for index, info in enumerate(invalid_sample):
        roa = info.roas[0]
        if index < n_maxlen:
            # The operator announced a more-specific than the ROA allows.
            roa.max_length = max(8, roa.max_length - rng.choice([1, 2, 4]))
            info.rov_status = "Invalid,more-specific"
        else:
            wrong = rng.choice(asns)
            while wrong == roa.asn:
                wrong = rng.choice(asns)
            roa.asn = wrong
            info.rov_status = "Invalid"
