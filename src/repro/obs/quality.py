"""Cross-source data-quality telemetry.

The paper's central claim is fusion: dozens of independently collected
datasets merged into one graph.  The operational question that follows
is whether each source is still *fresh* (built recently), still
*covering* its share of the graph, and still *agreeing* with the other
sources.  This module derives those three signals from artifacts the
pipeline already produces — per-crawler :class:`CrawlerRun` telemetry
recorded in the archive manifest's ``build`` block, and the manifest's
per-entry deltas — without touching the graph itself.

**Agreement** is the fusion corroboration ratio: of everything a crawler
asserted, the fraction that merged into an entity some other source had
already created (``merged / (created + merged)``).  A crawler whose
agreement drops sharply between two builds started asserting facts the
rest of the crowd no longer corroborates — the wisdom-of-the-crowd
analogue of a diverging vantage point.

Everything here consumes plain dicts (``ArchiveEntry.to_dict()`` /
``BuildReport.build_metadata()`` shapes), keeping :mod:`repro.obs` free
of engine/store/server imports.
"""

from __future__ import annotations

import calendar
import time
from typing import Any, Callable, Mapping, Sequence

#: An entry older than this is flagged stale (the paper ships weekly
#: dumps; one missed week plus a day of grace).
DEFAULT_STALE_AFTER_SECONDS = 8 * 86400.0

#: Absolute drop in a crawler's agreement ratio between consecutive
#: builds that flags it as diverging.
DEFAULT_DIVERGENCE_DROP = 0.25

_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%SZ"


def utc_timestamp(now: Callable[[], float] = time.time) -> str:
    """The manifest's ``created_at`` format for the current instant."""
    return time.strftime(_TIMESTAMP_FORMAT, time.gmtime(now()))


def parse_timestamp(text: str) -> float | None:
    """Epoch seconds for a manifest ``created_at``, None if absent/bad."""
    if not text:
        return None
    try:
        return calendar.timegm(time.strptime(text, _TIMESTAMP_FORMAT))
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# Per-build crawler quality
# ---------------------------------------------------------------------------


def crawler_quality(build: Mapping[str, Any] | None) -> list[dict[str, Any]]:
    """Per-crawler coverage and agreement for one build's metadata.

    Returns one row per crawler run recorded in ``build["crawler_runs"]``
    (older manifests predate that key and yield ``[]``): contributed
    node/relationship counts, the crawler's share of all contributions in
    the build, the fusion agreement ratio, and any error.
    """
    if not build:
        return []
    runs = build.get("crawler_runs") or []
    total_nodes = sum(
        run.get("nodes_created", 0) + run.get("nodes_merged", 0) for run in runs
    )
    total_rels = sum(
        run.get("relationships_created", 0) + run.get("relationships_merged", 0)
        for run in runs
    )
    rows = []
    for run in runs:
        nodes = run.get("nodes_created", 0) + run.get("nodes_merged", 0)
        rels = run.get("relationships_created", 0) + run.get(
            "relationships_merged", 0
        )
        created = run.get("nodes_created", 0) + run.get(
            "relationships_created", 0
        )
        merged = run.get("nodes_merged", 0) + run.get("relationships_merged", 0)
        asserted = created + merged
        rows.append(
            {
                "crawler": run.get("name", "?"),
                "seconds": run.get("seconds", 0.0),
                "nodes": nodes,
                "relationships": rels,
                "node_share": round(nodes / total_nodes, 4) if total_nodes else 0.0,
                "relationship_share": round(rels / total_rels, 4)
                if total_rels
                else 0.0,
                "agreement": round(merged / asserted, 4) if asserted else 0.0,
                "error": run.get("error"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Longitudinal archive quality
# ---------------------------------------------------------------------------


def archive_quality(
    entries: Sequence[Mapping[str, Any]],
    *,
    stale_after_seconds: float = DEFAULT_STALE_AFTER_SECONDS,
    divergence_drop: float = DEFAULT_DIVERGENCE_DROP,
    now: Callable[[], float] = time.time,
) -> dict[str, Any]:
    """Longitudinal quality report over archive manifest entries.

    ``entries`` are ``ArchiveEntry.to_dict()`` mappings, oldest first
    (manifest order).  The report carries one row per snapshot (age,
    counts, growth vs the previous entry, delta churn) plus, for the
    latest entry, the per-crawler table with each crawler flagged
    ``diverging`` when its agreement ratio dropped by more than
    ``divergence_drop`` since the previous build.
    """
    timestamp = now()
    snapshots: list[dict[str, Any]] = []
    previous: Mapping[str, Any] | None = None
    for entry in entries:
        created = parse_timestamp(entry.get("created_at", ""))
        age = timestamp - created if created is not None else None
        delta = entry.get("delta") or {}
        row = {
            "label": entry.get("label", "?"),
            "created_at": entry.get("created_at", ""),
            "age_seconds": round(age, 1) if age is not None else None,
            "nodes": entry.get("nodes", 0),
            "relationships": entry.get("relationships", 0),
            "node_growth": entry.get("nodes", 0) - previous.get("nodes", 0)
            if previous is not None
            else None,
            "relationship_growth": entry.get("relationships", 0)
            - previous.get("relationships", 0)
            if previous is not None
            else None,
            "delta_identical": delta.get("identical"),
            "schema_ok": (entry.get("build") or {}).get("schema_ok"),
            "crawler_errors": len((entry.get("build") or {}).get(
                "crawler_errors", {}
            )),
        }
        snapshots.append(row)
        previous = entry
    latest = entries[-1] if entries else None
    crawlers = crawler_quality(latest.get("build") if latest else None)
    previous_agreement = {
        row["crawler"]: row["agreement"]
        for row in crawler_quality(
            entries[-2].get("build") if len(entries) > 1 else None
        )
    }
    diverging = []
    for row in crawlers:
        before = previous_agreement.get(row["crawler"])
        row["diverging"] = bool(
            before is not None and before - row["agreement"] > divergence_drop
        )
        if row["diverging"] or row["error"]:
            diverging.append(row["crawler"])
    freshness = snapshots[-1]["age_seconds"] if snapshots else None
    return {
        "snapshots": snapshots,
        "crawlers": crawlers,
        "latest": latest.get("label") if latest else None,
        "freshness_seconds": freshness,
        "stale": bool(freshness is not None and freshness > stale_after_seconds),
        "stale_after_seconds": stale_after_seconds,
        "problem_crawlers": diverging,
    }


# ---------------------------------------------------------------------------
# Prometheus gauges
# ---------------------------------------------------------------------------


def quality_gauges(
    report: Mapping[str, Any],
) -> list[tuple[str, float, dict[str, str] | None]]:
    """``(name, value, labels)`` triples for ``Metrics.set_gauge``."""
    gauges: list[tuple[str, float, dict[str, str] | None]] = []
    freshness = report.get("freshness_seconds")
    if freshness is not None:
        gauges.append(("quality_snapshot_age_seconds", float(freshness), None))
    gauges.append(("quality_stale", 1.0 if report.get("stale") else 0.0, None))
    gauges.append(
        ("quality_snapshots_tracked", float(len(report.get("snapshots", []))), None)
    )
    for row in report.get("crawlers", []):
        labels = {"crawler": row["crawler"]}
        gauges.append(("quality_crawler_agreement", row["agreement"], labels))
        gauges.append(
            ("quality_crawler_node_share", row["node_share"], labels)
        )
        gauges.append(
            (
                "quality_crawler_relationship_share",
                row["relationship_share"],
                labels,
            )
        )
        gauges.append(
            (
                "quality_crawler_diverging",
                1.0 if row.get("diverging") else 0.0,
                labels,
            )
        )
    return gauges


# ---------------------------------------------------------------------------
# Text report (``repro quality``)
# ---------------------------------------------------------------------------


def _format_age(age: float | None) -> str:
    if age is None:
        return "unknown"
    if age < 120:
        return f"{age:.0f}s"
    if age < 7200:
        return f"{age / 60:.0f}m"
    if age < 172800:
        return f"{age / 3600:.1f}h"
    return f"{age / 86400:.1f}d"


def render_quality_report(report: Mapping[str, Any]) -> str:
    """Human-readable longitudinal report for ``repro quality``."""
    lines: list[str] = []
    snapshots = report.get("snapshots", [])
    if not snapshots:
        return "archive is empty: no snapshots to report on"
    stale = " STALE" if report.get("stale") else ""
    lines.append(
        f"latest snapshot: {report.get('latest')} "
        f"(age {_format_age(report.get('freshness_seconds'))}{stale})"
    )
    lines.append("")
    lines.append(
        f"  {'label':<20} {'age':>8} {'nodes':>9} {'rels':>9} "
        f"{'Δnodes':>8} {'Δrels':>8} {'schema':>6} {'errors':>6}"
    )
    for row in snapshots:
        growth_n = row["node_growth"]
        growth_r = row["relationship_growth"]
        schema = {True: "ok", False: "FAIL", None: "-"}[row["schema_ok"]]
        lines.append(
            f"  {row['label'][:20]:<20} {_format_age(row['age_seconds']):>8} "
            f"{row['nodes']:>9,} {row['relationships']:>9,} "
            f"{growth_n if growth_n is not None else '-':>8} "
            f"{growth_r if growth_r is not None else '-':>8} "
            f"{schema:>6} {row['crawler_errors']:>6}"
        )
    crawlers = report.get("crawlers", [])
    if crawlers:
        lines.append("")
        lines.append(f"per-crawler quality (latest build, {len(crawlers)} crawlers):")
        lines.append(
            f"  {'crawler':<28} {'nodes':>8} {'rels':>8} "
            f"{'n-share':>8} {'r-share':>8} {'agree':>6}  status"
        )
        for row in crawlers:
            if row["error"]:
                status = "ERROR"
            elif row.get("diverging"):
                status = "DIVERGING"
            else:
                status = "ok"
            lines.append(
                f"  {row['crawler'][:28]:<28} {row['nodes']:>8,} "
                f"{row['relationships']:>8,} {row['node_share'] * 100:>7.1f}% "
                f"{row['relationship_share'] * 100:>7.1f}% "
                f"{row['agreement']:>6.2f}  {status}"
            )
    problems = report.get("problem_crawlers", [])
    if problems:
        lines.append("")
        lines.append("attention: " + ", ".join(problems))
    return "\n".join(lines)
