"""A lightweight span tracer: context managers, thread-local nesting,
ring-buffered storage, zero dependencies.

One *trace* is the tree of spans produced while handling one unit of
work (an HTTP request, a pipeline build).  Spans nest through a
thread-local stack: ``tracer.span("parse")`` opened while a ``request``
span is active becomes its child, so the layers don't need to pass span
handles around — the trace id propagates implicitly from the HTTP
handler through admission, the engine, the matcher, and down to store
index lookups, all of which run on the request's thread.

Completed spans are appended to a bounded ring of traces (oldest trace
evicted whole), so a long-running server holds a constant amount of
trace memory no matter how many requests it serves.  A disabled tracer
(``Tracer(enabled=False)`` or the shared :data:`NULL_TRACER`) hands out
a reusable null context manager: the instrumentation stays in place at
near-zero cost.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Iterator

#: Spans kept per trace; a runaway instrumented loop cannot grow one
#: trace without bound.
MAX_SPANS_PER_TRACE = 512


class Span:
    """One timed operation inside a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "started_at",
        "duration",
        "attributes",
        "status",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attributes: dict[str, Any],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started_at = time.time()
        self.duration = 0.0
        self.attributes = attributes
        self.status = "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": round(self.duration * 1000, 3),
            "attributes": dict(self.attributes),
            "status": self.status,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.duration * 1000:.2f}ms {self.trace_id}>"


class _NullContext:
    """Reusable no-op context manager for a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_start")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._start = 0.0

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        self._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        span = self._span
        assert span is not None
        span.duration = time.perf_counter() - self._start
        if exc is not None:
            span.status = "error"
            span.attributes.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._tracer._close(span)
        return False


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class Tracer:
    """Thread-safe span tracer with a bounded ring of completed traces."""

    GUARDED_BY = {
        "_traces": "_lock",
        "max_traces": "frozen",
    }

    def __init__(self, max_traces: int = 512, enabled: bool = True):
        self.enabled = enabled
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()
        self._tls = threading.local()

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span as a child of this thread's current span.

        With no span active, a new trace is started (the span becomes
        its root).  Disabled tracers return a shared no-op context.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, attributes)

    def trace(self, name: str, trace_id: str | None = None, **attributes: Any):
        """Open a root span, optionally under a caller-chosen trace id."""
        if not self.enabled:
            return _NULL_CONTEXT
        if trace_id is not None:
            attributes["__trace_id__"] = trace_id
        return _SpanContext(self, name, attributes)

    def _open(self, name: str, attributes: dict[str, Any]) -> Span:
        stack: list[Span] = getattr(self._tls, "stack", None) or []
        forced_id = attributes.pop("__trace_id__", None)
        if stack:
            parent = stack[-1]
            span = Span(parent.trace_id, new_trace_id(), parent.span_id, name, attributes)
        else:
            trace_id = forced_id or new_trace_id()
            span = Span(trace_id, new_trace_id(), None, name, attributes)
            with self._lock:
                self._traces[trace_id] = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
        stack.append(span)
        self._tls.stack = stack
        return span

    def _close(self, span: Span) -> None:
        stack: list[Span] = getattr(self._tls, "stack", [])
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is not None and len(spans) < MAX_SPANS_PER_TRACE:
                spans.append(span)

    def current_trace_id(self) -> str | None:
        """The trace id active on this thread, if any."""
        stack: list[Span] = getattr(self._tls, "stack", [])
        return stack[-1].trace_id if stack else None

    # -- reading ---------------------------------------------------------

    def get_trace(self, trace_id: str) -> list[Span] | None:
        """All completed spans of one trace (flat, completion order)."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def trace_tree(self, trace_id: str) -> dict[str, Any] | None:
        """One trace as a nested span tree (root span outermost)."""
        spans = self.get_trace(trace_id)
        if not spans:
            return None
        children: dict[str | None, list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        def build(span: Span) -> dict[str, Any]:
            node = span.to_dict()
            kids = children.get(span.span_id, ())
            node["children"] = [
                build(child) for child in sorted(kids, key=lambda s: s.started_at)
            ]
            return node

        roots = children.get(None, [])
        if not roots:  # root still open (partial trace): pick the eldest
            roots = [min(spans, key=lambda s: s.started_at)]
        return build(roots[0])

    def trace_ids(self) -> list[str]:
        """Buffered trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def info(self) -> dict[str, Any]:
        """Summary for /stats and /metrics."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "traces_buffered": len(self._traces),
                "max_traces": self.max_traces,
            }

    def spans_named(self, trace_id: str, name: str) -> Iterator[Span]:
        """Convenience for tests: completed spans of a trace by name."""
        for span in self.get_trace(trace_id) or ():
            if span.name == name:
                yield span


#: Shared disabled tracer: instrumented code paths default to this, so
#: un-traced execution pays only a ``self.enabled`` check per span.
NULL_TRACER = Tracer(enabled=False)
