"""Thread-local store-access recording.

The graph store calls :func:`record_access` from its read and merge
paths.  When no collector is installed for the current thread — the
overwhelmingly common case — the call is one thread-local attribute read
and a ``None`` check, cheap enough to leave in the hot path permanently.
When a collector *is* installed (a profiled query, a crawler run under
pipeline telemetry), every event lands in its counters, bucketed by
whatever operator the profiler currently has open.

The collector is deliberately not shared across threads: each profiled
query or crawler run installs its own via :func:`collecting`, so
concurrent queries never contend on a counter lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_tls = threading.local()

#: Access kinds reported by the graph store's read path.
READ_KINDS = ("index_seek", "label_scan", "full_scan", "expand")

#: Event kinds reported by the store's merge/create path (pipeline
#: telemetry: what each crawler contributed).
WRITE_KINDS = ("node_created", "node_merged", "rel_created", "rel_merged")

#: Resource-accounting kinds for statement statistics: row-level volume
#: counters (how *much* was scanned/expanded, vs READ_KINDS counting
#: operations) plus engine-level events.  Reported with batch counts
#: where the producer already has the batch in hand — the store records
#: one ``nodes_scanned``/``rels_expanded`` per list rather than one per
#: row, and the matcher flushes ``bind_attempt`` (anchor candidates
#: tried) once per path rather than once per candidate.
RESOURCE_KINDS = (
    "nodes_scanned",
    "rels_expanded",
    "bind_attempt",
    "procedure_cache_hit",
    "bytes_serialized",
)


class AccessCollector:
    """Counts store events for one thread's unit of work.

    Every event lands in exactly one bucket: the active operator bucket
    when one is set (by the profiler, at clause boundaries), otherwise
    the collector's own ``hits``.  Whole-run totals are aggregated once
    at the end (:meth:`Profiler.finish`) rather than on every record,
    keeping the per-event cost to a single dict update.
    """

    __slots__ = ("hits", "_operator")

    def __init__(self) -> None:
        self.hits: dict[str, int] = {}
        self._operator: dict[str, int] | None = None

    def record(self, kind: str, count: int = 1) -> None:
        bucket = self._operator
        if bucket is None:
            bucket = self.hits
        bucket[kind] = bucket.get(kind, 0) + count

    def set_operator(self, bucket: dict[str, int] | None) -> dict[str, int] | None:
        """Swap the active attribution bucket; returns the previous one."""
        previous = self._operator
        self._operator = bucket
        return previous


def current_collector() -> AccessCollector | None:
    """The collector installed for this thread, if any."""
    return getattr(_tls, "collector", None)


def record_access(kind: str, count: int = 1) -> None:
    """Report one store event to this thread's collector (no-op without)."""
    collector = getattr(_tls, "collector", None)
    if collector is not None:
        collector.record(kind, count)


@contextmanager
def collecting(collector: AccessCollector) -> Iterator[AccessCollector]:
    """Install ``collector`` for this thread for the duration of the block."""
    previous = getattr(_tls, "collector", None)
    _tls.collector = collector
    try:
        yield collector
    finally:
        _tls.collector = previous
