"""PROFILE support: the operator tree collected during one engine run.

The engine opens one :meth:`Profiler.operator` per executed clause (and
per UNION part); while an operator is open, every store access reported
through :mod:`repro.obs.record` is attributed to it.  The result is an
annotated plan tree — per operator: rows produced, store hits broken
down by access path (index seek / label scan / full scan / expand), and
wall time — the reproduction's answer to Neo4j's ``PROFILE``.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.obs.record import AccessCollector


class ProfileNode:
    """One operator in a profiled plan."""

    __slots__ = ("operator", "detail", "rows", "seconds", "hits", "children")

    def __init__(self, operator: str, detail: str = ""):
        self.operator = operator
        self.detail = detail
        self.rows = 0
        self.seconds = 0.0
        self.hits: dict[str, int] = {}
        self.children: list[ProfileNode] = []

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "detail": self.detail,
            "rows": self.rows,
            "time_ms": round(self.seconds * 1000, 3),
            "hits": dict(sorted(self.hits.items())),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self) -> str:
        """The annotated plan tree as indented text (CLI / slow log)."""
        lines: list[str] = []
        self._render_into(lines, depth=0)
        return "\n".join(lines)

    def _render_into(self, lines: list[str], depth: int) -> None:
        hits = " ".join(f"{k}={v}" for k, v in sorted(self.hits.items()))
        parts = [f"{'|  ' * depth}+{self.operator}"]
        if self.detail:
            parts.append(f"({self.detail})")
        parts.append(f" rows={self.rows}")
        parts.append(f" time={self.seconds * 1000:.3f}ms")
        if hits:
            parts.append(f" hits{{{hits}}}")
        lines.append("".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1)

    def walk(self) -> Iterator["ProfileNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProfileNode {self.operator} rows={self.rows}>"


class _OperatorContext:
    """Times one operator and scopes store-hit attribution to it."""

    __slots__ = ("_profiler", "_node", "_previous_bucket", "_start")

    def __init__(self, profiler: "Profiler", node: ProfileNode):
        self._profiler = profiler
        self._node = node
        self._previous_bucket: dict[str, int] | None = None
        self._start = 0.0

    def __enter__(self) -> ProfileNode:
        self._profiler._stack.append(self._node)
        self._previous_bucket = self._profiler.collector.set_operator(self._node.hits)
        self._start = time.perf_counter()
        return self._node

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._node.seconds = time.perf_counter() - self._start
        self._profiler.collector.set_operator(self._previous_bucket)
        stack = self._profiler._stack
        if stack and stack[-1] is self._node:
            stack.pop()
        return False


class Profiler:
    """Collects the operator tree for one query execution.

    Not thread-safe by design: one profiler serves one run on one
    thread (the engine creates one per profiled ``run()``).
    """

    def __init__(self) -> None:
        self.collector = AccessCollector()
        self.root = ProfileNode("Query")
        self._stack: list[ProfileNode] = [self.root]

    def operator(self, name: str, detail: str = "") -> _OperatorContext:
        """Open a child operator of the currently executing one."""
        node = ProfileNode(name, detail)
        self._stack[-1].children.append(node)
        return _OperatorContext(self, node)

    def finish(self, rows: int) -> ProfileNode:
        """Close the tree: total rows, total time, aggregate hits.

        Each store event was attributed to exactly one operator bucket
        (or to the collector's unbucketed ``hits``), so the root totals
        are the disjoint union of all of them.
        """
        root = self.root
        root.rows = rows
        root.seconds = sum(child.seconds for child in root.children)
        totals = dict(self.collector.hits)
        for node in root.walk():
            if node is root:
                continue
            for kind, count in node.hits.items():
                totals[kind] = totals.get(kind, 0) + count
        root.hits = totals
        return root
