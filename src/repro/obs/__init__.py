"""Observability: spans, store-access recording, PROFILE, slow-query log.

The paper's public IYP instance leans on Neo4j's operational tooling —
``PROFILE`` plans, the query log, per-crawler ingestion counters.  This
package is the reproduction's equivalent, zero-dependency and threaded
through every layer:

- :mod:`repro.obs.trace` — a lightweight span tracer.  Spans nest via a
  thread-local stack, completed traces live in a bounded ring, and trace
  ids flow HTTP request → admission → engine → matcher → store.
- :mod:`repro.obs.record` — thread-local store-access recording.  The
  graph store reports each index seek / label scan / full scan / expand
  to the collector installed for the current thread (a no-op otherwise),
  which is what gives PROFILE its per-operator store-hit counts and the
  pipeline its per-crawler created/merged counters.
- :mod:`repro.obs.profile` — the operator tree built during a profiled
  run: rows produced, store hits, and wall time per executed clause.
- :mod:`repro.obs.slowlog` — a bounded ring of queries that blew a
  latency threshold, each with its params hash, trace id, fingerprint,
  resource counters, and plan.
- :mod:`repro.obs.statements` — ``pg_stat_statements`` for the service:
  a bounded registry of per-fingerprint aggregates (calls, rows, latency
  histogram, cache hits, resource counters) behind ``/debug/statements``
  and ``repro top``.
- :mod:`repro.obs.slo` — rolling-window latency/availability objectives
  with burn-rate and remaining-error-budget gauges for ``/metrics``.
- :mod:`repro.obs.quality` — cross-source data-quality telemetry:
  per-crawler freshness, coverage, and fusion agreement derived from
  build reports and archive manifests (``repro quality``).

Nothing in here imports the engine, store, or server, so every layer can
depend on it without cycles.  (Query fingerprinting itself lives in
:mod:`repro.cypher.fingerprint`, next to the AST it walks; the registry
here only ever sees fingerprint strings.)
"""

from repro.obs.quality import (
    archive_quality,
    crawler_quality,
    quality_gauges,
    render_quality_report,
    utc_timestamp,
)
from repro.obs.record import (
    AccessCollector,
    collecting,
    current_collector,
    record_access,
)
from repro.obs.profile import ProfileNode, Profiler
from repro.obs.slo import SLOTracker
from repro.obs.slowlog import SlowQueryLog
from repro.obs.statements import StatementRegistry, StatementStats
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "AccessCollector",
    "NULL_TRACER",
    "ProfileNode",
    "Profiler",
    "SLOTracker",
    "SlowQueryLog",
    "Span",
    "StatementRegistry",
    "StatementStats",
    "Tracer",
    "archive_quality",
    "collecting",
    "crawler_quality",
    "current_collector",
    "quality_gauges",
    "record_access",
    "render_quality_report",
    "utc_timestamp",
]
