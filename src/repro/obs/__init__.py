"""Observability: spans, store-access recording, PROFILE, slow-query log.

The paper's public IYP instance leans on Neo4j's operational tooling —
``PROFILE`` plans, the query log, per-crawler ingestion counters.  This
package is the reproduction's equivalent, zero-dependency and threaded
through every layer:

- :mod:`repro.obs.trace` — a lightweight span tracer.  Spans nest via a
  thread-local stack, completed traces live in a bounded ring, and trace
  ids flow HTTP request → admission → engine → matcher → store.
- :mod:`repro.obs.record` — thread-local store-access recording.  The
  graph store reports each index seek / label scan / full scan / expand
  to the collector installed for the current thread (a no-op otherwise),
  which is what gives PROFILE its per-operator store-hit counts and the
  pipeline its per-crawler created/merged counters.
- :mod:`repro.obs.profile` — the operator tree built during a profiled
  run: rows produced, store hits, and wall time per executed clause.
- :mod:`repro.obs.slowlog` — a bounded ring of queries that blew a
  latency threshold, each with its params hash, trace id, and plan.

Nothing in here imports the engine, store, or server, so every layer can
depend on it without cycles.
"""

from repro.obs.record import (
    AccessCollector,
    collecting,
    current_collector,
    record_access,
)
from repro.obs.profile import ProfileNode, Profiler
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "AccessCollector",
    "NULL_TRACER",
    "ProfileNode",
    "Profiler",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "collecting",
    "current_collector",
    "record_access",
]
