"""Statement statistics: ``pg_stat_statements`` for the query service.

One :class:`StatementStats` per query *fingerprint* (see
:mod:`repro.cypher.fingerprint`): call and error counts, rows returned,
a fixed-bucket latency histogram with percentile estimation, result- and
parse-cache hits, and the per-query resource counters the engine /
matcher / store report through :mod:`repro.obs.record` (nodes scanned,
relationships expanded, binds attempted, procedure-cache hits, bytes
serialized).

The registry is bounded: when more distinct fingerprints than
``capacity`` have been seen, the *coldest* (least recently recorded)
aggregate is evicted, so an adversarial stream of distinct query shapes
holds a constant amount of memory while the hot statements an operator
actually cares about are never displaced.  ``evicted_total`` keeps
counting so a scrape can tell "small workload" from "churning registry".

Everything is guarded by one lock; a record is a dict lookup, a dozen
integer adds, and one bucket increment — negligible next to executing
the query it describes (guarded by the <5% CI benchmark in
``benchmarks/test_server_throughput.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Iterable, Mapping

#: Histogram bucket upper bounds in seconds (+Inf implicit).  Finer at
#: the bottom than the service-level histogram: per-statement latencies
#: on an in-memory store are routinely sub-millisecond.
STATEMENT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Distinct fingerprints kept by default.
DEFAULT_CAPACITY = 512

#: Normalized query text is truncated in aggregates beyond this.
MAX_TEXT_CHARS = 500

#: Keys allowed to sort a snapshot (``GET /debug/statements?sort=``).
SORT_KEYS = ("total_seconds", "calls", "rows", "mean_ms", "p99_ms")


class StatementStats:
    """Aggregates for one statement fingerprint."""

    __slots__ = (
        "fingerprint",
        "query",
        "calls",
        "rows",
        "errors",
        "cache_hits",
        "latency_sum",
        "latency_min",
        "latency_max",
        "buckets",
        "counters",
        "first_seen",
        "last_seen",
    )

    def __init__(self, fingerprint: str, query: str):
        self.fingerprint = fingerprint
        self.query = query[:MAX_TEXT_CHARS]
        self.calls = 0
        self.rows = 0
        #: error code -> count (timeout, row_limit, busy, ...).
        self.errors: dict[str, int] = {}
        #: result-cache hits among ``calls``.
        self.cache_hits = 0
        self.latency_sum = 0.0
        self.latency_min = float("inf")
        self.latency_max = 0.0
        self.buckets = [0] * (len(STATEMENT_BUCKETS) + 1)  # last = +Inf
        #: resource counters (nodes_scanned, rels_expanded, ...).
        self.counters: dict[str, int] = {}
        self.first_seen = time.time()
        self.last_seen = self.first_seen

    # -- recording -------------------------------------------------------

    def observe(
        self,
        elapsed: float,
        rows: int,
        cached: bool,
        error: str | None,
        counters: Mapping[str, int] | None,
    ) -> None:
        self.calls += 1
        self.rows += rows
        if cached:
            self.cache_hits += 1
        if error is not None:
            self.errors[error] = self.errors.get(error, 0) + 1
        self.latency_sum += elapsed
        if elapsed < self.latency_min:
            self.latency_min = elapsed
        if elapsed > self.latency_max:
            self.latency_max = elapsed
        for index, bound in enumerate(STATEMENT_BUCKETS):
            if elapsed <= bound:
                self.buckets[index] += 1
                break
        else:
            self.buckets[-1] += 1
        if counters:
            own = self.counters
            for kind, count in counters.items():
                own[kind] = own.get(kind, 0) + count
        self.last_seen = time.time()

    # -- reading ---------------------------------------------------------

    def percentile(self, quantile: float) -> float:
        """Estimate a latency percentile (seconds) from the histogram.

        Linear interpolation inside the bucket that contains the target
        rank; the open-ended +Inf bucket reports the observed maximum.
        The estimate is always within the true percentile's bucket, so
        the error is bounded by that bucket's width (the property the
        registry tests assert against a sorted reference).
        """
        if not self.calls:
            return 0.0
        target = quantile / 100.0 * self.calls
        cumulative = 0
        for index, count in enumerate(self.buckets):
            if not count:
                continue
            lower = STATEMENT_BUCKETS[index - 1] if index else 0.0
            if index >= len(STATEMENT_BUCKETS):  # +Inf bucket
                return self.latency_max
            upper = STATEMENT_BUCKETS[index]
            if cumulative + count >= target:
                fraction = (target - cumulative) / count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                # Never report outside the observed range.
                return max(self.latency_min, min(self.latency_max, estimate))
            cumulative += count
        return self.latency_max

    def to_dict(self) -> dict[str, Any]:
        mean = self.latency_sum / self.calls if self.calls else 0.0
        return {
            "fingerprint": self.fingerprint,
            "query": self.query,
            "calls": self.calls,
            "rows": self.rows,
            "errors": dict(sorted(self.errors.items())),
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hits / self.calls, 4)
            if self.calls
            else 0.0,
            "total_seconds": round(self.latency_sum, 6),
            "mean_ms": round(mean * 1000, 3),
            "min_ms": round(self.latency_min * 1000, 3)
            if self.calls
            else 0.0,
            "max_ms": round(self.latency_max * 1000, 3),
            "p50_ms": round(self.percentile(50) * 1000, 3),
            "p95_ms": round(self.percentile(95) * 1000, 3),
            "p99_ms": round(self.percentile(99) * 1000, 3),
            "counters": dict(sorted(self.counters.items())),
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }


class StatementRegistry:
    """Thread-safe bounded registry of per-fingerprint aggregates."""

    GUARDED_BY = {
        "_statements": "_lock",
        "recorded_total": "write:_lock",
        "evicted_total": "write:_lock",
        "capacity": "frozen",
    }

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: fingerprint -> stats, least recently *recorded* first.
        self._statements: OrderedDict[str, StatementStats] = OrderedDict()
        self.recorded_total = 0
        self.evicted_total = 0

    def record(
        self,
        fingerprint: str,
        query: str,
        *,
        elapsed: float,
        rows: int = 0,
        cached: bool = False,
        error: str | None = None,
        counters: Mapping[str, int] | None = None,
    ) -> None:
        """Fold one execution into its fingerprint's aggregate."""
        with self._lock:
            stats = self._statements.get(fingerprint)
            if stats is None:
                stats = StatementStats(fingerprint, query)
                self._statements[fingerprint] = stats
                while len(self._statements) > self.capacity:
                    self._statements.popitem(last=False)
                    self.evicted_total += 1
            else:
                self._statements.move_to_end(fingerprint)
            stats.observe(elapsed, rows, cached, error, counters)
            self.recorded_total += 1

    def note_counter(self, fingerprint: str, kind: str, count: int) -> None:
        """Add to one resource counter after the fact (e.g. the HTTP
        layer reporting ``bytes_serialized`` once the response body is
        actually encoded).  Unknown fingerprints (evicted, or stats
        recorded by another path) are dropped silently."""
        if count <= 0:
            return
        with self._lock:
            stats = self._statements.get(fingerprint)
            if stats is not None:
                stats.counters[kind] = stats.counters.get(kind, 0) + count

    # -- reading ---------------------------------------------------------

    def get(self, fingerprint: str) -> StatementStats | None:
        with self._lock:
            return self._statements.get(fingerprint)

    def snapshot(
        self, top: int | None = None, sort: str = "total_seconds"
    ) -> dict[str, Any]:
        """JSON-able view for ``GET /debug/statements`` and ``repro top``,
        hottest statements first by ``sort`` (default total time)."""
        if sort not in SORT_KEYS:
            raise ValueError(
                f"unknown sort key {sort!r} (one of: {', '.join(SORT_KEYS)})"
            )
        with self._lock:
            rows = [stats.to_dict() for stats in self._statements.values()]
            tracked = len(self._statements)
            recorded_total = self.recorded_total
            evicted_total = self.evicted_total
        rows.sort(key=lambda item: item[sort], reverse=True)
        if top is not None:
            rows = rows[: max(0, top)]
        return {
            "capacity": self.capacity,
            "statements_tracked": tracked,
            "recorded_total": recorded_total,
            "evicted_total": evicted_total,
            "sort": sort,
            "statements": rows,
        }

    def info(self) -> dict[str, Any]:
        """Occupancy summary for /stats and /metrics."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "statements_tracked": len(self._statements),
                "recorded_total": self.recorded_total,
                "evicted_total": self.evicted_total,
            }

    def format_text(self, top: int = 10) -> str:
        """Human-readable dump (printed on server shutdown)."""
        snapshot = self.snapshot(top=top)
        rows = snapshot["statements"]
        if not rows:
            return ""
        lines = [
            f"top {len(rows)} of {snapshot['statements_tracked']} statement(s) "
            f"by total time ({snapshot['recorded_total']} calls recorded):",
            f"  {'calls':>7} {'rows':>9} {'p50ms':>8} {'p99ms':>8} "
            f"{'total s':>9} {'hit%':>5}  query",
        ]
        for row in rows:
            lines.append(
                f"  {row['calls']:>7,} {row['rows']:>9,} {row['p50_ms']:>8.2f} "
                f"{row['p99_ms']:>8.2f} {row['total_seconds']:>9.3f} "
                f"{row['cache_hit_rate'] * 100:>5.1f}  "
                f"{row['query'][:80]}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._statements.clear()

    def fingerprints(self) -> Iterable[str]:
        with self._lock:
            return list(self._statements)

    def __len__(self) -> int:
        with self._lock:
            return len(self._statements)
