"""SLO tracking: rolling-window error budgets for the query service.

Two objectives, both configurable:

- **latency**: the fraction of successful queries answered within
  ``latency_threshold`` seconds must be at least ``latency_target``
  (e.g. 99.5% under 100ms).
- **availability**: the fraction of queries that do not fail
  *operationally* must be at least ``availability_target``.  Client
  errors (bad syntax, unknown labels) are the caller's fault and do not
  burn budget; timeouts, admission rejections, row-limit truncation,
  and internal errors do — :data:`BUDGET_BURNING_ERRORS`.

Observations land in coarse time buckets (default 10s) kept over a
rolling window (default 1h), so the tracker is O(window/bucket) memory
regardless of traffic and old traffic ages out without bookkeeping.
For each objective the tracker derives, Google-SRE-workbook style:

- ``compliance``    — good / total over the window;
- ``error_budget``  — allowed bad fraction, ``1 - target``;
- ``budget_remaining`` — share of the window's budget left, in [0, 1]
  (0 = budget exhausted or overspent);
- ``burn_rate``     — observed bad fraction / allowed bad fraction
  (1.0 = burning exactly the budget; >1 = on track to exhaust it).

All of it is exported as gauges on ``/metrics`` (``slo_*``) and in
the ``slo`` block of ``/stats``.

The clock is injectable (``now=``) so tests can march time forward
deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.concurrency import guarded_by

#: Operational error codes that burn availability budget.  Everything
#: else (syntax, unknown_parameter, bad_request, ...) is a client error.
BUDGET_BURNING_ERRORS = frozenset({"timeout", "busy", "row_limit", "internal"})

DEFAULT_LATENCY_THRESHOLD = 0.1  # seconds
DEFAULT_LATENCY_TARGET = 0.995
DEFAULT_AVAILABILITY_TARGET = 0.999
DEFAULT_WINDOW_SECONDS = 3600.0
DEFAULT_BUCKET_SECONDS = 10.0


class _Bucket:
    __slots__ = ("start", "total", "slow", "errors", "client_errors")

    def __init__(self, start: float):
        self.start = start
        self.total = 0       # all finished queries
        self.slow = 0        # successes over the latency threshold
        self.errors = 0      # budget-burning failures
        self.client_errors = 0  # failures that do not burn budget


class SLOTracker:
    """Rolling-window latency/availability objective tracker."""

    GUARDED_BY = {"_buckets": "_lock"}

    def __init__(
        self,
        *,
        latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
        latency_target: float = DEFAULT_LATENCY_TARGET,
        availability_target: float = DEFAULT_AVAILABILITY_TARGET,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        now: Callable[[], float] = time.time,
    ):
        if not 0.0 < latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if bucket_seconds <= 0 or window_seconds < bucket_seconds:
            raise ValueError("window must cover at least one bucket")
        self.latency_threshold = latency_threshold
        self.latency_target = latency_target
        self.availability_target = availability_target
        self.window_seconds = window_seconds
        self.bucket_seconds = bucket_seconds
        self._now = now
        self._lock = threading.Lock()
        self._buckets: list[_Bucket] = []

    # -- recording -------------------------------------------------------

    def observe(self, elapsed: float, error: str | None = None) -> None:
        """Record one finished query (``error`` is the service's error
        code, ``None`` on success)."""
        timestamp = self._now()
        with self._lock:
            bucket = self._bucket_for(timestamp)
            bucket.total += 1
            if error is None:
                if elapsed > self.latency_threshold:
                    bucket.slow += 1
            elif error in BUDGET_BURNING_ERRORS:
                bucket.errors += 1
            else:
                bucket.client_errors += 1

    @guarded_by("_lock")
    def _bucket_for(self, timestamp: float) -> _Bucket:
        start = timestamp - (timestamp % self.bucket_seconds)
        if self._buckets and self._buckets[-1].start == start:
            return self._buckets[-1]
        bucket = _Bucket(start)
        self._buckets.append(bucket)
        self._evict(timestamp)
        return bucket

    @guarded_by("_lock")
    def _evict(self, timestamp: float) -> None:
        horizon = timestamp - self.window_seconds
        while self._buckets and self._buckets[0].start < horizon:
            self._buckets.pop(0)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Both objectives' compliance / burn rate / remaining budget
        over the rolling window, for ``/stats`` and ``/metrics``."""
        timestamp = self._now()
        with self._lock:
            self._evict(timestamp)
            total = sum(b.total for b in self._buckets)
            slow = sum(b.slow for b in self._buckets)
            errors = sum(b.errors for b in self._buckets)
            client_errors = sum(b.client_errors for b in self._buckets)
        successes = total - errors - client_errors
        latency_eligible = successes + errors  # errors are also "not fast"
        return {
            "window_seconds": self.window_seconds,
            "queries_in_window": total,
            "latency": self._objective(
                target=self.latency_target,
                threshold_ms=self.latency_threshold * 1000,
                good=latency_eligible - slow - errors,
                total=latency_eligible,
            ),
            "availability": self._objective(
                target=self.availability_target,
                threshold_ms=None,
                good=total - errors,
                total=total,
            ),
        }

    @staticmethod
    def _objective(
        target: float, threshold_ms: float | None, good: int, total: int
    ) -> dict[str, Any]:
        budget = 1.0 - target
        if total <= 0:
            # No traffic: fully compliant, full budget, nothing burning.
            compliance, burn_rate, remaining = 1.0, 0.0, 1.0
        else:
            compliance = good / total
            bad_fraction = 1.0 - compliance
            burn_rate = bad_fraction / budget
            remaining = max(0.0, 1.0 - burn_rate)
        result = {
            "target": target,
            "compliance": round(compliance, 6),
            "error_budget": round(budget, 6),
            "budget_remaining": round(remaining, 6),
            "burn_rate": round(burn_rate, 4),
            "good": good,
            "total": total,
        }
        if threshold_ms is not None:
            result["threshold_ms"] = threshold_ms
        return result

    def gauges(self) -> dict[str, float]:
        """Flat ``slo_*`` gauge map merged into ``/metrics``."""
        snapshot = self.snapshot()
        out: dict[str, float] = {
            "slo_window_seconds": self.window_seconds,
            "slo_queries_in_window": float(snapshot["queries_in_window"]),
        }
        for name in ("latency", "availability"):
            objective = snapshot[name]
            prefix = f"slo_{name}"
            out[f"{prefix}_target"] = objective["target"]
            out[f"{prefix}_compliance"] = objective["compliance"]
            out[f"{prefix}_budget_remaining"] = objective["budget_remaining"]
            out[f"{prefix}_burn_rate"] = objective["burn_rate"]
        return out

    def clear(self) -> None:
        with self._lock:
            self._buckets.clear()
