"""The slow-query log: a bounded ring of queries that blew a threshold.

Every entry records what an operator needs to act on a slow query
without re-running it: the query text, a stable hash of its parameters
(the parameters themselves may be large or sensitive), the trace id (to
pull the span tree while it is still buffered), the statement
fingerprint (joinable against ``GET /debug/statements`` to see whether a
slow query is an outlier or its whole statement class is slow), the
resource counters the run accumulated, the elapsed time, and — when the
query ran under a profiler — the annotated plan.

Aborted queries (timeout, row limit) are logged too, flagged with the
error code: the queries that *couldn't* finish are exactly the ones an
operator most wants to see.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from typing import Any

#: Query text is truncated in log entries beyond this many characters.
MAX_QUERY_CHARS = 2000


def params_hash(parameters: dict[str, Any] | None) -> str:
    """A short stable hash of a parameter map."""
    if not parameters:
        return "-"
    try:
        canonical = json.dumps(parameters, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        canonical = repr(sorted(parameters.items(), key=lambda kv: kv[0]))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class SlowQueryLog:
    """Thread-safe bounded ring of slow-query records."""

    GUARDED_BY = {
        "_entries": "_lock",
        # Mutations locked; the counter is read lock-free by /metrics.
        "recorded_total": "write:_lock",
        "threshold_seconds": "frozen",
        "capacity": "frozen",
    }

    def __init__(self, threshold_seconds: float = 1.0, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.recorded_total = 0

    def should_record(self, elapsed_seconds: float) -> bool:
        return elapsed_seconds >= self.threshold_seconds

    def record(
        self,
        query: str,
        elapsed_seconds: float,
        parameters: dict[str, Any] | None = None,
        trace_id: str | None = None,
        plan: dict[str, Any] | None = None,
        error: str | None = None,
        fingerprint: str | None = None,
        counters: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Append one slow-query entry (evicting the oldest when full)."""
        entry = {
            "time": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "query": query[:MAX_QUERY_CHARS],
            "params_hash": params_hash(parameters),
            "trace_id": trace_id,
            "fingerprint": fingerprint,
            "elapsed_ms": round(elapsed_seconds * 1000, 3),
            "counters": counters or {},
            "plan": plan,
            "error": error,
        }
        with self._lock:
            self._entries.append(entry)
            self.recorded_total += 1
        return entry

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view for ``GET /debug/slowlog``."""
        with self._lock:
            entries = list(self._entries)
        return {
            "threshold_seconds": self.threshold_seconds,
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "entries": entries,
        }

    def format_text(self) -> str:
        """Human-readable dump (printed on server shutdown)."""
        with self._lock:
            entries = list(self._entries)
        if not entries:
            return ""
        lines = [
            f"{len(entries)} slow quer{'y' if len(entries) == 1 else 'ies'} "
            f"(threshold {self.threshold_seconds:g}s, "
            f"{self.recorded_total} recorded in total):"
        ]
        for entry in entries:
            flag = f" [{entry['error']}]" if entry["error"] else ""
            lines.append(
                f"  {entry['time']} {entry['elapsed_ms']:.1f}ms{flag} "
                f"trace={entry['trace_id'] or '-'} "
                f"stmt={entry.get('fingerprint') or '-'} "
                f"params={entry['params_hash']} "
                f"query={' '.join(entry['query'].split())}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
