"""The in-memory property-graph store.

Storage layout:

- nodes and relationships live in dicts keyed by integer id;
- a label index maps each label to the set of node ids carrying it;
- optional (label, property) hash indexes accelerate equality seeks and
  back uniqueness constraints — IYP creates one per entity identifier
  (``AS.asn``, ``Prefix.prefix``, ...);
- adjacency is kept per ``(node, direction, relationship type)``: each
  node maps each incident type to a list of relationship ids, so typed
  expansion reads exactly the edges of that type — O(degree-of-type)
  instead of O(total-degree) with a post-filter, which is the difference
  between touching 3 edges and 30,000 on a Tier-1 AS.  A per
  node-pair-and-type index serves MERGE.

Concurrency: the store carries a readers-writer lock (see
:mod:`repro.graphdb.rwlock`) and a monotonic mutation ``version``
counter.  Every mutating method takes the write lock and bumps the
version, so concurrent read queries can hold :meth:`GraphStore.read_lock`
for their whole execution and observe a consistent graph, while caches
keyed on ``(query, params, version)`` invalidate automatically on any
write.  Read accessors themselves take no lock — callers that need
isolation against writers wrap their work in ``read_lock()``.
"""

from __future__ import annotations

import gc
from collections import defaultdict
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

if TYPE_CHECKING:
    from repro.delta.apply import DeltaApplyResult
    from repro.delta.records import DeltaBatch

from repro.graphdb.errors import (
    ConstraintViolationError,
    DanglingEndpointError,
    NoSuchNodeError,
    NoSuchRelationshipError,
)
from repro.graphdb.model import (
    Direction,
    Node,
    Relationship,
    check_property_value,
    freeze_properties,
)
from repro.concurrency import guarded_by
from repro.graphdb.rwlock import new_rwlock
from repro.obs.record import current_collector, record_access


def directional_count(out: int, inbound: int, loops: int, direction: Direction) -> int:
    """Combine per-direction incidence counts into one degree figure.

    Under ``Direction.BOTH`` a self-loop appears in both the outgoing
    and the incoming partition but is one relationship, so it is
    subtracted once.  :meth:`GraphStore.degree`,
    :meth:`GraphStore.degree_by_type` and the analytics degree
    histograms (:mod:`repro.analytics.measures`) all combine their raw
    counts through this helper, so the self-loop convention cannot
    diverge between them.
    """
    if direction is Direction.OUT:
        return out
    if direction is Direction.IN:
        return inbound
    return out + inbound - loops


@dataclass(frozen=True, slots=True)
class ChangeEvent:
    """One mutation observed while :meth:`GraphStore.track_changes` is active.

    ``kind`` is one of ``node_created`` / ``node_updated`` /
    ``node_deleted`` / ``label_added`` / ``rel_created`` /
    ``rel_updated`` / ``rel_deleted`` / ``rel_merged``.  Deletions carry
    before-images (labels/properties, and for relationships the type and
    endpoint ids) so a delta extractor can still identify the entity
    after it is gone; ``rel_merged`` marks a MERGE that matched an
    existing edge — no state changed, but incremental builds use it to
    tell "still asserted by this crawler" apart from "gone".
    """

    kind: str
    entity_id: int
    changes: Mapping[str, tuple[Any, Any]] | None = None
    labels: frozenset[str] | None = None
    properties: Mapping[str, Any] | None = None
    rel_type: str | None = None
    start_id: int | None = None
    end_id: int | None = None
    label: str | None = None


#: Event kinds that change graph *shape* (as opposed to property values).
STRUCTURAL_EVENT_KINDS = frozenset(
    {"node_created", "node_deleted", "label_added", "rel_created", "rel_deleted"}
)


class GraphStore:
    """An embedded label/property graph with hash indexes."""

    # The store's concurrency contract, checked by `repro check-concurrency`:
    # every internal map is mutated only under the write lock, while reads
    # are deliberately lock-free (callers needing isolation take read_lock()
    # for the whole query — see the module docstring).
    GUARDED_BY = {
        "_nodes": "write:_rwlock",
        "_relationships": "write:_rwlock",
        "_next_node_id": "write:_rwlock",
        "_next_rel_id": "write:_rwlock",
        "_label_index": "write:_rwlock",
        "_property_index": "write:_rwlock",
        "_unique_constraints": "write:_rwlock",
        "_outgoing": "write:_rwlock",
        "_incoming": "write:_rwlock",
        "_loop_counts": "write:_rwlock",
        "_edge_index": "write:_rwlock",
        "_rel_type_index": "write:_rwlock",
        "_version": "write:_rwlock",
        "_batch_depth": "write:_rwlock",
        "_changelog": "write:_rwlock",
    }

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._relationships: dict[int, Relationship] = {}
        self._next_node_id = 0
        self._next_rel_id = 0
        self._label_index: dict[str, set[int]] = defaultdict(set)
        # (label, property) -> value -> set of node ids
        self._property_index: dict[tuple[str, str], dict[Any, set[int]]] = {}
        self._unique_constraints: set[tuple[str, str]] = set()
        # Type-partitioned adjacency: node id -> rel type -> [rel ids].
        self._outgoing: dict[int, dict[str, list[int]]] = defaultdict(dict)
        self._incoming: dict[int, dict[str, list[int]]] = defaultdict(dict)
        # Self-loop counts per node and type: a loop appears in both the
        # outgoing and incoming partitions but is one relationship.
        self._loop_counts: dict[int, dict[str, int]] = {}
        # (start, type, end) -> list of relationship ids, for MERGE
        self._edge_index: dict[tuple[int, str, int], list[int]] = defaultdict(list)
        self._rel_type_index: dict[str, set[int]] = defaultdict(set)
        self._rwlock = new_rwlock("GraphStore._rwlock")
        self._version = 0
        # Depth of nested batch_mutation() scopes: while > 0, per-op
        # version bumps are suppressed and the outermost exit bumps once.
        self._batch_depth = 0
        # Change tracking sink, active only inside track_changes().
        self._changelog: list[ChangeEvent] | None = None

    # ------------------------------------------------------------------
    # Concurrency
    # ------------------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Short backend identifier for /stats and ``repro store-info``."""
        return "dict"

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every write."""
        return self._version

    def read_lock(self) -> AbstractContextManager[None]:
        """Shared lock: many readers, excluded while a writer runs."""
        return self._rwlock.read()

    def write_lock(self) -> AbstractContextManager[None]:
        """Exclusive lock; reentrant for the owning thread."""
        return self._rwlock.write()

    @contextmanager
    def _mutation(self) -> Iterator[None]:
        """Write lock + version bump around one mutating operation."""
        with self._rwlock.write():
            yield
            self._bump()

    @guarded_by("_rwlock")
    def _bump(self) -> None:
        """Bump the version, unless a batch_mutation() scope is active."""
        if self._batch_depth == 0:
            self._version += 1

    @contextmanager
    def batch_mutation(self) -> Iterator[None]:
        """Write lock + exactly one version bump around many mutations.

        Version-keyed caches (query results, precomputed procedure rows)
        invalidate per version, so applying a thousand-record delta
        through individual mutators would thrash them a thousand times.
        Inside this scope the per-operation bumps are suppressed and the
        outermost exit bumps once — even when the scope fails midway, so
        a partially applied batch can never serve stale cache entries.
        """
        with self._rwlock.write():
            self._batch_depth += 1
            try:
                yield
            finally:
                self._batch_depth -= 1
                if self._batch_depth == 0:
                    self._version += 1

    @contextmanager
    def track_changes(self) -> Iterator[list[ChangeEvent]]:
        """Record every mutation into the yielded list while active.

        The incremental build path (:mod:`repro.delta.extract`) turns the
        event stream into a DeltaBatch in O(changes) — without cloning
        the store or diffing two full snapshots.  Tracking is exclusive:
        nesting raises ``RuntimeError``.
        """
        events: list[ChangeEvent] = []
        with self._rwlock.write():
            if self._changelog is not None:
                raise RuntimeError("change tracking is already active")
            self._changelog = events
        try:
            yield events
        finally:
            with self._rwlock.write():
                self._changelog = None

    @guarded_by("_rwlock")
    def _log_event(self, event: ChangeEvent) -> None:
        changelog = self._changelog
        if changelog is not None:
            changelog.append(event)

    def apply_delta(self, batch: "DeltaBatch") -> "DeltaApplyResult":
        """Atomically apply a delta batch; see :func:`repro.delta.apply.apply_delta`."""
        from repro.delta.apply import apply_delta

        return apply_delta(self, batch)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes in the store."""
        return len(self._nodes)

    @property
    def relationship_count(self) -> int:
        """Number of relationships in the store."""
        return len(self._relationships)

    def label_counts(self) -> dict[str, int]:
        """Return node counts per label."""
        return {label: len(ids) for label, ids in self._label_index.items() if ids}

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label``, without materializing them.

        The matcher's cost model probes label sizes constantly; this
        avoids both building node lists for mere estimates and counting
        those probes as label scans in profiles.
        """
        return len(self._label_index.get(label, ()))

    def relationship_type_counts(self) -> dict[str, int]:
        """Return relationship counts per type."""
        return {t: len(ids) for t, ids in self._rel_type_index.items() if ids}

    def degree(self, node_id: int, direction: Direction = Direction.BOTH) -> int:
        """Return the degree of a node in the given direction.

        Under ``Direction.BOTH`` a self-loop counts once, consistent
        with :meth:`relationships_of`, which yields it once.
        """
        self._require_node(node_id)
        out = sum(map(len, self._outgoing.get(node_id, {}).values()))
        inbound = sum(map(len, self._incoming.get(node_id, {}).values()))
        loops = sum(self._loop_counts.get(node_id, {}).values())
        return directional_count(out, inbound, loops, direction)

    def degree_by_type(
        self, node_id: int, rel_type: str, direction: Direction = Direction.BOTH
    ) -> int:
        """Degree restricted to one relationship type, without touching
        edges of other types (the planner's expansion estimate)."""
        self._require_node(node_id)
        out = len(self._outgoing.get(node_id, {}).get(rel_type, ()))
        inbound = len(self._incoming.get(node_id, {}).get(rel_type, ()))
        loops = self._loop_counts.get(node_id, {}).get(rel_type, 0)
        return directional_count(out, inbound, loops, direction)

    # ------------------------------------------------------------------
    # Bulk accessors (the backend-neutral seam the analytics layer and
    # planner statistics iterate — see repro.graphdb.interface)
    # ------------------------------------------------------------------

    def node_ids(self) -> Iterable[int]:
        """Every node id, without materializing nodes."""
        return self._nodes.keys()

    def label_ids(self, label: str) -> Iterable[int]:
        """Ids of the nodes carrying ``label`` (a live set: do not mutate)."""
        return self._label_index.get(label, ())

    def node_labels(self, node_id: int) -> frozenset[str]:
        """The label set of one node (shared frozenset, do not mutate)."""
        return self._require_node(node_id).labels

    def node_property(self, node_id: int, key: str) -> Any:
        """One property value of one node, or None when absent."""
        return self._require_node(node_id).properties.get(key)

    def iter_edges(
        self, rel_type: str | None = None
    ) -> Iterator[tuple[str, int, int]]:
        """Yield ``(rel_type, start_id, end_id)`` per relationship.

        The analytics edge-list primitive: component labelling, PageRank
        and betweenness all consume endpoints only, so no property dicts
        are touched.
        """
        if rel_type is None:
            for rel in self._relationships.values():
                yield rel.type, rel.start_id, rel.end_id
        else:
            relationships = self._relationships
            for rel_id in self._rel_type_index.get(rel_type, ()):
                rel = relationships[rel_id]
                yield rel.type, rel.start_id, rel.end_id

    def typed_degrees(self, node_id: int) -> dict[str, tuple[int, int, int]]:
        """``{rel_type: (out, in, loops)}`` for the types a node touches."""
        out_part = self._outgoing.get(node_id) or {}
        in_part = self._incoming.get(node_id) or {}
        loop_part = self._loop_counts.get(node_id) or {}
        result: dict[str, tuple[int, int, int]] = {}
        for rel_type in set(out_part) | set(in_part):
            result[rel_type] = (
                len(out_part.get(rel_type, ())),
                len(in_part.get(rel_type, ())),
                loop_part.get(rel_type, 0),
            )
        return result

    def neighbor_ids(
        self,
        node_id: int,
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> Iterator[int]:
        """Neighbor node ids, one per incident relationship.

        The BFS primitive behind ``k_reach``: no Relationship objects
        are materialized.  A self-loop under ``Direction.BOTH`` yields
        the node twice (once per partition), matching the raw adjacency;
        traversals dedupe through their visited sets.
        """
        relationships = self._relationships
        if direction in (Direction.OUT, Direction.BOTH):
            partition = self._outgoing.get(node_id)
            if partition:
                buckets: Iterable[Iterable[int]] = (
                    partition.values()
                    if rel_type is None
                    else (partition.get(rel_type, ()),)
                )
                for rel_ids in buckets:
                    for rel_id in rel_ids:
                        yield relationships[rel_id].end_id
        if direction in (Direction.IN, Direction.BOTH):
            partition = self._incoming.get(node_id)
            if partition:
                buckets = (
                    partition.values()
                    if rel_type is None
                    else (partition.get(rel_type, ()),)
                )
                for rel_ids in buckets:
                    for rel_id in rel_ids:
                        yield relationships[rel_id].start_id

    def memory_info(self) -> dict[str, int]:
        """Estimated heap footprint in bytes, by component.

        ``sys.getsizeof`` sums over the object graph: container shells
        plus per-entity property dicts and their scalar values.  Interned
        strings shared across entities are counted once per occurrence —
        this is an estimate for capacity planning, not an audit.
        """
        import sys

        def sized(value: Any) -> int:
            total = sys.getsizeof(value)
            if isinstance(value, dict):
                total += sum(sized(k) + sized(v) for k, v in value.items())
            elif isinstance(value, (list, tuple, set, frozenset)):
                total += sum(sized(item) for item in value)
            return total

        nodes = sum(
            sys.getsizeof(node) + sized(node.properties)
            for node in self._nodes.values()
        ) + sys.getsizeof(self._nodes)
        rels = sum(
            sys.getsizeof(rel) + sized(rel.properties)
            for rel in self._relationships.values()
        ) + sys.getsizeof(self._relationships)
        adjacency = sum(
            sized(partition)
            for mapping in (self._outgoing, self._incoming, self._loop_counts)
            for partition in mapping.values()
        ) + sized(self._edge_index)
        indexes = (
            sized(self._label_index)
            + sized(self._property_index)
            + sized(self._rel_type_index)
        )
        total = nodes + rels + adjacency + indexes
        return {
            "nodes_bytes": nodes,
            "relationships_bytes": rels,
            "adjacency_bytes": adjacency,
            "indexes_bytes": indexes,
            "total_bytes": total,
        }

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        nodes: Iterable[tuple[int, Iterable[str], dict[str, Any]]],
        relationships: Iterable[tuple[int, str, int, int, dict[str, Any]]],
        indexes: Iterable[tuple[str, str]] = (),
        constraints: Iterable[tuple[str, str]] = (),
    ) -> "GraphStore":
        """Construct a store directly from pre-validated records.

        This is the fast path behind the binary snapshot loader
        (:mod:`repro.archive.format`): instead of replaying one locked
        ``create_node``/``create_relationship`` call per entity, the
        internal maps are populated in bulk and the hash indexes built in
        a single pass afterwards.  Ids are trusted to be unique, but
        relationship endpoints are validated against the node records —
        a dangling endpoint raises :class:`DanglingEndpointError` with
        the offending record's position instead of surfacing later as a
        ``KeyError`` mid-query — and uniqueness constraints are
        re-checked against the finished indexes (a cheap scan over
        distinct values) so a corrupted dump cannot smuggle duplicates
        past a constraint.

        ``nodes`` yields ``(id, labels, properties)``; ``relationships``
        yields ``(id, type, start_id, end_id, properties)``.  Property
        dicts are taken by reference, not copied.

        The cyclic garbage collector is paused for the duration: the
        build allocates millions of long-lived containers and none of
        them form cycles, so letting gen-2 collections rescan the
        growing heap multiple times roughly doubles the load time for
        nothing.
        """
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            store = cls()
            node_map = store._nodes
            label_index = store._label_index
            for node_id, labels, props in nodes:
                node_map[node_id] = Node(node_id, frozenset(labels), props)
                for label in labels:
                    label_index[label].add(node_id)
            constraint_pairs = {tuple(pair) for pair in constraints}
            for label, prop in {*map(tuple, indexes), *constraint_pairs}:
                index: dict[Any, set[int]] = defaultdict(set)
                for node_id in label_index.get(label, ()):
                    value = node_map[node_id].properties.get(prop)
                    if _indexable(value):
                        index[value].add(node_id)
                store._property_index[(label, prop)] = index
            for label, prop in sorted(constraint_pairs):
                for value, ids in store._property_index[(label, prop)].items():
                    if len(ids) > 1:
                        raise ConstraintViolationError(
                            f"existing duplicates for :{label}({prop}={value!r})"
                        )
                store._unique_constraints.add((label, prop))
            rel_map = store._relationships
            outgoing, incoming = store._outgoing, store._incoming
            loop_counts = store._loop_counts
            edge_index, type_index = store._edge_index, store._rel_type_index
            for position, (rel_id, rel_type, start_id, end_id, props) in enumerate(
                relationships
            ):
                # Endpoint validation: a dangling endpoint admitted here
                # would otherwise surface later as a KeyError in the
                # middle of a query expansion.
                if start_id not in node_map:
                    raise DanglingEndpointError(position, rel_id, "start", start_id)
                if end_id not in node_map:
                    raise DanglingEndpointError(position, rel_id, "end", end_id)
                rel_map[rel_id] = Relationship(
                    rel_id, rel_type, start_id, end_id, props
                )
                outgoing[start_id].setdefault(rel_type, []).append(rel_id)
                incoming[end_id].setdefault(rel_type, []).append(rel_id)
                if start_id == end_id:
                    loops = loop_counts.setdefault(start_id, {})
                    loops[rel_type] = loops.get(rel_type, 0) + 1
                edge_index[(start_id, rel_type, end_id)].append(rel_id)
                type_index[rel_type].add(rel_id)
            store._next_node_id = max(node_map, default=-1) + 1
            store._next_rel_id = max(rel_map, default=-1) + 1
            return store
        finally:
            if gc_was_enabled:
                gc.enable()

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def create_index(self, label: str, prop: str) -> None:
        """Create (idempotently) a hash index on (label, property)."""
        key = (label, prop)
        with self._rwlock.write():
            if key in self._property_index:
                return
            index: dict[Any, set[int]] = defaultdict(set)
            for node_id in self._label_index.get(label, ()):
                value = self._nodes[node_id].properties.get(prop)
                if _indexable(value):
                    index[value].add(node_id)
            self._property_index[key] = index
            self._bump()

    def create_unique_constraint(self, label: str, prop: str) -> None:
        """Create a uniqueness constraint (and backing index)."""
        with self._rwlock.write():
            self.create_index(label, prop)
            index = self._property_index[(label, prop)]
            for value, ids in index.items():
                if len(ids) > 1:
                    raise ConstraintViolationError(
                        f"existing duplicates for :{label}({prop}={value!r})"
                    )
            if (label, prop) not in self._unique_constraints:
                self._unique_constraints.add((label, prop))
                self._bump()

    def has_index(self, label: str, prop: str) -> bool:
        """Return True when an index exists on (label, property)."""
        return (label, prop) in self._property_index

    def indexes(self) -> list[tuple[str, str]]:
        """All (label, property) pairs carrying a hash index, sorted."""
        return sorted(self._property_index)

    def constraints(self) -> list[tuple[str, str]]:
        """All (label, property) uniqueness constraints, sorted."""
        return sorted(self._unique_constraints)

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------

    def create_node(
        self, labels: Iterable[str], properties: Mapping[str, Any] | None = None
    ) -> Node:
        """Create a node with the given labels and properties."""
        with self._mutation():
            label_set = frozenset(labels)
            props = freeze_properties(properties)
            self._check_unique(label_set, props, exclude_id=None)
            record_access("node_created")
            node = Node(self._next_node_id, label_set, props)
            self._next_node_id += 1
            self._nodes[node.id] = node
            for label in label_set:
                self._label_index[label].add(node.id)
                self._index_node_property_updates(label, node.id, props)
            if self._changelog is not None:
                self._log_event(ChangeEvent("node_created", node.id))
            return node

    def merge_node(
        self,
        label: str,
        key_prop: str,
        key_value: Any,
        properties: Mapping[str, Any] | None = None,
        extra_labels: Iterable[str] = (),
    ) -> Node:
        """Get-or-create a node by its identifying (label, property, value).

        This implements IYP's canonical-identifier deduplication: the first
        caller creates the node, later callers receive the existing one
        (with ``properties`` merged in and ``extra_labels`` added).
        """
        # Hold the write lock across find-then-create so two concurrent
        # merges of the same identifier cannot both create the node.
        with self._rwlock.write():
            self.create_index(label, key_prop)
            existing = self.find_nodes(label, key_prop, key_value)
            if existing:
                node = existing[0]
                record_access("node_merged")
                if properties:
                    self.update_node(node.id, properties)
                for extra in extra_labels:
                    self.add_label(node.id, extra)
                return node
            props = dict(properties or {})
            props[key_prop] = key_value
            return self.create_node({label, *extra_labels}, props)

    def get_node(self, node_id: int) -> Node:
        """Return the node with the given id."""
        return self._require_node(node_id)

    def has_node(self, node_id: int) -> bool:
        """Return True when the node id exists."""
        return node_id in self._nodes

    def nodes_with_label(self, label: str) -> list[Node]:
        """Return all nodes carrying ``label``, sorted by id.

        The sort makes unordered query output deterministic across runs
        (label-index sets carry no reliable order of their own).
        """
        collector = current_collector()
        if collector is not None:
            collector.record("label_scan")
        nodes = [self._nodes[i] for i in sorted(self._label_index.get(label, ()))]
        if nodes and collector is not None:
            collector.record("nodes_scanned", len(nodes))
        return nodes

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node in the store."""
        record_access("full_scan")
        return iter(self._nodes.values())

    def find_nodes(self, label: str, prop: str, value: Any) -> list[Node]:
        """Return nodes with ``label`` whose ``prop`` equals ``value``.

        Uses the hash index when one exists, otherwise scans the label.
        """
        collector = current_collector()
        index = self._property_index.get((label, prop))
        if index is not None and _indexable(value):
            if collector is not None:
                collector.record("index_seek")
            nodes = [self._nodes[i] for i in sorted(index.get(value, ()))]
        else:
            if collector is not None:
                collector.record("label_scan")
            nodes = [
                self._nodes[i]
                for i in sorted(self._label_index.get(label, ()))
                if self._nodes[i].properties.get(prop) == value
            ]
        if nodes and collector is not None:
            collector.record("nodes_scanned", len(nodes))
        return nodes

    def add_label(self, node_id: int, label: str) -> None:
        """Add a label to an existing node."""
        with self._rwlock.write():
            node = self._require_node(node_id)
            if label in node.labels:
                return
            node.labels = node.labels | {label}
            self._label_index[label].add(node_id)
            self._index_node_property_updates(label, node_id, node.properties)
            if self._changelog is not None:
                self._log_event(ChangeEvent("label_added", node_id, label=label))
            self._bump()

    def update_node(self, node_id: int, properties: Mapping[str, Any]) -> None:
        """Merge properties into a node (None values delete the key)."""
        with self._mutation():
            self._update_node_locked(node_id, properties)

    @guarded_by("_rwlock")
    def _update_node_locked(self, node_id: int, properties: Mapping[str, Any]) -> None:
        self._rwlock.check_write_held()
        node = self._require_node(node_id)
        changed: dict[str, tuple[Any, Any]] = {}
        for key, value in properties.items():
            old = node.properties.get(key)
            if value is None:
                if key in node.properties:
                    del node.properties[key]
                    self._deindex_value(node, key, old)
                    changed[key] = (old, None)
                continue
            check_property_value(value)
            if isinstance(value, tuple):
                value = list(value)
            if old == value and type(old) is type(value):
                continue
            self._check_unique(node.labels, {key: value}, exclude_id=node_id)
            self._deindex_value(node, key, old)
            node.properties[key] = value
            changed[key] = (old, value)
            for label in node.labels:
                self._index_node_property_updates(label, node_id, {key: value})
        if changed and self._changelog is not None:
            self._log_event(ChangeEvent("node_updated", node_id, changes=changed))

    def delete_node(self, node_id: int, detach: bool = False) -> None:
        """Delete a node; with ``detach`` also delete incident edges."""
        with self._mutation():
            node = self._require_node(node_id)
            incident = [
                rel_id
                for partition in (
                    self._outgoing.get(node_id, {}),
                    self._incoming.get(node_id, {}),
                )
                for ids in partition.values()
                for rel_id in ids
            ]
            if incident and not detach:
                raise ConstraintViolationError(
                    f"node {node_id} still has {len(incident)} relationship(s)"
                )
            for rel_id in set(incident):
                self.delete_relationship(rel_id)
            for label in node.labels:
                self._label_index[label].discard(node_id)
                for key, value in node.properties.items():
                    index = self._property_index.get((label, key))
                    if index is not None and _indexable(value):
                        index.get(value, set()).discard(node_id)
            self._outgoing.pop(node_id, None)
            self._incoming.pop(node_id, None)
            self._loop_counts.pop(node_id, None)
            del self._nodes[node_id]
            if self._changelog is not None:
                # Logged after the incident-edge deletions so the event
                # stream replays in a valid order, with before-images for
                # identity resolution after the node is gone.
                self._log_event(
                    ChangeEvent(
                        "node_deleted",
                        node_id,
                        labels=node.labels,
                        properties=dict(node.properties),
                    )
                )

    # ------------------------------------------------------------------
    # Relationship operations
    # ------------------------------------------------------------------

    def create_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
    ) -> Relationship:
        """Create a directed relationship between two existing nodes."""
        with self._mutation():
            self._require_node(start_id)
            self._require_node(end_id)
            record_access("rel_created")
            rel = Relationship(
                self._next_rel_id, rel_type, start_id, end_id,
                freeze_properties(properties),
            )
            self._next_rel_id += 1
            self._relationships[rel.id] = rel
            self._outgoing[start_id].setdefault(rel_type, []).append(rel.id)
            self._incoming[end_id].setdefault(rel_type, []).append(rel.id)
            if start_id == end_id:
                loops = self._loop_counts.setdefault(start_id, {})
                loops[rel_type] = loops.get(rel_type, 0) + 1
            self._edge_index[(start_id, rel_type, end_id)].append(rel.id)
            self._rel_type_index[rel_type].add(rel.id)
            if self._changelog is not None:
                self._log_event(ChangeEvent("rel_created", rel.id))
            return rel

    def merge_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
        match_props: Mapping[str, Any] | None = None,
    ) -> Relationship:
        """Get-or-create a relationship between two nodes.

        When ``match_props`` is given, an existing edge matches only if it
        carries those exact property values — IYP uses ``reference_name``
        here so the same semantic link from two datasets stays distinct.
        """
        with self._rwlock.write():
            return self._merge_relationship_locked(
                start_id, rel_type, end_id, properties, match_props
            )

    @guarded_by("_rwlock")
    def _merge_relationship_locked(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None,
        match_props: Mapping[str, Any] | None,
    ) -> Relationship:
        self._rwlock.check_write_held()
        for rel_id in self._edge_index.get((start_id, rel_type, end_id), ()):
            rel = self._relationships[rel_id]
            if match_props and any(
                rel.properties.get(k) != v for k, v in match_props.items()
            ):
                continue
            record_access("rel_merged")
            if self._changelog is not None:
                self._log_event(ChangeEvent("rel_merged", rel_id))
            if properties:
                self.update_relationship(rel_id, properties)
            return rel
        merged = dict(properties or {})
        if match_props:
            merged.update(match_props)
        return self.create_relationship(start_id, rel_type, end_id, merged)

    def get_relationship(self, rel_id: int) -> Relationship:
        """Return the relationship with the given id."""
        rel = self._relationships.get(rel_id)
        if rel is None:
            raise NoSuchRelationshipError(f"no relationship with id {rel_id}")
        return rel

    def iter_relationships(self) -> Iterator[Relationship]:
        """Yield every relationship in the store."""
        return iter(self._relationships.values())

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        rel_type: str | None = None,
    ) -> list[Relationship]:
        """Return relationships incident to a node.

        With ``rel_type`` the typed adjacency partition is read directly
        — O(degree-of-type), never touching edges of other types.
        ``Direction.BOTH`` deduplicates self-loops (an edge from a node
        to itself is returned once).
        """
        collector = current_collector()
        if collector is not None:
            collector.record("expand")
        self._require_node(node_id)
        relationships = self._relationships
        result: list[Relationship] = []
        if direction in (Direction.OUT, Direction.BOTH):
            partition = self._outgoing.get(node_id)
            if partition:
                if rel_type is None:
                    for ids in partition.values():
                        result.extend(relationships[i] for i in ids)
                else:
                    result.extend(
                        relationships[i] for i in partition.get(rel_type, ())
                    )
        if direction in (Direction.IN, Direction.BOTH):
            partition = self._incoming.get(node_id)
            if partition:
                dedupe = direction is Direction.BOTH
                buckets = (
                    partition.values()
                    if rel_type is None
                    else (partition.get(rel_type, ()),)
                )
                for ids in buckets:
                    for rel_id in ids:
                        rel = relationships[rel_id]
                        if dedupe and rel.start_id == rel.end_id:
                            continue  # self-loop already in the outgoing list
                        result.append(rel)
        if result and collector is not None:
            collector.record("rels_expanded", len(result))
        return result

    def relationships_with_type(self, rel_type: str) -> list[Relationship]:
        """Return all relationships of the given type."""
        return [self._relationships[i] for i in self._rel_type_index.get(rel_type, ())]

    def relationships_between(
        self, start_id: int, end_id: int, rel_type: str | None = None
    ) -> list[Relationship]:
        """Return directed relationships from ``start_id`` to ``end_id``."""
        if rel_type is not None:
            ids = self._edge_index.get((start_id, rel_type, end_id), ())
            return [self._relationships[i] for i in ids]
        return [
            self._relationships[i]
            for ids in self._outgoing.get(start_id, {}).values()
            for i in ids
            if self._relationships[i].end_id == end_id
        ]

    def update_relationship(self, rel_id: int, properties: Mapping[str, Any]) -> None:
        """Merge properties into a relationship (None deletes the key).

        Writes that leave a value unchanged (same value, same type) are
        skipped, mirroring node updates — a re-run crawler MERGE-ing the
        same provenance properties produces no change events.
        """
        with self._mutation():
            rel = self.get_relationship(rel_id)
            changed: dict[str, tuple[Any, Any]] = {}
            for key, value in properties.items():
                old = rel.properties.get(key)
                if value is None:
                    if key in rel.properties:
                        del rel.properties[key]
                        changed[key] = (old, None)
                    continue
                check_property_value(value)
                if isinstance(value, tuple):
                    value = list(value)
                if old == value and type(old) is type(value):
                    continue
                rel.properties[key] = value
                changed[key] = (old, value)
            if changed and self._changelog is not None:
                self._log_event(ChangeEvent("rel_updated", rel_id, changes=changed))

    def delete_relationship(self, rel_id: int) -> None:
        """Delete a relationship."""
        with self._mutation():
            rel = self.get_relationship(rel_id)
            for partition, node_id in (
                (self._outgoing, rel.start_id),
                (self._incoming, rel.end_id),
            ):
                bucket = partition[node_id][rel.type]
                bucket.remove(rel_id)
                if not bucket:
                    del partition[node_id][rel.type]
            if rel.start_id == rel.end_id:
                loops = self._loop_counts[rel.start_id]
                loops[rel.type] -= 1
                if not loops[rel.type]:
                    del loops[rel.type]
                if not loops:
                    del self._loop_counts[rel.start_id]
            self._edge_index[(rel.start_id, rel.type, rel.end_id)].remove(rel_id)
            self._rel_type_index[rel.type].discard(rel_id)
            del self._relationships[rel_id]
            if self._changelog is not None:
                self._log_event(
                    ChangeEvent(
                        "rel_deleted",
                        rel_id,
                        properties=dict(rel.properties),
                        rel_type=rel.type,
                        start_id=rel.start_id,
                        end_id=rel.end_id,
                    )
                )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_node(self, node_id: int) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise NoSuchNodeError(f"no node with id {node_id}")
        return node

    def _index_node_property_updates(
        self, label: str, node_id: int, props: Mapping[str, Any]
    ) -> None:
        for key, value in props.items():
            index = self._property_index.get((label, key))
            if index is not None and _indexable(value):
                index[value].add(node_id)

    def _deindex_value(self, node: Node, key: str, old: Any) -> None:
        if old is None or not _indexable(old):
            return
        for label in node.labels:
            index = self._property_index.get((label, key))
            if index is not None:
                index.get(old, set()).discard(node.id)

    def _check_unique(
        self, labels: frozenset[str], props: Mapping[str, Any], exclude_id: int | None
    ) -> None:
        for label in labels:
            for key, value in props.items():
                if (label, key) not in self._unique_constraints:
                    continue
                for existing in self.find_nodes(label, key, value):
                    if existing.id != exclude_id:
                        raise ConstraintViolationError(
                            f"duplicate :{label}({key}={value!r})"
                        )


def _indexable(value: Any) -> bool:
    """Only scalar values participate in hash indexes."""
    return isinstance(value, (str, int, float, bool))
