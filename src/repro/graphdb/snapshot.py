"""Graph snapshots: the reproduction's analogue of IYP's weekly dumps.

Two on-disk formats exist:

- **v1** — a gzip-compressed JSON document containing every node,
  relationship, index definition, and constraint (this module);
- **v2** — a framed binary format with interned strings, per-section
  checksums, and a streaming reader (:mod:`repro.archive.format`),
  which loads several times faster at identical fidelity.

:func:`load_snapshot` sniffs the leading magic bytes and reads either
format transparently, so every CLI command and the archive manager
accept old and new dumps alike.  Loading a snapshot reconstructs a
store that is observationally identical (ids included), mirroring how
IYP users download a dump and run a local instance.

Snapshot bytes are deterministic: the gzip header is written with
``mtime=0`` (and no filename field) and JSON keys are sorted, so two
saves of an identical store produce byte-identical files.  The archive
manager relies on this for checksum-based deduplication.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.graphdb.store import GraphStore

FORMAT_VERSION = 1

#: Leading bytes of a gzip stream (a v1 snapshot).
GZIP_MAGIC = b"\x1f\x8b"


def snapshot_dict(store: GraphStore) -> dict[str, Any]:
    """Serialize a store to a plain dictionary.

    Holds the store's read lock so a snapshot taken while a writer is
    active (e.g. through the query service) is still consistent.
    """
    with store.read_lock():
        return {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "id": node.id,
                    "labels": sorted(node.labels),
                    "properties": node.properties,
                }
                for node in store.iter_nodes()
            ],
            "relationships": [
                {
                    "id": rel.id,
                    "type": rel.type,
                    "start": rel.start_id,
                    "end": rel.end_id,
                    "properties": rel.properties,
                }
                for rel in store.iter_relationships()
            ],
            "indexes": store.indexes(),
            "constraints": store.constraints(),
        }


def store_from_dict(data: dict[str, Any]) -> GraphStore:
    """Rebuild a store from :func:`snapshot_dict` output.

    Entity ids are preserved exactly — a store that has seen deletions
    (and therefore has gaps in its id sequence) reloads with the same
    ids, keeping the loaded instance observationally identical.  Indexes
    and constraints are restored *before* nodes so a server answering
    from a snapshot gets index-seek query plans from the first request.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version {version!r}")
    store = GraphStore()
    for label, prop in data.get("indexes", ()):
        store.create_index(label, prop)
    for entry in sorted(data["nodes"], key=lambda item: item["id"]):
        store._next_node_id = entry["id"]
        node = store.create_node(entry["labels"], entry["properties"])
        assert node.id == entry["id"]
    for entry in sorted(data["relationships"], key=lambda item: item["id"]):
        store._next_rel_id = entry["id"]
        rel = store.create_relationship(
            entry["start"], entry["type"], entry["end"], entry["properties"]
        )
        assert rel.id == entry["id"]
    for label, prop in data.get("constraints", ()):
        store.create_unique_constraint(label, prop)
    return store


def save_snapshot(store: GraphStore, path: str | Path, format: int = 1) -> None:
    """Write a snapshot of the store to ``path``.

    ``format=1`` (the default) writes the gzip-JSON dump; ``format=2``
    writes the framed binary format of :mod:`repro.archive.format`.
    Either way the bytes are deterministic for a given store state.
    """
    if format == 2:
        from repro.archive.format import save_snapshot_v2

        save_snapshot_v2(store, path)
        return
    if format != 1:
        raise ValueError(f"unsupported snapshot format {format!r}")
    payload = json.dumps(
        snapshot_dict(store), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    # filename="" keeps the path out of the gzip FNAME header field and
    # mtime=0 keeps the save time out — either would break the byte
    # determinism the archive's checksum dedup relies on.
    with open(Path(path), "wb") as raw:
        with gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", mtime=0
        ) as handle:
            handle.write(payload)


def load_snapshot(path: str | Path) -> GraphStore:
    """Load a snapshot written in either format, sniffing the magic."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic[:2] == GZIP_MAGIC:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return store_from_dict(json.load(handle))
    from repro.archive.format import MAGIC, SnapshotFormatError, load_snapshot_v2

    if magic == MAGIC:
        return load_snapshot_v2(path)
    raise SnapshotFormatError(
        f"{path}: neither a gzip-JSON (v1) nor a binary (v2) snapshot"
    )
