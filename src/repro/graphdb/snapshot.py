"""Graph snapshots: the reproduction's analogue of IYP's weekly dumps.

A snapshot is a gzip-compressed JSON document containing every node,
relationship, index definition, and constraint.  Loading a snapshot
reconstructs a store that is observationally identical (ids included),
mirroring how IYP users download a dump and run a local instance.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.graphdb.store import GraphStore

FORMAT_VERSION = 1


def snapshot_dict(store: GraphStore) -> dict[str, Any]:
    """Serialize a store to a plain dictionary.

    Holds the store's read lock so a snapshot taken while a writer is
    active (e.g. through the query service) is still consistent.
    """
    with store.read_lock():
        return {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "id": node.id,
                    "labels": sorted(node.labels),
                    "properties": node.properties,
                }
                for node in store.iter_nodes()
            ],
            "relationships": [
                {
                    "id": rel.id,
                    "type": rel.type,
                    "start": rel.start_id,
                    "end": rel.end_id,
                    "properties": rel.properties,
                }
                for rel in store.iter_relationships()
            ],
            "indexes": store.indexes(),
            "constraints": store.constraints(),
        }


def store_from_dict(data: dict[str, Any]) -> GraphStore:
    """Rebuild a store from :func:`snapshot_dict` output.

    Entity ids are preserved exactly — a store that has seen deletions
    (and therefore has gaps in its id sequence) reloads with the same
    ids, keeping the loaded instance observationally identical.  Indexes
    and constraints are restored *before* nodes so a server answering
    from a snapshot gets index-seek query plans from the first request.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version {version!r}")
    store = GraphStore()
    for label, prop in data.get("indexes", ()):
        store.create_index(label, prop)
    for entry in sorted(data["nodes"], key=lambda item: item["id"]):
        store._next_node_id = entry["id"]
        node = store.create_node(entry["labels"], entry["properties"])
        assert node.id == entry["id"]
    for entry in sorted(data["relationships"], key=lambda item: item["id"]):
        store._next_rel_id = entry["id"]
        rel = store.create_relationship(
            entry["start"], entry["type"], entry["end"], entry["properties"]
        )
        assert rel.id == entry["id"]
    for label, prop in data.get("constraints", ()):
        store.create_unique_constraint(label, prop)
    return store


def save_snapshot(store: GraphStore, path: str | Path) -> None:
    """Write a gzip-JSON snapshot of the store to ``path``."""
    payload = json.dumps(snapshot_dict(store), separators=(",", ":"))
    with gzip.open(Path(path), "wt", encoding="utf-8") as handle:
        handle.write(payload)


def load_snapshot(path: str | Path) -> GraphStore:
    """Load a snapshot previously written by :func:`save_snapshot`."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        return store_from_dict(json.load(handle))
