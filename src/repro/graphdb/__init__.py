"""An embedded property-graph database.

This package is the reproduction's substitute for Neo4j (Section 3.1 of
the paper): a label/property graph with hash indexes, uniqueness
constraints, adjacency lists, and gzip-JSON snapshots standing in for the
paper's weekly database dumps.  The Cypher-subset query engine in
:mod:`repro.cypher` executes against :class:`GraphStore`.
"""

from repro.graphdb.errors import (
    ConstraintViolationError,
    GraphError,
    NoSuchNodeError,
    NoSuchRelationshipError,
)
from repro.graphdb.model import Direction, Node, Relationship
from repro.graphdb.rwlock import RWLock
from repro.graphdb.snapshot import load_snapshot, save_snapshot
from repro.graphdb.store import GraphStore, directional_count

__all__ = [
    "ConstraintViolationError",
    "Direction",
    "GraphError",
    "GraphStore",
    "directional_count",
    "NoSuchNodeError",
    "NoSuchRelationshipError",
    "Node",
    "RWLock",
    "Relationship",
    "load_snapshot",
    "save_snapshot",
]
