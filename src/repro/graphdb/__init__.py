"""An embedded property-graph database.

This package is the reproduction's substitute for Neo4j (Section 3.1 of
the paper): a label/property graph with hash indexes, uniqueness
constraints, adjacency lists, and gzip-JSON snapshots standing in for the
paper's weekly database dumps.  The Cypher-subset query engine in
:mod:`repro.cypher` executes against any backend implementing the
:class:`GraphReadStore` contract — the dict-of-objects
:class:`GraphStore` here, or the read-only columnar backend in
:mod:`repro.columnar`.
"""

from repro.graphdb.errors import (
    ConstraintViolationError,
    DanglingEndpointError,
    GraphError,
    NoSuchNodeError,
    NoSuchRelationshipError,
    ReadOnlyStoreError,
)
from repro.graphdb.interface import (
    GraphReadStore,
    GraphStoreLike,
    GraphWriteStore,
)
from repro.graphdb.model import Direction, Node, Relationship
from repro.graphdb.rwlock import RWLock
from repro.graphdb.snapshot import load_snapshot, save_snapshot
from repro.graphdb.store import GraphStore, directional_count

__all__ = [
    "ConstraintViolationError",
    "DanglingEndpointError",
    "Direction",
    "GraphError",
    "GraphReadStore",
    "GraphStore",
    "GraphStoreLike",
    "GraphWriteStore",
    "directional_count",
    "NoSuchNodeError",
    "NoSuchRelationshipError",
    "Node",
    "RWLock",
    "ReadOnlyStoreError",
    "Relationship",
    "load_snapshot",
    "save_snapshot",
]
