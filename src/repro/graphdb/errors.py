"""Exceptions raised by the graph store."""

from __future__ import annotations


class GraphError(Exception):
    """Base class for all graph-store errors."""


class NoSuchNodeError(GraphError):
    """Raised when a node id does not exist in the store."""


class NoSuchRelationshipError(GraphError):
    """Raised when a relationship id does not exist in the store."""


class ConstraintViolationError(GraphError):
    """Raised when a write violates a uniqueness constraint."""


class InvalidPropertyError(GraphError):
    """Raised when a property value has an unsupported type."""
