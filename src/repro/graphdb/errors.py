"""Exceptions raised by the graph store."""

from __future__ import annotations


class GraphError(Exception):
    """Base class for all graph-store errors."""


class NoSuchNodeError(GraphError):
    """Raised when a node id does not exist in the store."""


class NoSuchRelationshipError(GraphError):
    """Raised when a relationship id does not exist in the store."""


class ConstraintViolationError(GraphError):
    """Raised when a write violates a uniqueness constraint."""


class InvalidPropertyError(GraphError):
    """Raised when a property value has an unsupported type."""


class DanglingEndpointError(GraphError):
    """Raised by bulk loaders for a relationship whose endpoint id does
    not exist in the node records.

    Carries the position of the offending record so a corrupted dump can
    be pinpointed instead of surfacing later as a ``KeyError`` in the
    middle of a query.
    """

    def __init__(
        self, position: int, rel_id: int, endpoint: str, node_id: int
    ) -> None:
        self.position = position
        self.rel_id = rel_id
        self.endpoint = endpoint
        self.node_id = node_id
        super().__init__(
            f"relationship record #{position} (id {rel_id}): "
            f"{endpoint} node {node_id} does not exist"
        )


class ReadOnlyStoreError(GraphError):
    """Raised when a mutating operation reaches a read-only backend
    (e.g. the columnar store, whose arrays may be shared between
    processes)."""
