"""A reentrant readers-writer lock for the graph store.

Read queries dominate the serving workload, so the store lets any number
of readers proceed in parallel while writers get exclusive access.  The
lock is write-preferring (a waiting writer blocks new readers, so bulk
loads are not starved by a stream of queries) and reentrant in both
directions for a single thread:

- a thread holding the write lock may re-acquire it (``merge_node``
  calls ``create_node``) and may also take the read lock;
- a thread holding the read lock may re-acquire the read lock even while
  a writer is queued (refusing would deadlock the reader).

Lock upgrades (read -> write by the same thread) are not supported; the
query service classifies queries up front and takes the right lock for
the whole execution.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """A write-preferring, per-thread-reentrant readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident -> hold count
        self._writer: int | None = None
        self._writer_holds = 0
        self._waiting_writers = 0

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            # Reentrant cases never wait: the thread already owns access.
            if self._writer == me or self._readers.get(me):
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 0:
                raise RuntimeError("release_read() without a matching acquire")
            if count == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_holds += 1
                return
            if self._readers.get(me):
                raise RuntimeError("cannot upgrade a read lock to a write lock")
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_holds = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write() by a thread not holding it")
            self._writer_holds -= 1
            if self._writer_holds == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (for tests and metrics) ---------------------------

    @property
    def active_readers(self) -> int:
        """Number of distinct threads currently holding the read lock."""
        with self._cond:
            return len(self._readers)

    @property
    def write_locked(self) -> bool:
        """True when some thread holds the write lock."""
        with self._cond:
            return self._writer is not None
