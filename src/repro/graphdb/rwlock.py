"""A reentrant readers-writer lock for the graph store.

Read queries dominate the serving workload, so the store lets any number
of readers proceed in parallel while writers get exclusive access.  The
lock is write-preferring (a waiting writer blocks new readers, so bulk
loads are not starved by a stream of queries) and reentrant in both
directions for a single thread:

- a thread holding the write lock may re-acquire it (``merge_node``
  calls ``create_node``) and may also take the read lock;
- a thread holding the read lock may re-acquire the read lock even while
  a writer is queued (refusing would deadlock the reader).

Lock upgrades (read -> write by the same thread) are not supported; the
query service classifies queries up front and takes the right lock for
the whole execution.

Debugging: :func:`new_rwlock` returns a :class:`DebugRWLock` when the
``REPRO_LOCK_DEBUG`` harness (:mod:`repro.concurrency.runtime`) is on.
The debug lock reports acquisitions to the global lock-order monitor and
turns the base class's no-op ``check_read_held``/``check_write_held``
contract assertions into real checks, so ``_locked`` methods fail loudly
when called without their lock instead of corrupting state quietly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.concurrency.runtime import (
    MONITOR,
    LockDisciplineError,
    lock_debug_enabled,
)


class RWLock:
    """A write-preferring, per-thread-reentrant readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident -> hold count
        self._writer: int | None = None
        self._writer_holds = 0
        self._waiting_writers = 0

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            # Reentrant cases never wait: the thread already owns access.
            if self._writer == me or self._readers.get(me):
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 0:
                raise RuntimeError("release_read() without a matching acquire")
            if count == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_holds += 1
                return
            if self._readers.get(me):
                raise RuntimeError("cannot upgrade a read lock to a write lock")
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_holds = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write() by a thread not holding it")
            self._writer_holds -= 1
            if self._writer_holds == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (for tests and metrics) ---------------------------

    @property
    def active_readers(self) -> int:
        """Number of distinct threads currently holding the read lock."""
        with self._cond:
            return len(self._readers)

    @property
    def write_locked(self) -> bool:
        """True when some thread holds the write lock."""
        with self._cond:
            return self._writer is not None

    # -- contract assertions (real only under DebugRWLock) ---------------

    def check_read_held(self) -> None:
        """Assert this thread holds the lock (shared or exclusive).

        No-op on the production lock; :class:`DebugRWLock` overrides.
        """

    def check_write_held(self) -> None:
        """Assert this thread holds the lock exclusively.

        No-op on the production lock; :class:`DebugRWLock` overrides.
        ``_locked`` methods call this on entry, so under the debug
        harness an unlocked call path fails at the method boundary.
        """


class DebugRWLock(RWLock):
    """An RWLock that enforces its contract and reports to the monitor.

    Used only under ``REPRO_LOCK_DEBUG`` (see :func:`new_rwlock`): the
    hot path gains a per-thread hold counter and a monitor call on the
    first acquisition / last release, which is far too slow for serving
    but exactly what the concurrency test suites need.
    """

    def __init__(self, name: str = "RWLock") -> None:
        super().__init__()
        self.name = name
        self._debug_tls = threading.local()

    # The lock is reentrant in both directions, so the monitor must see
    # one logical hold per thread regardless of nesting depth or mode.

    def _holds(self) -> int:
        return int(getattr(self._debug_tls, "holds", 0))

    def _entering(self) -> None:
        if self._holds() == 0:
            MONITOR.acquiring(self.name)

    def _entered(self) -> None:
        self._debug_tls.holds = self._holds() + 1

    def _exited(self) -> None:
        holds = self._holds() - 1
        self._debug_tls.holds = holds
        if holds == 0:
            MONITOR.released(self.name)

    def acquire_read(self) -> None:
        self._entering()
        try:
            super().acquire_read()
        except BaseException:
            if self._holds() == 0:
                MONITOR.abandoned(self.name)
            raise
        self._entered()

    def release_read(self) -> None:
        super().release_read()
        self._exited()

    def acquire_write(self) -> None:
        self._entering()
        try:
            super().acquire_write()
        except BaseException:
            if self._holds() == 0:
                MONITOR.abandoned(self.name)
            raise
        self._entered()

    def release_write(self) -> None:
        super().release_write()
        self._exited()

    def check_read_held(self) -> None:
        me = threading.get_ident()
        if self._writer != me and not self._readers.get(me):
            raise LockDisciplineError(
                f"{self.name}: read access without the lock held"
            )

    def check_write_held(self) -> None:
        if self._writer != threading.get_ident():
            raise LockDisciplineError(
                f"{self.name}: _locked method entered without the write lock"
            )


def new_rwlock(name: str) -> RWLock:
    """The store's lock factory: plain in production, checked in debug."""
    if lock_debug_enabled():
        return DebugRWLock(name)
    return RWLock()
