"""The explicit store contract both graph backends implement.

Historically the dict-of-objects :class:`repro.graphdb.store.GraphStore`
*was* the contract: the Cypher engine, the matcher, the planner's
statistics, the analytics measures and the archive loader were all
written against whatever it happened to expose.  With a second backend
(:mod:`repro.columnar`) the contract needs a name, so this module pins
it as a :class:`typing.Protocol` in two layers:

:class:`GraphReadStore`
    Everything a *read-only* consumer needs: counts, lookups, typed
    adjacency, index metadata, the readers-writer lock surface, and the
    bulk accessors the analytics layer iterates (``node_ids``,
    ``iter_edges``, ``typed_degrees``, ...).  The columnar backend
    implements exactly this and raises
    :class:`~repro.graphdb.errors.ReadOnlyStoreError` from the write
    surface.

:class:`GraphWriteStore`
    The mutating surface (``create_node``, ``merge_relationship``,
    ``delete_node``, ...) the Cypher write path uses.

``GraphStoreLike`` is the union alias most call sites want.  The
conformance suite (``tests/test_store_backends.py``) runs the same API
tests against every registered backend, so a method added here without
both implementations fails loudly.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from typing import (
    Any,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.graphdb.model import Direction, Node, Relationship


@runtime_checkable
class GraphReadStore(Protocol):
    """The read surface shared by the dict and columnar backends."""

    # -- identity ------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Short backend identifier (``"dict"`` or ``"columnar"``)."""
        ...

    @property
    def version(self) -> int:
        """Monotonic mutation counter (fixed for read-only backends)."""
        ...

    # -- concurrency ---------------------------------------------------

    def read_lock(self) -> AbstractContextManager[None]: ...

    def write_lock(self) -> AbstractContextManager[None]: ...

    # -- statistics ----------------------------------------------------

    @property
    def node_count(self) -> int: ...

    @property
    def relationship_count(self) -> int: ...

    def label_counts(self) -> dict[str, int]: ...

    def label_count(self, label: str) -> int: ...

    def relationship_type_counts(self) -> dict[str, int]: ...

    def degree(self, node_id: int, direction: Direction = ...) -> int: ...

    def degree_by_type(
        self, node_id: int, rel_type: str, direction: Direction = ...
    ) -> int: ...

    # -- index metadata ------------------------------------------------

    def has_index(self, label: str, prop: str) -> bool: ...

    def indexes(self) -> list[tuple[str, str]]: ...

    def constraints(self) -> list[tuple[str, str]]: ...

    # -- node access ---------------------------------------------------

    def get_node(self, node_id: int) -> Node: ...

    def has_node(self, node_id: int) -> bool: ...

    def nodes_with_label(self, label: str) -> list[Node]: ...

    def iter_nodes(self) -> Iterator[Node]: ...

    def find_nodes(self, label: str, prop: str, value: Any) -> list[Node]: ...

    # -- relationship access -------------------------------------------

    def get_relationship(self, rel_id: int) -> Relationship: ...

    def iter_relationships(self) -> Iterator[Relationship]: ...

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = ...,
        rel_type: str | None = ...,
    ) -> list[Relationship]: ...

    def relationships_with_type(self, rel_type: str) -> list[Relationship]: ...

    def relationships_between(
        self, start_id: int, end_id: int, rel_type: str | None = ...
    ) -> list[Relationship]: ...

    # -- bulk accessors (analytics / statistics) -----------------------
    # These exist so the vectorized measures never reach into a
    # backend's private maps: the dict backend answers from its indexes,
    # the columnar backend from its CSR arrays, and both avoid
    # materializing Node/Relationship objects.

    def node_ids(self) -> Iterable[int]:
        """Every node id (no materialization, no particular order)."""
        ...

    def label_ids(self, label: str) -> Iterable[int]:
        """Ids of the nodes carrying ``label`` (no materialization)."""
        ...

    def node_labels(self, node_id: int) -> frozenset[str]:
        """The label set of one node (shared, do not mutate)."""
        ...

    def node_property(self, node_id: int, key: str) -> Any:
        """One property value of one node, or None when absent."""
        ...

    def iter_edges(
        self, rel_type: str | None = ...
    ) -> Iterator[tuple[str, int, int]]:
        """Yield ``(rel_type, start_id, end_id)`` per relationship."""
        ...

    def typed_degrees(self, node_id: int) -> dict[str, tuple[int, int, int]]:
        """``{rel_type: (out, in, loops)}`` for the types a node touches."""
        ...

    def neighbor_ids(
        self,
        node_id: int,
        rel_type: str | None = ...,
        direction: Direction = ...,
    ) -> Iterator[int]:
        """Neighbor node ids, one per incident relationship (the BFS
        primitive — no Relationship objects are materialized)."""
        ...

    def memory_info(self) -> dict[str, int]:
        """Estimated memory footprint in bytes, by component."""
        ...


@runtime_checkable
class GraphWriteStore(GraphReadStore, Protocol):
    """The full read + write surface (the dict backend)."""

    def create_index(self, label: str, prop: str) -> None: ...

    def create_unique_constraint(self, label: str, prop: str) -> None: ...

    def create_node(
        self, labels: Iterable[str], properties: Mapping[str, Any] | None = ...
    ) -> Node: ...

    def merge_node(
        self,
        label: str,
        key_prop: str,
        key_value: Any,
        properties: Mapping[str, Any] | None = ...,
        extra_labels: Iterable[str] = ...,
    ) -> Node: ...

    def add_label(self, node_id: int, label: str) -> None: ...

    def update_node(self, node_id: int, properties: Mapping[str, Any]) -> None: ...

    def delete_node(self, node_id: int, detach: bool = ...) -> None: ...

    def create_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = ...,
    ) -> Relationship: ...

    def merge_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = ...,
        match_props: Mapping[str, Any] | None = ...,
    ) -> Relationship: ...

    def update_relationship(
        self, rel_id: int, properties: Mapping[str, Any]
    ) -> None: ...

    def delete_relationship(self, rel_id: int) -> None: ...


#: The alias most call sites want: any store a query engine can serve.
GraphStoreLike = GraphReadStore
