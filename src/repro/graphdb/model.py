"""Graph data model: nodes, relationships, traversal directions.

Nodes carry a set of labels (IYP entity types, e.g. ``AS``, ``Prefix``)
and a property map.  Relationships carry a single type (IYP relationship
types, e.g. ``ORIGINATE``) and a property map; per the paper's design the
same semantic link imported from two datasets yields two parallel
relationships distinguished by their ``reference_name`` property.
"""

from __future__ import annotations

import enum
from typing import Any, Mapping

# Property values permitted in the store.  Lists are allowed (Cypher
# COLLECT round-trips through snapshots) but only scalars are indexable.
SCALAR_TYPES = (str, int, float, bool)


class Direction(enum.Enum):
    """Traversal direction relative to an anchor node."""

    OUT = "out"
    IN = "in"
    BOTH = "both"


def check_property_value(value: Any) -> None:
    """Validate a property value; raises TypeError for unsupported types."""
    if value is None or isinstance(value, SCALAR_TYPES):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            if not (item is None or isinstance(item, SCALAR_TYPES)):
                raise TypeError(f"unsupported list element {item!r} in property value")
        return
    raise TypeError(f"unsupported property value type {type(value).__name__}")


class Node:
    """A graph node. Instances are owned by their :class:`GraphStore`."""

    __slots__ = ("id", "labels", "properties")

    def __init__(
        self, node_id: int, labels: frozenset[str], properties: dict[str, Any]
    ) -> None:
        self.id = node_id
        self.labels = labels
        self.properties = properties

    def get(self, key: str, default: Any = None) -> Any:
        """Return a property value, or ``default`` when absent."""
        return self.properties.get(key, default)

    def has_label(self, label: str) -> bool:
        """Return True when the node carries ``label``."""
        return label in self.labels

    def __repr__(self) -> str:
        labels = ":".join(sorted(self.labels))
        return f"Node(id={self.id}, labels=:{labels}, properties={self.properties!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("node", self.id))


class Relationship:
    """A directed, typed edge between two nodes."""

    __slots__ = ("id", "type", "start_id", "end_id", "properties")

    def __init__(
        self,
        rel_id: int,
        rel_type: str,
        start_id: int,
        end_id: int,
        properties: dict[str, Any],
    ) -> None:
        self.id = rel_id
        self.type = rel_type
        self.start_id = start_id
        self.end_id = end_id
        self.properties = properties

    def get(self, key: str, default: Any = None) -> Any:
        """Return a property value, or ``default`` when absent."""
        return self.properties.get(key, default)

    def other_end(self, node_id: int) -> int:
        """Return the endpoint opposite ``node_id``."""
        return self.end_id if node_id == self.start_id else self.start_id

    def __repr__(self) -> str:
        return (
            f"Relationship(id={self.id}, type=:{self.type}, "
            f"{self.start_id}->{self.end_id}, properties={self.properties!r})"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relationship) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("rel", self.id))


def freeze_properties(properties: Mapping[str, Any] | None) -> dict[str, Any]:
    """Validate and copy a property mapping (None values are dropped).

    Neo4j semantics: setting a property to null removes it, and absent
    properties read back as null.  Dropping Nones on write gives the same
    observable behaviour.
    """
    result: dict[str, Any] = {}
    if properties:
        for key, value in properties.items():
            if value is None:
                continue
            check_property_value(value)
            result[key] = list(value) if isinstance(value, tuple) else value
    return result
