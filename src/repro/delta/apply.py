"""Atomic application of a :class:`DeltaBatch` to a live GraphStore.

:func:`apply_delta` runs the whole batch inside one
:meth:`GraphStore.batch_mutation` scope: readers are excluded for the
duration (in-flight queries holding the read lock finish on the old
state first), every index, label set and per-(type, direction)
adjacency partition is maintained in place by the store's own mutators,
and the version bumps exactly once — so generation-keyed result and
procedure caches invalidate once per batch, not once per record.

Before any mutation, the batch is validated against the store: every
delete/update target must resolve and every node create must be fresh,
simulated in record order so a delete-then-recreate of the same
identity passes.  A batch built against a different base therefore
fails *before* touching the store (:class:`DeltaApplyError`).  A
failure past that point (possible only with inconsistent inputs) leaves
the store partially updated — callers recover by reloading a full
snapshot, which is the watcher's documented fallback.

The returned :class:`DeltaApplyResult` carries per-group counts and the
per-(label, type, direction) edge-incidence deltas that
:func:`repro.delta.statistics.refresh_statistics` uses to update the
planner's expansion means without rescanning the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.delta.records import DeltaBatch, validate_record
from repro.graphdb.errors import GraphError
from repro.graphdb.model import Node, Relationship
from repro.graphdb.store import GraphStore


class DeltaApplyError(RuntimeError):
    """A batch does not apply cleanly to this store (wrong base?)."""


@dataclass
class DeltaApplyResult:
    """What one batch-apply did, for telemetry and statistics refresh."""

    nodes_created: int = 0
    nodes_deleted: int = 0
    nodes_updated: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    relationships_updated: int = 0
    #: ``(label, rel_type or "*", direction)`` -> net edge-incidence change,
    #: same convention as the totals behind ``GraphStatistics.expansions``.
    expansion_deltas: dict[tuple[str, str, str], int] = field(default_factory=dict)
    #: Store version after the batch (the single bump).
    version: int = 0

    def counts(self) -> dict[str, int]:
        return {
            "nodes_created": self.nodes_created,
            "nodes_deleted": self.nodes_deleted,
            "nodes_updated": self.nodes_updated,
            "relationships_created": self.relationships_created,
            "relationships_deleted": self.relationships_deleted,
            "relationships_updated": self.relationships_updated,
        }

    @property
    def total(self) -> int:
        return sum(self.counts().values())


def _resolve_node(store: GraphStore, key: Mapping[str, Any]) -> Node | None:
    nodes = store.find_nodes(key["label"], key["prop"], key["value"])
    return nodes[0] if nodes else None


def _resolve_rel(store: GraphStore, key: Mapping[str, Any]) -> Relationship | None:
    start = _resolve_node(store, key["start"])
    end = _resolve_node(store, key["end"])
    if start is None or end is None:
        return None
    dataset = key["dataset"]
    for rel in store.relationships_between(start.id, end.id, key["type"]):
        if str(rel.properties.get("reference_name", "")) == dataset:
            return rel
    return None


def _node_token(key: Mapping[str, Any]) -> tuple[str, str, Any]:
    return (key["label"], key["prop"], key["value"])


def _rel_token(key: Mapping[str, Any]) -> tuple[Any, str, Any, str]:
    return (_node_token(key["start"]), key["type"], _node_token(key["end"]),
            key["dataset"])


def _prevalidate(store: GraphStore, records: Iterable[Mapping[str, Any]]) -> None:
    """Simulate the batch against the store without mutating it.

    ``alive`` overrides the store's view for identities the batch itself
    deletes or creates, so delete-then-recreate sequences validate.
    """
    node_alive: dict[tuple[str, str, Any], bool] = {}
    rel_alive: dict[tuple[Any, str, Any, str], bool] = {}

    def check_node(key: Mapping[str, Any]) -> bool:
        token = _node_token(key)
        if token in node_alive:
            return node_alive[token]
        return _resolve_node(store, key) is not None

    def check_rel(key: Mapping[str, Any]) -> bool:
        token = _rel_token(key)
        if token in rel_alive:
            return rel_alive[token]
        return _resolve_rel(store, key) is not None

    for position, record in enumerate(records):
        validate_record(record)
        op, entity, key = record["op"], record["entity"], record["key"]
        where = f"record {position} ({op} {entity})"
        if entity == "node":
            token = _node_token(key)
            if op == "create":
                if check_node(key):
                    raise DeltaApplyError(f"{where}: node already exists: {key!r}")
                node_alive[token] = True
            elif not check_node(key):
                raise DeltaApplyError(f"{where}: no such node: {key!r}")
            elif op == "delete":
                node_alive[token] = False
                # Incident relationships die with the node.
                for rel_token, alive in list(rel_alive.items()):
                    if alive and token in (rel_token[0], rel_token[2]):
                        rel_alive[rel_token] = False
        else:
            if not check_node(key["start"]) or not check_node(key["end"]):
                raise DeltaApplyError(f"{where}: endpoint missing: {key!r}")
            token_r = _rel_token(key)
            if op == "create":
                rel_alive[token_r] = True
            elif not check_rel(key):
                raise DeltaApplyError(f"{where}: no such relationship: {key!r}")
            elif op == "delete":
                rel_alive[token_r] = False


def _tally(
    result: DeltaApplyResult,
    store: GraphStore,
    rel_type: str,
    start_id: int,
    end_id: int,
    sign: int,
) -> None:
    """Adjust edge-incidence totals, mirroring ``compute_statistics``:
    each edge counts once per start label (out) and once per end label
    (in); "both" is their sum (self-loops contribute to both sides)."""
    deltas = result.expansion_deltas
    for label in store.node_labels(start_id):
        for rel_key in (rel_type, "*"):
            deltas[(label, rel_key, "out")] = (
                deltas.get((label, rel_key, "out"), 0) + sign
            )
            deltas[(label, rel_key, "both")] = (
                deltas.get((label, rel_key, "both"), 0) + sign
            )
    for label in store.node_labels(end_id):
        for rel_key in (rel_type, "*"):
            deltas[(label, rel_key, "in")] = (
                deltas.get((label, rel_key, "in"), 0) + sign
            )
            deltas[(label, rel_key, "both")] = (
                deltas.get((label, rel_key, "both"), 0) + sign
            )


def apply_delta(store: GraphStore, batch: DeltaBatch) -> DeltaApplyResult:
    """Apply ``batch`` to ``store`` atomically under the write lock."""
    records = list(batch)
    result = DeltaApplyResult()
    with store.batch_mutation():
        _prevalidate(store, records)
        try:
            for record in records:
                _apply_record(store, record, result)
        except GraphError as exc:  # inconsistency past prevalidation
            raise DeltaApplyError(str(exc)) from exc
        result.version = store.version + 1  # the bump lands on scope exit
    return result


def _apply_record(
    store: GraphStore, record: Mapping[str, Any], result: DeltaApplyResult
) -> None:
    op, entity, key = record["op"], record["entity"], record["key"]
    if entity == "node":
        if op == "create":
            properties = dict(record.get("properties") or {})
            properties.setdefault(key["prop"], key["value"])
            labels = set(record.get("labels") or ())
            labels.add(key["label"])
            store.create_node(labels, properties)
            result.nodes_created += 1
            return
        node = _resolve_node(store, key)
        if node is None:
            raise DeltaApplyError(f"no such node: {key!r}")
        if op == "delete":
            for rel in store.relationships_of(node.id):
                _tally(result, store, rel.type, rel.start_id, rel.end_id, -1)
                result.relationships_deleted += 1
            store.delete_node(node.id, detach=True)
            result.nodes_deleted += 1
        else:
            changes = record.get("changes") or {}
            if changes:
                store.update_node(
                    node.id, {prop: pair[1] for prop, pair in changes.items()}
                )
            for label in record.get("add_labels") or ():
                store.add_label(node.id, label)
            result.nodes_updated += 1
        return
    if op == "create":
        start = _resolve_node(store, key["start"])
        end = _resolve_node(store, key["end"])
        if start is None or end is None:
            raise DeltaApplyError(f"endpoint missing for {key!r}")
        properties = dict(record.get("properties") or {})
        if key["dataset"]:
            properties.setdefault("reference_name", key["dataset"])
        store.create_relationship(start.id, key["type"], end.id, properties)
        _tally(result, store, key["type"], start.id, end.id, +1)
        result.relationships_created += 1
        return
    rel = _resolve_rel(store, key)
    if rel is None:
        raise DeltaApplyError(f"no such relationship: {key!r}")
    if op == "delete":
        _tally(result, store, rel.type, rel.start_id, rel.end_id, -1)
        store.delete_relationship(rel.id)
        result.relationships_deleted += 1
    else:
        changes = record.get("changes") or {}
        store.update_relationship(
            rel.id, {prop: pair[1] for prop, pair in changes.items()}
        )
        result.relationships_updated += 1
