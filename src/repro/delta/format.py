"""Binary delta files: the IYP2 framing under an ``IYPD`` header.

A delta file carries one :class:`~repro.delta.records.DeltaBatch` plus
the provenance needed to apply it safely: the label and content
checksum of the *base* snapshot generation it was extracted against.
Appliers (the archive's chain loader, the serving watcher) verify the
base checksum against the manifest before applying — a delta shipped
against the wrong base is rejected up front instead of corrupting a
replica.

Layout reuses :mod:`repro.archive.format`'s framed sections (CRC-32 per
section, optional zlib, END marker)::

    MAGIC "IYPD"  |  u16 format version (1)
    META          |  base_label, base_checksum, summary, counts after
    RECORDS*      |  chunks of delta records (bounded reader memory)
    END

Files are byte-deterministic for a given batch: records are already in
canonical order and JSON is dumped with sorted keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.archive.format import (
    SECTION_END,
    SECTION_META,
    SnapshotFormatError,
    pack_header,
    read_sections,
    write_section,
)
from repro.delta.records import DELTA_RECORD_VERSION, DeltaBatch, DeltaError

DELTA_MAGIC = b"IYPD"
DELTA_FILE_VERSION = 1

#: Section kind for delta record chunks (META/END reuse the v2 kinds).
SECTION_RECORDS = 9

#: Records per RECORDS section.
RECORD_CHUNK = 16384


def save_delta(
    batch: DeltaBatch,
    path: str | Path,
    *,
    base_label: str,
    base_checksum: str,
    nodes_after: int,
    relationships_after: int,
    compress: bool = True,
) -> None:
    """Write ``batch`` as an IYPD file.

    ``nodes_after``/``relationships_after`` are the entity counts of the
    store the batch produces, recorded for manifest display and shallow
    verification (the same role META counts play for full snapshots).
    """
    meta = {
        "format_version": DELTA_FILE_VERSION,
        "record_version": DELTA_RECORD_VERSION,
        "base_label": base_label,
        "base_checksum": base_checksum,
        "nodes": nodes_after,
        "relationships": relationships_after,
        "summary": batch.summary(),
    }
    with open(Path(path), "wb") as handle:
        handle.write(pack_header(DELTA_MAGIC, DELTA_FILE_VERSION))
        write_section(handle, SECTION_META, meta, compress)
        records = batch.records
        for start in range(0, len(records), RECORD_CHUNK):
            write_section(
                handle, SECTION_RECORDS, records[start : start + RECORD_CHUNK],
                compress,
            )
        write_section(handle, SECTION_END, [], compress)


def read_delta_meta(path: str | Path) -> dict[str, Any]:
    """The META section of a delta file without decoding its records."""
    for kind, payload in read_sections(
        path, magic=DELTA_MAGIC, version=DELTA_FILE_VERSION
    ):
        if kind == SECTION_META:
            if not isinstance(payload, dict):
                raise SnapshotFormatError(f"{path}: malformed delta META")
            return payload
    raise SnapshotFormatError(f"{path}: no META section")


def load_delta(path: str | Path) -> tuple[DeltaBatch, dict[str, Any]]:
    """Load ``(batch, meta)`` from an IYPD file, validating the records."""
    meta: dict[str, Any] = {}
    records: list[dict[str, Any]] = []
    for kind, payload in read_sections(
        path, magic=DELTA_MAGIC, version=DELTA_FILE_VERSION
    ):
        if kind == SECTION_META:
            meta = payload
        elif kind == SECTION_RECORDS:
            records.extend(payload)
    if not meta:
        raise SnapshotFormatError(f"{path}: no META section")
    if meta.get("record_version") != DELTA_RECORD_VERSION:
        raise SnapshotFormatError(
            f"{path}: unsupported delta record version "
            f"{meta.get('record_version')!r}"
        )
    batch = DeltaBatch(
        records=records,
        base_label=str(meta.get("base_label", "")),
        base_checksum=str(meta.get("base_checksum", "")),
    )
    try:
        batch.validate()
    except DeltaError as exc:
        raise SnapshotFormatError(f"{path}: {exc}") from exc
    expected = meta.get("summary", {}).get("records")
    if expected is not None and expected != len(records):
        raise SnapshotFormatError(
            f"{path}: META promises {expected} records, file holds {len(records)}"
        )
    return batch, meta


def is_delta_file(path: str | Path) -> bool:
    """True when the file starts with the IYPD magic bytes."""
    try:
        with open(Path(path), "rb") as handle:
            return handle.read(len(DELTA_MAGIC)) == DELTA_MAGIC
    except OSError:
        return False


def delta_to_json(batch: DeltaBatch, indent: int | None = 2) -> str:
    """The CLI-facing JSON rendering of a batch (``repro diff --format json``)."""
    return json.dumps(batch.to_dict(), indent=indent, sort_keys=True)
