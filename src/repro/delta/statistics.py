"""Incremental refresh of planner statistics after a delta apply.

A full :func:`repro.analytics.statistics.compute_statistics` pass is
O(nodes + relationships) — exactly the cost the delta path exists to
avoid.  :func:`refresh_statistics` instead rebuilds the cheap exact
figures (node/relationship/label/type counts, O(#labels) reads of the
store's own indexes) and adjusts the per-(label, type, direction)
expansion means from the edge-incidence deltas the apply engine
tallied: each old mean is ``total / population``, and both totals and
populations are integers, so the old total is recovered exactly by
rounding ``mean * old_population`` and re-divided by the new
population.

Degree histograms and component structure are *not* refreshed — both
need a full pass.  The planner only consults histograms for labels
absent from ``label_counts`` (see ``GraphStatistics.expansion``), so
staleness there affects cost estimates for unknown labels only, never
correctness.  The next full build recomputes everything.
"""

from __future__ import annotations

from repro.analytics.statistics import GraphStatistics
from repro.delta.apply import DeltaApplyResult
from repro.graphdb.store import GraphStore


def refresh_statistics(
    previous: GraphStatistics, store: GraphStore, result: DeltaApplyResult
) -> GraphStatistics:
    """Statistics for ``store`` after ``result``, without a full rescan."""
    label_counts = store.label_counts()
    old_counts = previous.label_counts

    totals: dict[tuple[str, str, str], int] = {}
    for (label, rel_key, direction), mean in previous.expansions.items():
        totals[(label, rel_key, direction)] = round(
            mean * old_counts.get(label, 0)
        )
    for key, delta in result.expansion_deltas.items():
        totals[key] = totals.get(key, 0) + delta

    expansions: dict[tuple[str, str, str], float] = {}
    for (label, rel_key, direction), total in totals.items():
        population = label_counts.get(label, 0)
        if population and total:
            expansions[(label, rel_key, direction)] = total / population

    return GraphStatistics(
        version=store.version,
        node_count=store.node_count,
        relationship_count=store.relationship_count,
        label_counts=label_counts,
        relationship_type_counts=store.relationship_type_counts(),
        expansions=expansions,
        degree_histograms=dict(previous.degree_histograms),
        component_count=previous.component_count,
        component_sizes=previous.component_sizes,
    )
