"""The delta record format: an ordered batch of graph changes.

A :class:`DeltaBatch` is the unit the incremental pipeline ships: a
JSON-safe list of create/update/delete records addressing entities by
*ontology identity* (the same key properties :mod:`repro.core.diff`
compares by), never by internal node id — so a batch extracted from one
store applies cleanly to any store holding the same logical graph.

Record shapes (``key`` is how the target entity is resolved):

- node key: ``{"label", "prop", "value"}`` — the entity's identifying
  label and key property.
- rel key: ``{"start": <node key>, "type", "end": <node key>,
  "dataset"}`` — ``dataset`` is the ``reference_name`` provenance
  property, so the same semantic link from two datasets stays distinct
  (mirroring ``RelKey`` in :mod:`repro.core.diff`).
- create records carry ``labels`` + ``properties`` (nodes) or
  ``properties`` (rels); update records carry ``changes`` mapping each
  property to ``[before, after]`` (``after`` null deletes the key) and,
  for nodes, an optional ``add_labels`` list; delete records carry the
  key only.

Records are ordered for safe application: rel deletes, node deletes,
node creates, node updates, rel creates, rel updates — so a batch that
deletes a node and re-creates the same identity replays correctly, and
created relationships always find their endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

#: Format tag embedded in the JSON representation (and the CLI output).
DELTA_FORMAT = "iyp-delta"
DELTA_RECORD_VERSION = 1

#: Canonical application order of the (op, entity) record groups.
GROUP_ORDER: tuple[tuple[str, str], ...] = (
    ("delete", "rel"),
    ("delete", "node"),
    ("create", "node"),
    ("update", "node"),
    ("create", "rel"),
    ("update", "rel"),
)

_SCALAR_TYPES = (str, int, float, bool)


class DeltaError(ValueError):
    """A delta could not be constructed or is malformed."""


def node_key(label: str, prop: str, value: Any) -> dict[str, Any]:
    """Build a node identity key; the value must be an indexable scalar."""
    if not isinstance(value, _SCALAR_TYPES):
        raise DeltaError(
            f"node key :{label}({prop}) must be a scalar, got {type(value).__name__}"
        )
    return {"label": label, "prop": prop, "value": value}


def rel_key(
    start: Mapping[str, Any], rel_type: str, end: Mapping[str, Any], dataset: str
) -> dict[str, Any]:
    """Build a relationship identity key from two node keys."""
    return {"start": dict(start), "type": rel_type, "end": dict(end),
            "dataset": dataset}


def record_order_key(record: Mapping[str, Any]) -> tuple[int, str]:
    """Sort key giving the canonical group order, then a stable key repr."""
    group = GROUP_ORDER.index((record["op"], record["entity"]))
    return (group, repr(sorted(record["key"].items(), key=repr)))


def _validate_node_key(key: Any, where: str) -> None:
    if (
        not isinstance(key, Mapping)
        or not isinstance(key.get("label"), str)
        or not isinstance(key.get("prop"), str)
        or not isinstance(key.get("value"), _SCALAR_TYPES)
    ):
        raise DeltaError(f"{where}: malformed node key {key!r}")


def validate_record(record: Mapping[str, Any]) -> None:
    """Check one record's shape; raises :class:`DeltaError` on problems."""
    op, entity = record.get("op"), record.get("entity")
    if (op, entity) not in GROUP_ORDER:
        raise DeltaError(f"unknown record kind op={op!r} entity={entity!r}")
    key = record.get("key")
    where = f"{op} {entity}"
    if entity == "node":
        _validate_node_key(key, where)
    else:
        if not isinstance(key, Mapping) or not isinstance(key.get("type"), str):
            raise DeltaError(f"{where}: malformed rel key {key!r}")
        _validate_node_key(key.get("start"), where)
        _validate_node_key(key.get("end"), where)
        if not isinstance(key.get("dataset"), str):
            raise DeltaError(f"{where}: rel key missing dataset: {key!r}")
    if op == "create" and not isinstance(record.get("properties", {}), Mapping):
        raise DeltaError(f"{where}: properties must be a map")
    if op == "update":
        changes = record.get("changes", {})
        if not isinstance(changes, Mapping) or not all(
            isinstance(pair, (list, tuple)) and len(pair) == 2
            for pair in changes.values()
        ):
            raise DeltaError(f"{where}: changes must map prop -> [before, after]")


@dataclass
class DeltaBatch:
    """An ordered list of delta records plus its base provenance.

    ``base_checksum``/``base_label`` identify the snapshot generation the
    batch was extracted against; appliers use them to refuse a batch on
    the wrong base before touching the store.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    base_label: str = ""
    base_checksum: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    @property
    def empty(self) -> bool:
        return not self.records

    def counts(self) -> dict[str, int]:
        """``{"node_creates": n, ...}`` per record group, zeros included."""
        counts = {f"{entity}_{op}s": 0 for op, entity in GROUP_ORDER}
        for record in self.records:
            counts[f"{record['entity']}_{record['op']}s"] += 1
        return counts

    def summary(self) -> dict[str, Any]:
        return {"records": len(self.records), **self.counts()}

    def validate(self) -> None:
        """Check every record's shape and the canonical group ordering."""
        last_group = 0
        for record in self.records:
            validate_record(record)
            group = GROUP_ORDER.index((record["op"], record["entity"]))
            if group < last_group:
                raise DeltaError(
                    f"records out of order: {record['op']} {record['entity']} "
                    f"after group {GROUP_ORDER[last_group]}"
                )
            last_group = group

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": DELTA_FORMAT,
            "version": DELTA_RECORD_VERSION,
            "base_label": self.base_label,
            "base_checksum": self.base_checksum,
            "summary": self.summary(),
            "records": self.records,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeltaBatch":
        if payload.get("format") != DELTA_FORMAT:
            raise DeltaError(f"not a {DELTA_FORMAT} payload: {payload.get('format')!r}")
        if payload.get("version") != DELTA_RECORD_VERSION:
            raise DeltaError(f"unsupported delta version {payload.get('version')!r}")
        records = payload.get("records")
        if not isinstance(records, list):
            raise DeltaError("records must be a list")
        batch = cls(
            records=[dict(record) for record in records],
            base_label=str(payload.get("base_label", "")),
            base_checksum=str(payload.get("base_checksum", "")),
        )
        batch.validate()
        return batch
