"""Building :class:`~repro.delta.records.DeltaBatch`es.

Two constructors, one record format:

- :func:`delta_from_diff` turns a property-level
  :class:`~repro.core.diff.GraphDiff` between two full stores into an
  ordered batch — O(world), used by ``repro diff --format json`` and the
  fuzz suite, where both stores exist anyway.
- :func:`delta_from_changelog` turns the event stream recorded by
  :meth:`GraphStore.track_changes` into the same batch in O(changes) —
  the incremental build path, which never clones or re-scans the world.

Both address entities by ontology identity (see
:mod:`repro.delta.records`), so the batches are interchangeable.

Known limitations (raise :class:`~repro.delta.records.DeltaError` where
detectable): mutating an entity's *key* property or a relationship's
``reference_name`` changes its identity and cannot be expressed as an
update; diff-based batches cannot see label additions on surviving
nodes (``GraphDiff`` does not model them — the changelog path does).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.diff import (
    GraphDiff,
    NodeKey,
    RelKey,
    _node_keys,
    _nodes_by_key,
    _rel_keys,
    property_changes,
    snapshot_diff,
)
from repro.delta.records import DeltaBatch, DeltaError, node_key, record_order_key
from repro.graphdb.store import ChangeEvent, GraphStore
from repro.ontology import ENTITIES


def identify(labels: Iterable[str], properties: Mapping[str, Any]
             ) -> dict[str, Any] | None:
    """The node key of an entity, or None when unidentifiable.

    Mirrors :func:`repro.core.diff.node_identity` — first sorted label
    known to the ontology whose key property is present — but returns
    the full ``{"label", "prop", "value"}`` key the delta format needs.
    """
    for label in sorted(labels):
        definition = ENTITIES.get(label)
        if definition is None:
            continue
        prop = definition.key_properties[0]
        value = properties.get(prop)
        if value is not None:
            return node_key(label, prop, value)
    return None


def _node_key_dict(key: NodeKey) -> dict[str, Any]:
    label, value = key
    return node_key(label, ENTITIES[label].key_properties[0], value)


def _rel_key_dict(key: RelKey) -> dict[str, Any]:
    start, rel_type, end, dataset = key
    return {
        "start": _node_key_dict(start),
        "type": rel_type,
        "end": _node_key_dict(end),
        "dataset": dataset,
    }


def _pairs(changes: Mapping[str, tuple[Any, Any]]) -> dict[str, list[Any]]:
    return {prop: [before, after] for prop, (before, after)
            in sorted(changes.items())}


def delta_from_diff(
    old: GraphStore, new: GraphStore, diff: GraphDiff | None = None
) -> DeltaBatch:
    """Convert a snapshot diff into an ordered delta batch.

    ``diff`` defaults to ``snapshot_diff(old, new)``; pass one in when
    the caller already computed it.  Applying the result to ``old``
    yields a store identity-equivalent to ``new``.
    """
    if diff is None:
        diff = snapshot_diff(old, new)
    new_node_keys = _node_keys(new)
    new_by_key = _nodes_by_key(new, new_node_keys)
    new_rels = _rel_keys(new, new_node_keys)
    records: list[dict[str, Any]] = []
    for rkey in diff.relationships_removed:
        records.append({"op": "delete", "entity": "rel", "key": _rel_key_dict(rkey)})
    for nkey in diff.nodes_removed:
        records.append({"op": "delete", "entity": "node",
                        "key": _node_key_dict(nkey)})
    for nkey in diff.nodes_added:
        node = new_by_key[nkey]
        records.append({
            "op": "create",
            "entity": "node",
            "key": _node_key_dict(nkey),
            "labels": sorted(node.labels),
            "properties": dict(node.properties),
        })
    for nkey, changes in diff.nodes_modified:
        key = _node_key_dict(nkey)
        if key["prop"] in changes:
            raise DeltaError(f"key property mutation on {nkey!r} "
                             "cannot be expressed as a delta update")
        records.append({"op": "update", "entity": "node", "key": key,
                        "changes": _pairs(changes)})
    for rkey in diff.relationships_added:
        records.append({
            "op": "create",
            "entity": "rel",
            "key": _rel_key_dict(rkey),
            "properties": dict(new_rels[rkey]),
        })
    for rkey, changes in diff.relationships_modified:
        if "reference_name" in changes:
            raise DeltaError(f"reference_name mutation on {rkey!r} "
                             "cannot be expressed as a delta update")
        records.append({"op": "update", "entity": "rel",
                        "key": _rel_key_dict(rkey), "changes": _pairs(changes)})
    records.sort(key=record_order_key)
    return DeltaBatch(records=records)


def _rewind(properties: dict[str, Any],
            folded: Mapping[str, list[Any]] | None) -> dict[str, Any]:
    """Undo folded ``[before, after]`` updates, restoring window-start state."""
    if folded:
        for prop, pair in folded.items():
            if pair[0] is None:
                properties.pop(prop, None)
            else:
                properties[prop] = pair[0]
    return properties


def _net_changes(merged: Mapping[str, list[Any]]) -> dict[str, list[Any]]:
    """Drop round-trip no-ops (a value changed and changed back)."""
    return {
        prop: [before, after]
        for prop, (before, after) in sorted(merged.items())
        if before != after or type(before) is not type(after)
    }


def delta_from_changelog(
    store: GraphStore, events: Iterable[ChangeEvent]
) -> DeltaBatch:
    """Convert a tracked event stream into an ordered delta batch.

    ``store`` must be the live store the events were recorded against,
    *after* the tracked mutations ran: created entities read their final
    state from it, and surviving endpoints resolve their identity from
    it.  Per-entity coalescing means ephemeral entities (created then
    deleted inside the window) vanish, repeated updates collapse to one
    net change, and updates that round-trip back to the original value
    drop out entirely.
    """
    created_nodes: set[int] = set()
    deleted_nodes: dict[int, ChangeEvent] = {}
    node_changes: dict[int, dict[str, list[Any]]] = {}
    label_adds: dict[int, list[str]] = {}
    created_rels: set[int] = set()
    deleted_rels: dict[int, ChangeEvent] = {}
    rel_changes: dict[int, dict[str, list[Any]]] = {}
    # Updates folded before a delete, kept so a later recreate under the
    # same identity can rewind the delete-time before-image to the state
    # at the start of the window (what diff extraction compares against).
    pre_delete_node_changes: dict[int, dict[str, list[Any]]] = {}
    pre_delete_label_adds: dict[int, list[str]] = {}
    pre_delete_rel_changes: dict[int, dict[str, list[Any]]] = {}

    for event in events:
        kind, entity_id = event.kind, event.entity_id
        if kind == "node_created":
            created_nodes.add(entity_id)
        elif kind == "node_deleted":
            popped = node_changes.pop(entity_id, None)
            popped_labels = label_adds.pop(entity_id, None)
            if entity_id in created_nodes:
                created_nodes.discard(entity_id)
            else:
                deleted_nodes[entity_id] = event
                if popped:
                    pre_delete_node_changes[entity_id] = popped
                if popped_labels:
                    pre_delete_label_adds[entity_id] = popped_labels
        elif kind == "node_updated":
            if entity_id in created_nodes or event.changes is None:
                continue
            merged = node_changes.setdefault(entity_id, {})
            for prop, (before, after) in event.changes.items():
                if prop in merged:
                    merged[prop][1] = after
                else:
                    merged[prop] = [before, after]
        elif kind == "label_added":
            if entity_id not in created_nodes and event.label is not None:
                adds = label_adds.setdefault(entity_id, [])
                if event.label not in adds:
                    adds.append(event.label)
        elif kind == "rel_created":
            created_rels.add(entity_id)
        elif kind == "rel_deleted":
            popped = rel_changes.pop(entity_id, None)
            if entity_id in created_rels:
                created_rels.discard(entity_id)
            else:
                deleted_rels[entity_id] = event
                if popped:
                    pre_delete_rel_changes[entity_id] = popped
        elif kind == "rel_updated":
            if entity_id in created_rels or event.changes is None:
                continue
            merged = rel_changes.setdefault(entity_id, {})
            for prop, (before, after) in event.changes.items():
                if prop in merged:
                    merged[prop][1] = after
                else:
                    merged[prop] = [before, after]
        elif kind == "rel_merged":
            pass  # a MERGE hit: no state change
        else:
            raise DeltaError(f"unknown change event kind {kind!r}")

    def node_key_of(node_id: int) -> dict[str, Any]:
        if store.has_node(node_id):
            node = store.get_node(node_id)
            key = identify(node.labels, node.properties)
        else:
            before = deleted_nodes.get(node_id)
            if before is None or before.labels is None or before.properties is None:
                raise DeltaError(f"node {node_id} vanished without a before-image")
            key = identify(before.labels, before.properties)
        if key is None:
            raise DeltaError(f"node {node_id} has no ontology identity")
        return key

    def rel_key_of(rel_type: str, start_id: int, end_id: int,
                   properties: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "start": node_key_of(start_id),
            "type": rel_type,
            "end": node_key_of(end_id),
            "dataset": str(properties.get("reference_name", "")),
        }

    def _node_ident(key: Mapping[str, Any]) -> tuple[Any, ...]:
        return (key["label"], key["prop"], key["value"])

    def _rel_ident(key: Mapping[str, Any]) -> tuple[Any, ...]:
        return (_node_ident(key["start"]), key["type"],
                _node_ident(key["end"]), key["dataset"])

    deleted_node_keys = {nid: node_key_of(nid) for nid in deleted_nodes}
    created_node_keys = {nid: node_key_of(nid) for nid in created_nodes}
    deleted_rel_keys: dict[int, dict[str, Any]] = {}
    for rel_id, event in deleted_rels.items():
        assert event.rel_type is not None
        assert event.start_id is not None and event.end_id is not None
        deleted_rel_keys[rel_id] = rel_key_of(
            event.rel_type, event.start_id, event.end_id, event.properties or {})
    created_rel_keys: dict[int, dict[str, Any]] = {}
    for rel_id in created_rels:
        rel = store.get_relationship(rel_id)
        created_rel_keys[rel_id] = rel_key_of(
            rel.type, rel.start_id, rel.end_id, rel.properties)

    # Canonicalize delete+create pairs under the same identity into
    # updates — that is how diff extraction, which only sees the
    # endpoints, reports a recreate.  Nodes collapse only when the label
    # set survives (a label change is not expressible as an update);
    # relationships always collapse (their dataset is part of the key).
    records: list[dict[str, Any]] = []
    paired_del_nodes: set[int] = set()
    paired_new_nodes: set[int] = set()
    del_node_idents = {_node_ident(k): nid for nid, k in deleted_node_keys.items()}
    for new_id, key in created_node_keys.items():
        old_id = del_node_idents.get(_node_ident(key))
        if old_id is None:
            continue
        before = deleted_nodes[old_id]
        node = store.get_node(new_id)
        before_props = _rewind(dict(before.properties or {}),
                               pre_delete_node_changes.get(old_id))
        before_labels = (set(before.labels or ())
                         - set(pre_delete_label_adds.get(old_id, ())))
        if before_labels != set(node.labels):
            continue
        paired_del_nodes.add(old_id)
        paired_new_nodes.add(new_id)
        changes = _pairs(property_changes(before_props, dict(node.properties)))
        if not changes:
            continue
        if key["prop"] in changes:
            raise DeltaError(f"key property mutation on node {new_id} "
                             "cannot be expressed as a delta update")
        records.append({"op": "update", "entity": "node", "key": key,
                        "changes": changes})
    paired_del_rels: set[int] = set()
    paired_new_rels: set[int] = set()
    del_rel_idents = {_rel_ident(k): rid for rid, k in deleted_rel_keys.items()}
    for new_id, key in created_rel_keys.items():
        old_id = del_rel_idents.get(_rel_ident(key))
        if old_id is None:
            continue
        paired_del_rels.add(old_id)
        paired_new_rels.add(new_id)
        before_props = _rewind(dict(deleted_rels[old_id].properties or {}),
                               pre_delete_rel_changes.get(old_id))
        changes = _pairs(property_changes(
            before_props, dict(store.get_relationship(new_id).properties)))
        if changes:
            records.append({"op": "update", "entity": "rel", "key": key,
                            "changes": changes})

    for rel_id, key in deleted_rel_keys.items():
        if rel_id in paired_del_rels:
            continue
        records.append({"op": "delete", "entity": "rel", "key": key})
    for node_id, key in deleted_node_keys.items():
        if node_id in paired_del_nodes:
            continue
        records.append({"op": "delete", "entity": "node", "key": key})
    for node_id, key in created_node_keys.items():
        if node_id in paired_new_nodes:
            continue
        node = store.get_node(node_id)
        records.append({
            "op": "create",
            "entity": "node",
            "key": key,
            "labels": sorted(node.labels),
            "properties": dict(node.properties),
        })
    update_ids = sorted(set(node_changes) | set(label_adds))
    for node_id in update_ids:
        changes = _net_changes(node_changes.get(node_id, {}))
        adds = label_adds.get(node_id, [])
        if not changes and not adds:
            continue
        key = node_key_of(node_id)
        if key["prop"] in changes:
            raise DeltaError(f"key property mutation on node {node_id} "
                             "cannot be expressed as a delta update")
        record: dict[str, Any] = {"op": "update", "entity": "node", "key": key,
                                  "changes": changes}
        if adds:
            record["add_labels"] = sorted(adds)
        records.append(record)
    for rel_id, key in created_rel_keys.items():
        if rel_id in paired_new_rels:
            continue
        records.append({
            "op": "create",
            "entity": "rel",
            "key": key,
            "properties": dict(store.get_relationship(rel_id).properties),
        })
    for rel_id, merged in rel_changes.items():
        changes = _net_changes(merged)
        if not changes:
            continue
        if "reference_name" in changes:
            raise DeltaError(f"reference_name mutation on relationship {rel_id} "
                             "cannot be expressed as a delta update")
        rel = store.get_relationship(rel_id)
        records.append({
            "op": "update",
            "entity": "rel",
            "key": rel_key_of(rel.type, rel.start_id, rel.end_id, rel.properties),
            "changes": changes,
        })
    records.sort(key=record_order_key)
    return DeltaBatch(records=records)
