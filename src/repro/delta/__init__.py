"""repro.delta — end-to-end incremental ingestion.

The delta pipeline replaces O(world) rebuild/dump/reload cycles with
O(changes) work at every stage:

- **extract** (:mod:`repro.delta.extract`): turn a snapshot diff or a
  tracked changelog into an ordered, identity-addressed
  :class:`DeltaBatch`;
- **apply** (:mod:`repro.delta.apply`): atomically replay a batch into
  a live :class:`~repro.graphdb.store.GraphStore` under one write-lock
  scope and one version bump;
- **statistics** (:mod:`repro.delta.statistics`): refresh the planner's
  :class:`~repro.analytics.statistics.GraphStatistics` from the apply
  result without rescanning the graph;
- **format** (:mod:`repro.delta.format`): the IYPD framed binary file
  the archive records delta entries in.

The incremental build entry point is
``repro.pipeline.build.build_iyp(..., incremental=True)``; the serving
side is ``repro serve --follow``.
"""

from repro.delta.apply import DeltaApplyError, DeltaApplyResult, apply_delta
from repro.delta.extract import delta_from_changelog, delta_from_diff, identify
from repro.delta.format import (
    DELTA_MAGIC,
    delta_to_json,
    is_delta_file,
    load_delta,
    read_delta_meta,
    save_delta,
)
from repro.delta.records import DeltaBatch, DeltaError
from repro.delta.statistics import refresh_statistics

__all__ = [
    "DELTA_MAGIC",
    "DeltaApplyError",
    "DeltaApplyResult",
    "DeltaBatch",
    "DeltaError",
    "apply_delta",
    "delta_from_changelog",
    "delta_from_diff",
    "delta_to_json",
    "identify",
    "is_delta_file",
    "load_delta",
    "read_delta_meta",
    "refresh_statistics",
    "save_delta",
]
