"""Admission control: bounded concurrency plus per-query limits.

The controller guards two resources:

- **worker slots** — at most ``max_concurrent`` queries execute at once;
  an over-capacity request is rejected immediately (HTTP 429) rather
  than queued, so a burst cannot build an unbounded backlog of threads
  all holding request state;
- **per-query budgets** — every admitted query gets a
  :class:`~repro.cypher.guard.QueryGuard` carrying the request's (or the
  server's default) timeout and row limit, enforced cooperatively inside
  the engine.

The CLI's ``repro query --timeout/--limit`` goes through this same
controller with a single slot, so interactive and served queries share
one enforcement path.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.cypher.guard import QueryGuard


class ServerBusyError(Exception):
    """Raised when every worker slot is taken."""

    def __init__(self, max_concurrent: int):
        self.max_concurrent = max_concurrent
        super().__init__(
            f"server is at its concurrency limit ({max_concurrent} queries)"
        )


class AdmissionController:
    """Caps concurrent queries and hands out per-query guards."""

    GUARDED_BY = {
        "active": "_lock",
        "peak_active": "_lock",
        # Monotonic counters: locked writes, lock-free reads allowed.
        "admitted": "write:_lock",
        "rejected": "write:_lock",
        "max_concurrent": "frozen",
        "default_timeout": "frozen",
        "default_max_rows": "frozen",
    }

    def __init__(
        self,
        max_concurrent: int = 8,
        default_timeout: float | None = 30.0,
        default_max_rows: int | None = 100_000,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.default_timeout = default_timeout
        self.default_max_rows = default_max_rows
        self._lock = threading.Lock()
        self.active = 0
        self.peak_active = 0
        self.admitted = 0
        self.rejected = 0

    @contextmanager
    def slot(self) -> Iterator[None]:
        """Occupy one worker slot; raises :class:`ServerBusyError` if full."""
        with self._lock:
            if self.active >= self.max_concurrent:
                self.rejected += 1
                raise ServerBusyError(self.max_concurrent)
            self.active += 1
            self.admitted += 1
            self.peak_active = max(self.peak_active, self.active)
        try:
            yield
        finally:
            with self._lock:
                self.active -= 1

    def guard(
        self, timeout: float | None = None, max_rows: int | None = None
    ) -> QueryGuard:
        """Build the execution guard for one admitted query.

        Explicit per-request limits override the server defaults but can
        only tighten them, never exceed them — a client cannot opt out of
        the operator's ceiling.
        """
        effective_timeout = _tightest(timeout, self.default_timeout)
        effective_rows = _tightest(max_rows, self.default_max_rows)
        return QueryGuard(timeout=effective_timeout, max_rows=effective_rows)

    def info(self) -> dict[str, Any]:
        """Occupancy counters for /stats and /metrics."""
        with self._lock:
            return {
                "max_concurrent": self.max_concurrent,
                "active": self.active,
                "peak_active": self.peak_active,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "default_timeout": self.default_timeout,
                "default_max_rows": self.default_max_rows,
            }


def _tightest(requested: float | None, ceiling: float | None) -> float | None:
    if requested is None:
        return ceiling
    if ceiling is None:
        return requested
    return min(requested, ceiling)
