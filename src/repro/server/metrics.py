"""Service metrics: counters and latency histograms, Prometheus-style.

Two complementary latency views are kept per metric name:

- fixed-bound **histogram buckets** (cumulative, Prometheus
  ``_bucket{le=...}`` semantics) — cheap, mergeable, unbounded history;
- a bounded **reservoir** of recent raw samples, from which p50/p95/p99
  are computed exactly for ``/stats`` and the throughput benchmark.

Everything is guarded by one lock; observation cost is a dict update and
a deque append, which is negligible next to query execution.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Iterable, Mapping

#: Histogram bucket upper bounds, in seconds (Prometheus convention;
#: +Inf is implicit).
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0,
)

#: Raw samples kept per metric for exact percentile computation.
RESERVOIR_SIZE = 4096

LabelSet = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, str] | None) -> LabelSet:
    return tuple(sorted((labels or {}).items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote, and line feed must be escaped."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels
    )
    return "{" + body + "}"


class Metrics:
    """Thread-safe counter/histogram registry with a Prometheus view."""

    GUARDED_BY = {
        "_counters": "_lock",
        "_bucket_counts": "_lock",
        "_sums": "_lock",
        "_counts": "_lock",
        "_reservoirs": "_lock",
        "_gauges": "_lock",
        "namespace": "frozen",
    }

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, dict[LabelSet, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self._bucket_counts: dict[str, list[int]] = {}
        self._sums: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)
        self._reservoirs: dict[str, deque[float]] = {}
        self._gauges: dict[str, dict[LabelSet, float]] = defaultdict(dict)

    # -- recording -------------------------------------------------------

    def inc(
        self, name: str, amount: float = 1, labels: Mapping[str, str] | None = None
    ) -> None:
        """Increment a counter (optionally labelled)."""
        with self._lock:
            self._counters[name][_labels_key(labels)] += amount

    def set_gauge(
        self, name: str, value: float, labels: Mapping[str, str] | None = None
    ) -> None:
        """Set a (optionally labelled) gauge to an absolute value.

        Unlike the ``extra_gauges`` of :meth:`render` — recomputed by the
        caller on every scrape — these persist in the registry, which is
        what per-crawler quality and SLO burn-rate series need (the label
        sets outlive any single scrape)."""
        with self._lock:
            self._gauges[name][_labels_key(labels)] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into histogram and reservoir."""
        with self._lock:
            buckets = self._bucket_counts.get(name)
            if buckets is None:
                buckets = [0] * (len(LATENCY_BUCKETS) + 1)  # last = +Inf
                self._bucket_counts[name] = buckets
                self._reservoirs[name] = deque(maxlen=RESERVOIR_SIZE)
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1
            self._sums[name] += seconds
            self._counts[name] += 1
            self._reservoirs[name].append(seconds)

    # -- reading ---------------------------------------------------------

    def counter_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        with self._lock:
            return self._counters.get(name, {}).get(_labels_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def percentiles(
        self, name: str, quantiles: Iterable[float] = (50, 95, 99)
    ) -> dict[str, float]:
        """Exact percentiles (in seconds) over the sample reservoir."""
        with self._lock:
            samples = sorted(self._reservoirs.get(name, ()))
        result: dict[str, float] = {}
        for quantile in quantiles:
            key = f"p{quantile:g}"
            if not samples:
                result[key] = 0.0
                continue
            rank = max(0, min(len(samples) - 1, round(quantile / 100 * len(samples)) - 1))
            result[key] = samples[rank]
        return result

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able summary for the /stats endpoint."""
        with self._lock:
            counters = {
                name: {
                    (_format_labels(labels) or "total"): value
                    for labels, value in by_label.items()
                }
                for name, by_label in self._counters.items()
            }
            latencies = {
                name: {"count": self._counts[name], "sum_seconds": self._sums[name]}
                for name in self._bucket_counts
            }
        for name in latencies:
            latencies[name].update(
                {k: v * 1000 for k, v in self.percentiles(name).items()}
            )  # milliseconds, for humans
        return {"counters": counters, "latency_ms": latencies}

    # -- Prometheus text format ------------------------------------------

    def render(self, extra_gauges: Mapping[str, float] | None = None) -> str:
        """Render every metric in the Prometheus text exposition format."""
        ns = self.namespace
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._counters):
                lines.append(f"# TYPE {ns}_{name} counter")
                for labels, value in sorted(self._counters[name].items()):
                    lines.append(f"{ns}_{name}{_format_labels(labels)} {value:g}")
            histogram_names = sorted(self._bucket_counts)
            bucket_data = {
                name: (
                    list(self._bucket_counts[name]),
                    self._sums[name],
                    self._counts[name],
                )
                for name in histogram_names
            }
        for name in histogram_names:
            buckets, total_sum, total_count = bucket_data[name]
            lines.append(f"# TYPE {ns}_{name} histogram")
            cumulative = 0
            # buckets carries one extra +Inf slot beyond the declared bounds.
            for bound, count in zip(LATENCY_BUCKETS, buckets, strict=False):
                cumulative += count
                lines.append(f'{ns}_{name}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += buckets[-1]
            lines.append(f'{ns}_{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{ns}_{name}_sum {total_sum:.6f}")
            lines.append(f"{ns}_{name}_count {total_count}")
            for key, value in self.percentiles(name).items():
                quantile = float(key[1:]) / 100
                lines.append(f'{ns}_{name}{{quantile="{quantile:g}"}} {value:.6f}')
        with self._lock:
            gauge_data = {
                name: dict(by_label) for name, by_label in self._gauges.items()
            }
        for name in sorted(gauge_data):
            lines.append(f"# TYPE {ns}_{name} gauge")
            for labels, value in sorted(gauge_data[name].items()):
                lines.append(f"{ns}_{name}{_format_labels(labels)} {value:g}")
        for gauge, value in sorted((extra_gauges or {}).items()):
            lines.append(f"# TYPE {ns}_{gauge} gauge")
            lines.append(f"{ns}_{gauge} {value:g}")
        return "\n".join(lines) + "\n"
