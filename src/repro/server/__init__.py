"""A concurrent Cypher query service over HTTP.

The paper's public IYP instance is a Neo4j endpoint anyone can query
with Cypher; this package is the reproduction's equivalent, serving a
snapshot (or a freshly built simnet world) as JSON over HTTP::

    python -m repro serve --snapshot iyp.json.gz --port 8734

    curl -s localhost:8734/healthz
    curl -s localhost:8734/query -d '{"query": "MATCH (a:AS) RETURN count(a)"}'

Layering:

- :mod:`repro.server.app` — transport-free service core (locking,
  caching, admission, structured errors);
- :mod:`repro.server.http` — the threaded stdlib HTTP transport;
- :mod:`repro.server.admission` — concurrency cap + per-query budgets;
- :mod:`repro.server.cache` — version-keyed LRU result cache;
- :mod:`repro.server.metrics` — counters, latency histograms,
  Prometheus text rendering.

See ``documentation/serving.md`` for the endpoint reference.
"""

from repro.server.admission import AdmissionController, ServerBusyError
from repro.server.app import (
    QueryService,
    ServiceError,
    ServingState,
    encode_result,
    encode_value,
)
from repro.server.cache import ResultCache
from repro.server.http import IYPHTTPServer, create_server
from repro.server.metrics import Metrics

__all__ = [
    "AdmissionController",
    "IYPHTTPServer",
    "Metrics",
    "QueryService",
    "ResultCache",
    "ServerBusyError",
    "ServiceError",
    "ServingState",
    "create_server",
    "encode_result",
    "encode_value",
]
