"""Threaded HTTP transport for the query service (stdlib only).

``ThreadingHTTPServer`` gives one thread per in-flight request; actual
query parallelism and backpressure are governed by the store's
readers-writer lock and the admission controller inside
:class:`~repro.server.app.QueryService`, so the transport stays dumb.

Endpoints::

    POST /query     {"query": "...", "parameters": {...},
                     "timeout": 5.0, "max_rows": 1000,
                     "snapshot": "<archive selector>"}   (time travel)
    POST /profile      (same body; bypasses the cache, returns the
                        executed operator tree alongside the rows)
    POST /lint      {"query": "..."}   (static diagnostics, no execution)
    POST /admin/swap   {"snapshot": "<selector>"}  (hot-swap the served
                        store to an archived snapshot, default latest)
    GET  /explain?q=<cypher>
    GET  /ontology
    GET  /archive      (the attached snapshot archive's manifest)
    GET  /archive/info?snapshot=<selector>
    GET  /stats
    GET  /healthz      (liveness: 200 while the process serves)
    GET  /readyz       (readiness: 503 while an archive load or hot
                        swap is in flight)
    GET  /metrics      (Prometheus text format)
    GET  /quality      (longitudinal data-quality report over the archive)
    GET  /debug/slowlog
    GET  /debug/statements?top=<n>&sort=<key>   (per-fingerprint stats)
    GET  /debug/traces
    GET  /debug/trace?id=<trace_id>
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.server.app import QueryService, ServiceError

log = logging.getLogger("repro.server")

MAX_BODY_BYTES = 4 * 1024 * 1024  # a 4 MiB query is a client bug


class IYPRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's QueryService."""

    server_version = "repro-iyp/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlsplit(self.path)
        route = url.path.rstrip("/") or "/"
        try:
            if route == "/healthz":
                self._send_json(200, self.service.health())
            elif route == "/readyz":
                ready, body = self.service.ready()
                self._send_json(200 if ready else 503, body)
            elif route == "/quality":
                self._send_json(200, self.service.quality_report())
            elif route == "/stats":
                self._send_json(200, self.service.stats())
            elif route == "/ontology":
                self._send_json(200, self.service.ontology())
            elif route == "/metrics":
                self._send_text(200, self.service.metrics_text())
            elif route == "/explain":
                query = parse_qs(url.query).get("q", [""])[0]
                if not query:
                    raise ServiceError(400, "bad_request", "missing ?q=<query>")
                self._send_json(200, self.service.explain(query))
            elif route == "/archive":
                self._send_json(200, self.service.archive_listing())
            elif route == "/archive/info":
                selector = parse_qs(url.query).get("snapshot", [""])[0]
                if not selector:
                    raise ServiceError(
                        400, "bad_request", "missing ?snapshot=<selector>"
                    )
                self._send_json(200, self.service.archive_info(selector))
            elif route == "/debug/slowlog":
                self._send_json(200, self.service.slowlog_snapshot())
            elif route == "/debug/statements":
                params = parse_qs(url.query)
                top_raw = params.get("top", [""])[0]
                try:
                    top = int(top_raw) if top_raw else None
                except ValueError:
                    raise ServiceError(
                        400, "bad_request", "top must be an integer"
                    ) from None
                sort = params.get("sort", ["total_seconds"])[0]
                self._send_json(
                    200, self.service.statements_snapshot(top=top, sort=sort)
                )
            elif route == "/debug/traces":
                self._send_json(200, self.service.traces())
            elif route == "/debug/trace":
                trace_id = parse_qs(url.query).get("id", [""])[0]
                if not trace_id:
                    raise ServiceError(400, "bad_request", "missing ?id=<trace_id>")
                self._send_json(200, self.service.trace(trace_id))
            else:
                raise ServiceError(404, "not_found", f"no route {route!r}")
        except ServiceError as exc:
            self._send_json(exc.status, exc.payload())

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        route = urlsplit(self.path).path.rstrip("/")
        try:
            if route == "/lint":
                request = self._read_json_body()
                self._send_json(200, self.service.lint(request.get("query", "")))
                return
            if route == "/admin/swap":
                request = self._read_json_body()
                self._send_json(
                    200,
                    self.service.load_and_swap(request.get("snapshot", "latest")),
                )
                return
            if route not in ("/query", "/profile"):
                raise ServiceError(404, "not_found", f"no route {route!r}")
            request = self._read_json_body()
            response = self.service.execute(
                request.get("query", ""),
                parameters=request.get("parameters"),
                timeout=request.get("timeout"),
                max_rows=request.get("max_rows"),
                profile=(route == "/profile"),
                snapshot=request.get("snapshot"),
            )
            # Serialize once here — the only place the response bytes
            # exist — and report the size into the statement's resource
            # counters (bytes_serialized) via its fingerprint.
            payload = json.dumps(response, separators=(",", ":")).encode("utf-8")
            self.service.record_response_bytes(
                response.get("meta", {}).get("fingerprint"), len(payload)
            )
            self._send_bytes(200, payload, "application/json; charset=utf-8")
        except ServiceError as exc:
            self._send_json(exc.status, exc.payload())

    # -- helpers ---------------------------------------------------------

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "body_too_large", "request body above 4 MiB")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError(400, "bad_request", "missing JSON body")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                400, "bad_request", f"invalid JSON body: {exc}"
            ) from exc
        if not isinstance(body, dict):
            raise ServiceError(400, "bad_request", "JSON body must be an object")
        parameters = body.get("parameters")
        if parameters is not None and not isinstance(parameters, dict):
            raise ServiceError(400, "bad_request", "parameters must be an object")
        return body

    def _send_json(self, status: int, payload: Any) -> None:
        self._send_bytes(
            status,
            json.dumps(payload, separators=(",", ":")).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs through ``logging`` instead of stderr."""
        log.debug("%s - %s", self.address_string(), format % args)


class IYPHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: QueryService):
        super().__init__(address, IYPRequestHandler)
        self.service = service

    def server_close(self) -> None:
        """On shutdown, leave the slow-query ring and the statement
        aggregates in the server log."""
        dump = self.service.slowlog.format_text()
        if dump:
            log.info("slow-query log at shutdown:\n%s", dump)
        if self.service.statements is not None:
            statements = self.service.statements.format_text()
            if statements:
                log.info("statement statistics at shutdown:\n%s", statements)
        super().server_close()


def create_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8734
) -> IYPHTTPServer:
    """Bind (port 0 picks a free port) without starting the serve loop.

    Callers run ``server.serve_forever()`` (blocking) or hand it to a
    thread; the bound port is ``server.server_address[1]``.
    """
    return IYPHTTPServer((host, port), service)
