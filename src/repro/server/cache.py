"""The result cache: memoized responses for read-only queries.

Entries are keyed on ``(query text, canonical parameter JSON, store
version)``.  Including the store's monotonic mutation version in the key
makes invalidation automatic and exact: any write bumps the version, so
every previously cached result simply stops being addressable and ages
out of the LRU.  Write queries and failed queries are never cached, so
an aborted or erroring request cannot poison the cache.
"""

from __future__ import annotations

import json
from typing import Any

from repro.cypher.lru import LRUCache


def canonical_params(parameters: dict[str, Any] | None) -> str:
    """A deterministic string form of a parameter map.

    ``sort_keys`` makes ``{a:1, b:2}`` and ``{b:2, a:1}`` the same cache
    entry; non-JSON-serializable parameters raise ``TypeError`` upstream
    (they would fail query execution anyway).
    """
    return json.dumps(parameters or {}, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Version-aware LRU cache of encoded query responses."""

    def __init__(self, maxsize: int = 256):
        self._lru = LRUCache(maxsize)

    def get(
        self, query: str, parameters: dict[str, Any] | None, version: int
    ) -> Any | None:
        return self._lru.get((query, canonical_params(parameters), version))

    def put(
        self,
        query: str,
        parameters: dict[str, Any] | None,
        version: int,
        payload: Any,
    ) -> None:
        self._lru.put((query, canonical_params(parameters), version), payload)

    def clear(self) -> None:
        self._lru.clear()

    def info(self) -> dict[str, Any]:
        return self._lru.info()
