"""The query service: everything the HTTP layer needs, HTTP-free.

:class:`QueryService` ties together the engine, the store's
readers-writer lock, the result cache, admission control, and metrics.
Keeping it transport-agnostic means tests (and the CLI) can exercise the
full serving semantics — caching, invalidation, admission, structured
errors — without opening a socket.

Execution paths:

- **read queries** run under the store's shared read lock, so any number
  execute in parallel; results are memoized in the version-keyed cache;
- **write queries** take the exclusive write lock for their whole
  execution, bump ``store.version`` (invalidating every cached result),
  and are never cached.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.cypher import CypherEngine
from repro.cypher.errors import (
    CypherError,
    CypherSyntaxError,
    QueryTimeoutError,
    RowLimitError,
)
from repro.cypher.result import QueryResult
from repro.graphdb.errors import ConstraintViolationError, GraphError
from repro.graphdb.store import GraphStore
from repro.ontology import ENTITIES, RELATIONSHIPS
from repro.server.admission import AdmissionController, ServerBusyError
from repro.server.cache import ResultCache
from repro.server.metrics import Metrics


class ServiceError(Exception):
    """An error with an HTTP status and a structured JSON body."""

    def __init__(self, status: int, code: str, message: str):
        self.status = status
        self.code = code
        super().__init__(message)

    def payload(self) -> dict[str, Any]:
        return {
            "error": {"code": self.code, "message": str(self), "status": self.status}
        }


def encode_value(value: Any) -> Any:
    """Translate a query-result value into plain JSON-able data.

    Nodes and relationships become tagged objects mirroring the Neo4j
    HTTP API's shape; paths (alternating node/rel lists) encode
    element-wise.
    """
    # Import here to avoid widening the module's public dependencies.
    from repro.graphdb.model import Node, Relationship

    if isinstance(value, Node):
        return {
            "_type": "node",
            "id": value.id,
            "labels": sorted(value.labels),
            "properties": dict(value.properties),
        }
    if isinstance(value, Relationship):
        return {
            "_type": "relationship",
            "id": value.id,
            "type": value.type,
            "start": value.start_id,
            "end": value.end_id,
            "properties": dict(value.properties),
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    return value


def encode_result(result: QueryResult) -> dict[str, Any]:
    """Encode a :class:`QueryResult` as the /query response body."""
    payload: dict[str, Any] = {
        "columns": list(result.columns),
        "rows": [
            [encode_value(record[column]) for column in result.columns]
            for record in result.records
        ],
        "row_count": len(result.records),
    }
    if result.stats:
        stats = result.stats
        payload["stats"] = {
            "nodes_created": stats.nodes_created,
            "nodes_deleted": stats.nodes_deleted,
            "relationships_created": stats.relationships_created,
            "relationships_deleted": stats.relationships_deleted,
            "properties_set": stats.properties_set,
            "labels_added": stats.labels_added,
        }
    return payload


class QueryService:
    """Concurrent Cypher-over-JSON serving against one graph store."""

    def __init__(
        self,
        store: GraphStore,
        *,
        max_concurrent: int = 8,
        default_timeout: float | None = 30.0,
        default_max_rows: int | None = 100_000,
        cache_size: int = 256,
        engine: CypherEngine | None = None,
    ):
        self.store = store
        self.engine = engine or CypherEngine(store)
        self.cache = ResultCache(cache_size)
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            default_timeout=default_timeout,
            default_max_rows=default_max_rows,
        )
        self.metrics = Metrics()
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # POST /query
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
    ) -> dict[str, Any]:
        """Run one query with admission control and caching.

        Returns the JSON-able response body; raises :class:`ServiceError`
        with the right HTTP status for every failure mode.
        """
        if not isinstance(query, str) or not query.strip():
            raise self._count_error(ServiceError(400, "bad_request", "empty query"))
        params = dict(parameters or {})
        started = time.monotonic()
        try:
            is_write = self.engine.is_write_query(query)
        except CypherSyntaxError as exc:
            raise self._count_error(ServiceError(400, "syntax_error", str(exc)))
        try:
            with self.admission.slot():
                if is_write:
                    body, cached = self._execute_write(query, params, timeout, max_rows)
                else:
                    body, cached = self._execute_read(query, params, timeout, max_rows)
        except ServerBusyError as exc:
            raise self._count_error(ServiceError(429, "busy", str(exc)))
        except QueryTimeoutError as exc:
            raise self._count_error(ServiceError(408, "timeout", str(exc)))
        except RowLimitError as exc:
            raise self._count_error(ServiceError(413, "row_limit", str(exc)))
        except CypherSyntaxError as exc:
            raise self._count_error(ServiceError(400, "syntax_error", str(exc)))
        except ConstraintViolationError as exc:
            raise self._count_error(ServiceError(409, "constraint_violation", str(exc)))
        except (CypherError, GraphError) as exc:
            raise self._count_error(ServiceError(400, "query_error", str(exc)))
        elapsed = time.monotonic() - started
        self.metrics.observe("query_latency_seconds", elapsed)
        self.metrics.inc(
            "queries_total",
            labels={"kind": "write" if is_write else "read",
                    "cache": "hit" if cached else "miss"},
        )
        return {
            **body,
            "meta": {
                "cached": cached,
                "elapsed_ms": round(elapsed * 1000, 3),
                "store_version": self.store.version,
            },
        }

    def _execute_read(
        self,
        query: str,
        params: dict[str, Any],
        timeout: float | None,
        max_rows: int | None,
    ) -> tuple[dict[str, Any], bool]:
        # The read lock spans version read + cache lookup + execution, so
        # the cached entry is guaranteed to describe the version it is
        # keyed on — a writer cannot slip in halfway through.
        with self.store.read_lock():
            version = self.store.version
            cached_body = self.cache.get(query, params, version)
            if cached_body is not None:
                return cached_body, True
            guard = self.admission.guard(timeout, max_rows)
            result = self.engine.run(query, params, guard=guard)
            body = encode_result(result)
            self.cache.put(query, params, version, body)
            return body, False

    def _execute_write(
        self,
        query: str,
        params: dict[str, Any],
        timeout: float | None,
        max_rows: int | None,
    ) -> tuple[dict[str, Any], bool]:
        guard = self.admission.guard(timeout, max_rows)
        with self.store.write_lock():
            result = self.engine.run(query, params, guard=guard)
            return encode_result(result), False

    def _count_error(self, error: ServiceError) -> ServiceError:
        self.metrics.inc("query_errors_total", labels={"code": error.code})
        return error

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------

    def explain(self, query: str) -> dict[str, Any]:
        """The engine's plan description for one query."""
        try:
            plan = self.engine.explain(query)
        except CypherSyntaxError as exc:
            raise ServiceError(400, "syntax_error", str(exc))
        return {"query": query, "plan": plan}

    def ontology(self) -> dict[str, Any]:
        """The IYP schema: entities and relationships (Tables 6-7)."""
        return {
            "entities": [
                {
                    "label": definition.label,
                    "key_properties": list(definition.key_properties),
                    "description": definition.description,
                    "loose": definition.loose,
                }
                for definition in ENTITIES.values()
            ],
            "relationships": [
                {
                    "type": definition.type,
                    "endpoints": [list(pair) for pair in definition.endpoints],
                    "description": definition.description,
                }
                for definition in RELATIONSHIPS.values()
            ],
        }

    def stats(self) -> dict[str, Any]:
        """Graph composition plus serving statistics."""
        with self.store.read_lock():
            graph = {
                "nodes": self.store.node_count,
                "relationships": self.store.relationship_count,
                "labels": dict(sorted(self.store.label_counts().items())),
                "relationship_types": dict(
                    sorted(self.store.relationship_type_counts().items())
                ),
                "indexes": [list(pair) for pair in self.store.indexes()],
                "constraints": [list(pair) for pair in self.store.constraints()],
                "version": self.store.version,
            }
        return {
            "graph": graph,
            "result_cache": self.cache.info(),
            "parse_cache": self.engine.parse_cache_info(),
            "admission": self.admission.info(),
            "metrics": self.metrics.snapshot(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    def health(self) -> dict[str, Any]:
        """Liveness: cheap, no locks beyond two dict length reads."""
        return {
            "status": "ok",
            "nodes": self.store.node_count,
            "relationships": self.store.relationship_count,
            "store_version": self.store.version,
        }

    def metrics_text(self) -> str:
        """The /metrics body in Prometheus text exposition format."""
        result_cache = self.cache.info()
        parse_cache = self.engine.parse_cache_info()
        admission = self.admission.info()
        gauges = {
            "store_version": float(self.store.version),
            "store_nodes": float(self.store.node_count),
            "store_relationships": float(self.store.relationship_count),
            "result_cache_size": float(result_cache["size"]),
            "result_cache_hit_rate": result_cache["hit_rate"],
            "parse_cache_size": float(parse_cache["size"]),
            "parse_cache_hit_rate": parse_cache["hit_rate"],
            "queries_active": float(admission["active"]),
            "queries_peak_active": float(admission["peak_active"]),
            "queries_rejected_total": float(admission["rejected"]),
            "uptime_seconds": time.monotonic() - self._started,
        }
        return self.metrics.render(extra_gauges=gauges)
