"""The query service: everything the HTTP layer needs, HTTP-free.

:class:`QueryService` ties together the engine, the store's
readers-writer lock, the result cache, admission control, and metrics.
Keeping it transport-agnostic means tests (and the CLI) can exercise the
full serving semantics — caching, invalidation, admission, structured
errors — without opening a socket.

Execution paths:

- **read queries** run under the store's shared read lock, so any number
  execute in parallel; results are memoized in the version-keyed cache;
- **write queries** take the exclusive write lock for their whole
  execution, bump ``store.version`` (invalidating every cached result),
  and are never cached.

Hot swap and time travel: the store, engine, and linter live together
in one immutable :class:`ServingState` that every request captures once
up front.  :meth:`QueryService.swap_store` builds a fresh state around
a new store and installs it under the *old* store's write lock — in-
flight readers finish on the state they captured, new requests see the
new one, and nothing fails mid-swap.  Each state carries a generation
token that participates in every cache key, so results computed against
one store can never answer for another even when version counters
collide.  With an archive attached, ``snapshot=`` on ``/query`` resolves
a named historical dump into a read-only serving state (LRU-cached) and
runs the query there instead.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, contextmanager
from typing import Any, Mapping

from repro.analytics import AnalyticsReport, compute_statistics
from repro.concurrency import new_lock
from repro.cypher import CypherEngine
from repro.cypher.errors import (
    CypherError,
    CypherSyntaxError,
    QueryTimeoutError,
    RowLimitError,
)
from repro.cypher.result import QueryResult
from repro.cypher.lru import LRUCache
from repro.graphdb.errors import ConstraintViolationError, GraphError
from repro.graphdb.store import GraphStore
from repro.lint import QueryLinter, fails_strict
from repro.obs import (
    Profiler,
    SLOTracker,
    SlowQueryLog,
    StatementRegistry,
    Tracer,
    archive_quality,
    quality_gauges,
)
from repro.ontology import ENTITIES, RELATIONSHIPS
from repro.server.admission import AdmissionController, ServerBusyError
from repro.server.cache import ResultCache
from repro.server.metrics import Metrics


class ServiceError(Exception):
    """An error with an HTTP status and a structured JSON body."""

    def __init__(self, status: int, code: str, message: str):
        self.status = status
        self.code = code
        super().__init__(message)

    def payload(self) -> dict[str, Any]:
        return {
            "error": {"code": self.code, "message": str(self), "status": self.status}
        }


def encode_value(value: Any) -> Any:
    """Translate a query-result value into plain JSON-able data.

    Nodes and relationships become tagged objects mirroring the Neo4j
    HTTP API's shape; paths (alternating node/rel lists) encode
    element-wise.
    """
    # Import here to avoid widening the module's public dependencies.
    from repro.graphdb.model import Node, Relationship

    if isinstance(value, Node):
        return {
            "_type": "node",
            "id": value.id,
            "labels": sorted(value.labels),
            "properties": dict(value.properties),
        }
    if isinstance(value, Relationship):
        return {
            "_type": "relationship",
            "id": value.id,
            "type": value.type,
            "start": value.start_id,
            "end": value.end_id,
            "properties": dict(value.properties),
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    return value


def encode_result(result: QueryResult) -> dict[str, Any]:
    """Encode a :class:`QueryResult` as the /query response body."""
    payload: dict[str, Any] = {
        "columns": list(result.columns),
        "rows": [
            [encode_value(record[column]) for column in result.columns]
            for record in result.records
        ],
        "row_count": len(result.records),
    }
    if result.stats:
        stats = result.stats
        payload["stats"] = {
            "nodes_created": stats.nodes_created,
            "nodes_deleted": stats.nodes_deleted,
            "relationships_created": stats.relationships_created,
            "relationships_deleted": stats.relationships_deleted,
            "properties_set": stats.properties_set,
            "labels_added": stats.labels_added,
        }
    return payload


class ServingState:
    """Everything bound to one served store, swapped as a unit.

    Instances are immutable after construction; requests capture one
    reference and use it throughout, so a concurrent hot swap can never
    hand a request the engine of one store and the lock of another.
    ``generation`` is part of every result-cache key: live states carry
    a monotonically increasing integer, historical (time-travel) states
    carry their archive label.
    """

    __slots__ = ("store", "engine", "linter", "generation", "label")

    # Immutable after construction — the whole point of the class: a
    # request captures one reference and every slot stays consistent.
    GUARDED_BY = {
        "store": "frozen",
        "engine": "frozen",
        "linter": "frozen",
        "generation": "frozen",
        "label": "frozen",
    }

    def __init__(
        self,
        store: GraphStore,
        engine: CypherEngine,
        linter: QueryLinter,
        generation: Any,
        label: str | None = None,
    ):
        self.store = store
        self.engine = engine
        self.linter = linter
        self.generation = generation
        self.label = label


class QueryService:
    """Concurrent Cypher-over-JSON serving against one graph store."""

    GUARDED_BY = {
        # The serving-state pointer: reads are a single lock-free
        # reference load (every request captures it once), but swaps are
        # serialized by _swap_lock — two concurrent swap_store calls must
        # not both derive a generation from the same old state.
        "_state": "write:_swap_lock",
        "_swap_count": "write:_swap_lock",
        "_loading": "_loading_lock",
        # Assigned once in __init__; the objects are internally locked.
        "archive": "frozen",
        "_historical": "frozen",
        "cache": "frozen",
        "admission": "frozen",
        "metrics": "frozen",
        "tracing": "frozen",
        "tracer": "frozen",
        "slowlog": "frozen",
        "statements": "frozen",
        "slo": "frozen",
        "_lint_cache": "frozen",
        "_started": "frozen",
    }

    def __init__(
        self,
        store: GraphStore,
        *,
        max_concurrent: int = 8,
        default_timeout: float | None = 30.0,
        default_max_rows: int | None = 100_000,
        cache_size: int = 256,
        engine: CypherEngine | None = None,
        metrics: Metrics | None = None,
        tracing: bool = True,
        slow_query_seconds: float = 1.0,
        slowlog_capacity: int = 128,
        archive: Any | None = None,
        snapshot_label: str | None = None,
        historical_stores: int = 4,
        statement_stats: bool = True,
        statement_capacity: int = 512,
        slo: SLOTracker | None = None,
    ):
        self._state = ServingState(
            store,
            engine or CypherEngine(store),
            QueryLinter(store),
            generation=0,
            label=snapshot_label,
        )
        #: Optional :class:`repro.archive.SnapshotArchive` backing the
        #: time-travel (``snapshot=``) selector and ``/admin/swap``.
        self.archive = archive
        #: label -> ServingState for loaded historical snapshots.
        self._historical: LRUCache = LRUCache(historical_stores)
        # Serializes hot swaps: the pointer install itself is atomic, but
        # generation arithmetic and the cache clears must not interleave.
        self._swap_lock = new_lock("QueryService._swap_lock")
        self._swap_count = 0
        self.cache = ResultCache(cache_size)
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            default_timeout=default_timeout,
            default_max_rows=default_max_rows,
        )
        #: One registry for everything — query serving, pipeline
        #: telemetry, observability gauges — so /metrics and /stats stay
        #: single-sourced.  Callers may pass a pre-populated registry
        #: (e.g. one the build pipeline already wrote crawler counters
        #: into).
        self.metrics = metrics or Metrics()
        #: With ``tracing`` off, spans and per-query profiling are both
        #: disabled — the comparison baseline for the overhead guard in
        #: ``benchmarks/test_server_throughput.py``.
        self.tracing = tracing
        self.tracer = Tracer(enabled=tracing)
        self.engine.tracer = self.tracer
        self._attach_analytics(self.engine, store, snapshot_label)
        self.slowlog = SlowQueryLog(
            threshold_seconds=slow_query_seconds, capacity=slowlog_capacity
        )
        #: pg_stat_statements-style per-fingerprint aggregates (None when
        #: disabled — the overhead-guard baseline).  With stats enabled a
        #: per-query profiler always runs, so resource counters (nodes
        #: scanned, binds attempted, ...) flow into the aggregates even
        #: when tracing is off.
        self.statements: StatementRegistry | None = (
            StatementRegistry(statement_capacity) if statement_stats else None
        )
        #: Rolling-window latency/availability objectives; pass a
        #: configured :class:`SLOTracker` to override the defaults.
        self.slo = slo or SLOTracker()
        #: Archive loads currently in flight; ``/readyz`` returns 503
        #: while this is non-zero (a swap's load phase can take seconds —
        #: a rollout orchestrator should not route new traffic here
        #: until the snapshot is actually being served).
        self._loading = 0
        self._loading_lock = new_lock("QueryService._loading_lock")
        #: Lint results per query text, so /query's meta.warnings does
        #: not re-analyze a hot query on every request.  Counters are
        #: bumped on the miss path only — once per distinct query.
        #: Cleared on hot swap (index-aware checks depend on the store).
        self._lint_cache: LRUCache = LRUCache(256)
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Serving state (hot swap + time travel)
    # ------------------------------------------------------------------

    @property
    def store(self) -> GraphStore:
        """The currently served store (changes on hot swap)."""
        return self._state.store

    @property
    def engine(self) -> CypherEngine:
        """The engine bound to the currently served store."""
        return self._state.engine

    @property
    def linter(self) -> QueryLinter:
        """The linter bound to the currently served store."""
        return self._state.linter

    @property
    def generation(self) -> int:
        """How many hot swaps this service has performed."""
        return self._state.generation

    @property
    def snapshot_label(self) -> str | None:
        """Archive label of the served snapshot, when known."""
        return self._state.label

    def _build_state(
        self, store: GraphStore, generation: Any, label: str | None
    ) -> ServingState:
        engine = CypherEngine(store)
        engine.tracer = self.tracer
        self._attach_analytics(engine, store, label)
        return ServingState(store, engine, QueryLinter(store), generation, label)

    def _attach_analytics(
        self, engine: CypherEngine, store: GraphStore, label: str | None
    ) -> None:
        """Give a serving engine measured planner statistics and, when
        the archive carries a build-time precompute for ``label``, the
        cached ``CALL algo.*`` rows.

        Archived reports are re-stamped to the loaded store's version
        (the binary loader resets the mutation counter), so the engine's
        generation check keeps matching until the first write.  Without
        archived analytics the statistics are measured on the spot —
        components skipped, serving only needs cardinalities.
        """
        payload = None
        if label is not None and self.archive is not None:
            try:
                payload = self.archive.resolve(label).analytics
            except KeyError:
                payload = None
        if payload:
            report = AnalyticsReport.from_dict(payload).for_store(store)
            engine.analytics = report
            if report.statistics is not None:
                engine.statistics = report.statistics
        if engine.statistics is None:
            engine.statistics = compute_statistics(store, components=False)

    def swap_store(self, store: GraphStore, label: str | None = None) -> dict[str, Any]:
        """Atomically replace the served store with ``store``.

        Swaps are serialized by ``_swap_lock`` (two concurrent swaps must
        not both derive a generation from the same old state).  The new
        serving state is built with no store locks held; the pointer swap
        happens under the *old* store's write lock, so it serializes with
        in-flight queries: readers that captured the old state finish
        against the old store, requests arriving after the swap see the
        new one, and none fail.  The result and lint caches are cleared —
        the new state's generation also keys every cache entry, so a
        reader racing the swap cannot poison the cache for the new store.
        """
        with self.tracer.trace("store_swap", label=label or ""):
            with self._swap_lock:
                old = self._state
                state = self._build_state(store, old.generation + 1, label)
                with old.store.write_lock():
                    self._state = state
                self.cache.clear()
                self._lint_cache.clear()
                self._swap_count += 1
        self.metrics.inc("store_swaps_total")
        return {
            "generation": state.generation,
            "snapshot": label,
            "nodes": store.node_count,
            "relationships": store.relationship_count,
        }

    def apply_delta(self, batch: Any, label: str | None = None) -> dict[str, Any]:
        """Advance the served store in place by applying a delta batch.

        The in-place counterpart to :meth:`swap_store` for ``repro serve
        --follow``: instead of building a whole new serving state around
        a reloaded store, the batch is replayed into the *live* store
        under its write lock (one atomic scope, one version bump), the
        planner's statistics are refreshed incrementally from the apply
        result, and a new :class:`ServingState` sharing the same store /
        engine / linter is installed carrying the new snapshot label.

        The generation is deliberately *not* bumped and the result cache
        is *not* cleared: the store's version bump already retires every
        cached entry (version participates in each cache key), and the
        lint cache only depends on indexes, which deltas never change.
        Raises :class:`~repro.delta.apply.DeltaApplyError` with the store
        untouched when the batch does not fit the served graph.
        """
        from repro.delta import refresh_statistics

        with self.tracer.trace("delta_apply", label=label or ""):
            with self._swap_lock:
                old = self._state
                result = old.store.apply_delta(batch)
                previous = old.engine.statistics
                if previous is not None:
                    # Atomic attribute store: a racing reader plans with
                    # either the old or the new statistics — both safe.
                    old.engine.statistics = refresh_statistics(
                        previous, old.store, result
                    )
                state = ServingState(
                    old.store, old.engine, old.linter, old.generation, label
                )
                with old.store.write_lock():
                    self._state = state
        self.metrics.inc("delta_applies_total")
        return {
            "generation": state.generation,
            "snapshot": label,
            "applied": result.counts(),
            "store_version": result.version,
            "nodes": state.store.node_count,
            "relationships": state.store.relationship_count,
        }

    def load_and_swap(self, selector: str = "latest") -> dict[str, Any]:
        """``POST /admin/swap``: load an archived snapshot, then swap.

        The load runs before any lock is taken, so queries keep flowing
        against the current store for its whole duration.
        """
        entry = self._archive_entry(selector)
        started = time.monotonic()
        with self._loading_guard():
            with self.tracer.trace("archive_load", label=entry.label):
                store = self.archive.load(entry)
            self.metrics.inc("archive_loads_total", labels={"reason": "swap"})
            body = self.swap_store(store, label=entry.label)
        body["load_seconds"] = round(time.monotonic() - started, 3)
        return body

    @contextmanager
    def _loading_guard(self):
        """Flip ``/readyz`` to 503 for the duration of the block."""
        with self._loading_lock:
            self._loading += 1
        try:
            yield
        finally:
            with self._loading_lock:
                self._loading -= 1

    def _archive_entry(self, selector: str):
        if self.archive is None:
            raise self._count_error(
                ServiceError(400, "no_archive", "no snapshot archive attached")
            )
        if not isinstance(selector, str) or not selector:
            raise self._count_error(
                ServiceError(400, "bad_request", "snapshot selector must be a string")
            )
        try:
            return self.archive.resolve(selector)
        except KeyError as exc:
            raise self._count_error(
                ServiceError(404, "unknown_snapshot", str(exc.args[0]))
            ) from exc

    def _historical_state(self, selector: str) -> ServingState:
        """The (cached) read-only serving state for an archived snapshot."""
        entry = self._archive_entry(selector)
        state = self._historical.get(entry.label)
        if state is None:
            with self.tracer.span("archive_load", label=entry.label):
                store = self.archive.load(entry)
            self.metrics.inc("archive_loads_total", labels={"reason": "time_travel"})
            state = self._build_state(
                store, generation=("snapshot", entry.label), label=entry.label
            )
            self._historical.put(entry.label, state)
        return state

    def archive_listing(self) -> dict[str, Any]:
        """``GET /archive``: the manifest, newest entry last."""
        if self.archive is None:
            raise ServiceError(400, "no_archive", "no snapshot archive attached")
        return {
            "root": str(self.archive.root),
            "snapshots": [entry.to_dict() for entry in self.archive.entries()],
            "serving": self.snapshot_label,
        }

    def archive_info(self, selector: str) -> dict[str, Any]:
        """``GET /archive/info?snapshot=...``: one entry's record."""
        entry = self._archive_entry(selector)
        return self.archive.info(entry.label)

    # ------------------------------------------------------------------
    # POST /query
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        profile: bool = False,
        snapshot: str | None = None,
    ) -> dict[str, Any]:
        """Run one query with admission control and caching.

        Returns the JSON-able response body; raises :class:`ServiceError`
        with the right HTTP status for every failure mode.  With
        ``profile`` the result cache is bypassed in both directions and
        the response carries the executed operator tree (``POST
        /profile``).  With ``snapshot`` the query runs read-only against
        the named archived dump (time travel) instead of the live store.
        """
        if not isinstance(query, str) or not query.strip():
            raise self._count_error(ServiceError(400, "bad_request", "empty query"))
        params = dict(parameters or {})
        with self.tracer.trace("request", profile=profile) as root:
            trace_id = root.trace_id if root is not None else None
            started = time.monotonic()
            # Capture one serving state for the whole request: a hot
            # swap concurrent with this query must not mix stores.
            state = self._state if snapshot is None else self._historical_state(snapshot)
            try:
                is_write = state.engine.is_write_query(query)
            except CypherSyntaxError as exc:
                raise self._count_error(
                    ServiceError(400, "syntax_error", str(exc))
                ) from exc
            if is_write and snapshot is not None:
                raise self._count_error(
                    ServiceError(
                        403, "read_only_snapshot",
                        f"archived snapshot {state.label!r} is read-only",
                    )
                )
            try:
                with ExitStack() as stack:
                    with self.tracer.span("admission"):
                        stack.enter_context(self.admission.slot())
                    if is_write:
                        body, cached, plan = self._execute_write(
                            state, query, params, timeout, max_rows, profile
                        )
                    else:
                        body, cached, plan = self._execute_read(
                            state, query, params, timeout, max_rows, profile
                        )
            except ServerBusyError as exc:
                self._observe_failure(state, query, started, "busy")
                raise self._count_error(
                    ServiceError(429, "busy", str(exc))
                ) from exc
            except QueryTimeoutError as exc:
                self._log_aborted(state, query, params, trace_id, started, "timeout")
                raise self._count_error(
                    ServiceError(408, "timeout", str(exc))
                ) from exc
            except RowLimitError as exc:
                self._log_aborted(state, query, params, trace_id, started, "row_limit")
                raise self._count_error(
                    ServiceError(413, "row_limit", str(exc))
                ) from exc
            except CypherSyntaxError as exc:
                self._observe_failure(state, query, started, "syntax_error")
                raise self._count_error(
                    ServiceError(400, "syntax_error", str(exc))
                ) from exc
            except ConstraintViolationError as exc:
                self._observe_failure(state, query, started, "constraint_violation")
                raise self._count_error(
                    ServiceError(409, "constraint_violation", str(exc))
                ) from exc
            except (CypherError, GraphError) as exc:
                self._observe_failure(state, query, started, "query_error")
                raise self._count_error(
                    ServiceError(400, "query_error", str(exc))
                ) from exc
            elapsed = time.monotonic() - started
        self.metrics.observe("query_latency_seconds", elapsed)
        self.metrics.inc(
            "queries_total",
            labels={"kind": "write" if is_write else "read",
                    "cache": "hit" if cached else "miss"},
        )
        self.slo.observe(elapsed)
        # Whole-query resource counters (nodes scanned, rels expanded,
        # binds attempted, ...) aggregated by the profiler; cache hits
        # executed nothing and carry none.
        counters = dict(plan.hits) if plan is not None else None
        fingerprint = None
        if self.statements is not None:
            identity = self._fingerprint_of(state, query)
            if identity is not None:
                fingerprint = identity[0]
                self.statements.record(
                    identity[0],
                    identity[1],
                    elapsed=elapsed,
                    rows=body.get("row_count", 0),
                    cached=cached,
                    counters=counters,
                )
        if plan is not None and self.slowlog.should_record(elapsed):
            self.metrics.inc("slow_queries_total")
            if fingerprint is None:
                identity = self._fingerprint_of(state, query)
                fingerprint = identity[0] if identity is not None else None
            self.slowlog.record(
                query,
                elapsed,
                parameters=params,
                trace_id=trace_id,
                plan=plan.to_dict(),
                fingerprint=fingerprint,
                counters=counters,
            )
        response = {
            **body,
            "meta": {
                "cached": cached,
                "elapsed_ms": round(elapsed * 1000, 3),
                "store_version": state.store.version,
            },
        }
        if fingerprint is not None:
            response["meta"]["fingerprint"] = fingerprint
        if snapshot is not None:
            response["meta"]["snapshot"] = state.label
        warnings = self._lint_warnings(state, query)
        if warnings:
            response["meta"]["warnings"] = warnings
        if trace_id is not None:
            response["meta"]["trace_id"] = trace_id
        if profile and plan is not None:
            response["profile"] = {
                "plan": plan.to_dict(),
                "render": plan.render().splitlines(),
            }
        return response

    def profile(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        snapshot: str | None = None,
    ) -> dict[str, Any]:
        """``POST /profile``: execute for real, return rows + plan tree."""
        return self.execute(
            query, parameters, timeout, max_rows, profile=True, snapshot=snapshot
        )

    def _profiler(self, profile: bool) -> Profiler | None:
        """Per-query profiler: always on while tracing is enabled (the
        slow-query log wants a plan for any query that turns out slow)
        or statement statistics are collecting (resource accounting rides
        on the profiler's collector), and forced for explicit PROFILE
        requests."""
        if profile or self.tracing or self.statements is not None:
            return Profiler()
        return None

    def _fingerprint_of(self, state: ServingState, query: str) -> tuple[str, str] | None:
        """``(fingerprint, normalized)`` for a query, None when it cannot
        be parsed — statement stats must never fail a request."""
        try:
            return state.engine.fingerprint(query)
        except (CypherError, GraphError):
            return None

    def _observe_failure(
        self, state: ServingState, query: str, started: float, code: str
    ) -> float:
        """Fold one failed query into SLO and statement aggregates."""
        elapsed = time.monotonic() - started
        self.slo.observe(elapsed, code)
        if self.statements is not None:
            identity = self._fingerprint_of(state, query)
            if identity is not None:
                self.statements.record(
                    identity[0], identity[1], elapsed=elapsed, error=code
                )
        return elapsed

    def _execute_read(
        self,
        state: ServingState,
        query: str,
        params: dict[str, Any],
        timeout: float | None,
        max_rows: int | None,
        profile: bool,
    ) -> tuple[dict[str, Any], bool, Any]:
        # The read lock spans version read + cache lookup + execution, so
        # the cached entry is guaranteed to describe the version it is
        # keyed on — a writer cannot slip in halfway through.  The
        # state's generation joins the cache key: results computed on a
        # pre-swap store (or an archived one) can never answer for the
        # live store even when version counters coincide.
        with state.store.read_lock():
            version = (state.generation, state.store.version)
            if not profile:
                with self.tracer.span("cache_lookup"):
                    cached_body = self.cache.get(query, params, version)
                if cached_body is not None:
                    return cached_body, True, None
            guard = self.admission.guard(timeout, max_rows)
            profiler = self._profiler(profile)
            result = state.engine.run(query, params, guard=guard, profiler=profiler)
            body = encode_result(result)
            if not profile:
                self.cache.put(query, params, version, body)
            return body, False, profiler.root if profiler else None

    def _execute_write(
        self,
        state: ServingState,
        query: str,
        params: dict[str, Any],
        timeout: float | None,
        max_rows: int | None,
        profile: bool,
    ) -> tuple[dict[str, Any], bool, Any]:
        guard = self.admission.guard(timeout, max_rows)
        profiler = self._profiler(profile)
        with state.store.write_lock():
            result = state.engine.run(query, params, guard=guard, profiler=profiler)
            body = encode_result(result)
        return body, False, profiler.root if profiler else None

    def _log_aborted(
        self,
        state: ServingState,
        query: str,
        params: dict[str, Any],
        trace_id: str | None,
        started: float,
        error: str,
    ) -> None:
        """Aborted queries go to the slow log with their error code."""
        elapsed = self._observe_failure(state, query, started, error)
        self.metrics.inc("slow_queries_total")
        identity = self._fingerprint_of(state, query)
        self.slowlog.record(
            query,
            elapsed,
            parameters=params,
            trace_id=trace_id,
            error=error,
            fingerprint=identity[0] if identity is not None else None,
        )

    def _count_error(self, error: ServiceError) -> ServiceError:
        self.metrics.inc("query_errors_total", labels={"code": error.code})
        return error

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------

    def _lint_warnings(self, state: ServingState, query: str) -> list[dict[str, Any]]:
        """Cached lint diagnostics for ``meta.warnings`` on /query."""
        cached = self._lint_cache.get(query)
        if cached is not None:
            return cached
        try:
            findings = state.linter.lint(query)
        except Exception:  # pragma: no cover - linting must never 500 a query
            findings = []
        encoded = [finding.to_dict() for finding in findings]
        for finding in findings:
            self.metrics.inc(
                "lint_diagnostics_total", labels={"severity": finding.severity}
            )
        self._lint_cache.put(query, encoded)
        return encoded

    def lint(self, query: str) -> dict[str, Any]:
        """``POST /lint``: static diagnostics for a query, no execution."""
        if not isinstance(query, str) or not query.strip():
            raise self._count_error(ServiceError(400, "bad_request", "empty query"))
        findings = self.linter.lint(query)
        for finding in findings:
            self.metrics.inc(
                "lint_diagnostics_total", labels={"severity": finding.severity}
            )
        return {
            "query": query,
            "diagnostics": [finding.to_dict() for finding in findings],
            "ok": not any(f.severity == "error" for f in findings),
            "strict_ok": not fails_strict(findings),
        }

    def explain(self, query: str) -> dict[str, Any]:
        """The engine's plan description for one query, plus lint warnings."""
        try:
            explanation = self.engine.explain(query)
        except CypherSyntaxError as exc:
            raise ServiceError(400, "syntax_error", str(exc)) from exc
        return {
            "query": query,
            "plan": explanation.plan,
            "warnings": [finding.to_dict() for finding in explanation.warnings],
        }

    def ontology(self) -> dict[str, Any]:
        """The IYP schema: entities and relationships (Tables 6-7)."""
        return {
            "entities": [
                {
                    "label": definition.label,
                    "key_properties": list(definition.key_properties),
                    "description": definition.description,
                    "loose": definition.loose,
                }
                for definition in ENTITIES.values()
            ],
            "relationships": [
                {
                    "type": definition.type,
                    "endpoints": [list(pair) for pair in definition.endpoints],
                    "description": definition.description,
                }
                for definition in RELATIONSHIPS.values()
            ],
        }

    def trace(self, trace_id: str) -> dict[str, Any]:
        """``GET /debug/trace?id=...``: one buffered trace as a span tree."""
        tree = self.tracer.trace_tree(trace_id)
        if tree is None:
            raise ServiceError(404, "unknown_trace", f"no trace {trace_id!r} buffered")
        return {"trace_id": trace_id, "spans": tree}

    def traces(self) -> dict[str, Any]:
        """``GET /debug/traces``: ids of every buffered trace, oldest first."""
        return {"trace_ids": self.tracer.trace_ids(), **self.tracer.info()}

    def slowlog_snapshot(self) -> dict[str, Any]:
        """``GET /debug/slowlog``: the slow-query ring, oldest first."""
        return self.slowlog.snapshot()

    def statements_snapshot(
        self, top: int | None = None, sort: str = "total_seconds"
    ) -> dict[str, Any]:
        """``GET /debug/statements``: per-fingerprint aggregates,
        hottest first."""
        if self.statements is None:
            raise ServiceError(
                404, "statements_disabled", "statement statistics are disabled"
            )
        try:
            return self.statements.snapshot(top=top, sort=sort)
        except ValueError as exc:
            raise ServiceError(400, "bad_request", str(exc)) from exc

    def record_response_bytes(self, fingerprint: str | None, nbytes: int) -> None:
        """Fold a serialized response size into the statement's resource
        counters (called by the HTTP layer, which is where the bytes
        actually exist) and the service-wide counter."""
        self.metrics.inc("response_bytes_total", nbytes)
        if self.statements is not None and fingerprint:
            self.statements.note_counter(fingerprint, "bytes_serialized", nbytes)

    def ready(self) -> tuple[bool, dict[str, Any]]:
        """``GET /readyz``: readiness, distinct from liveness.

        Not ready (503) while an archive load / hot swap is in flight —
        the served store is about to be replaced, so a rollout
        orchestrator should hold new traffic.  ``/healthz`` stays 200
        throughout: the process is alive either way.
        """
        with self._loading_lock:
            loading = self._loading
        ready = loading == 0
        state = self._state
        return ready, {
            "status": "ready" if ready else "loading",
            "loads_in_flight": loading,
            "generation": state.generation,
            "snapshot": state.label,
        }

    def quality_report(self) -> dict[str, Any]:
        """Longitudinal data-quality report over the attached archive."""
        if self.archive is None:
            raise ServiceError(400, "no_archive", "no snapshot archive attached")
        entries = [entry.to_dict() for entry in self.archive.entries()]
        return archive_quality(entries)

    def stats(self) -> dict[str, Any]:
        """Graph composition plus serving statistics."""
        state = self._state
        store = state.store
        with store.read_lock():
            graph = {
                "backend": store.backend_name,
                "nodes": store.node_count,
                "relationships": store.relationship_count,
                "labels": dict(sorted(store.label_counts().items())),
                "relationship_types": dict(
                    sorted(store.relationship_type_counts().items())
                ),
                "indexes": [list(pair) for pair in store.indexes()],
                "constraints": [list(pair) for pair in store.constraints()],
                "version": store.version,
                "generation": state.generation,
                "snapshot": state.label,
            }
        return {
            "graph": graph,
            "archive": {
                "attached": self.archive is not None,
                "swaps": self._swap_count,
                "historical_loaded": len(self._historical),
            },
            "result_cache": self.cache.info(),
            "parse_cache": self.engine.parse_cache_info(),
            "admission": self.admission.info(),
            "tracer": self.tracer.info(),
            "slowlog": {
                "threshold_seconds": self.slowlog.threshold_seconds,
                "entries": len(self.slowlog),
                "recorded_total": self.slowlog.recorded_total,
            },
            "statements": (
                self.statements.info()
                if self.statements is not None
                else {"enabled": False}
            ),
            "slo": self.slo.snapshot(),
            "metrics": self.metrics.snapshot(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    def health(self) -> dict[str, Any]:
        """Liveness: cheap, no locks beyond two dict length reads."""
        state = self._state
        return {
            "status": "ok",
            "nodes": state.store.node_count,
            "relationships": state.store.relationship_count,
            "store_version": state.store.version,
            "generation": state.generation,
            "snapshot": state.label,
        }

    def metrics_text(self) -> str:
        """The /metrics body in Prometheus text exposition format."""
        result_cache = self.cache.info()
        parse_cache = self.engine.parse_cache_info()
        admission = self.admission.info()
        gauges = {
            "store_version": float(self.store.version),
            "store_nodes": float(self.store.node_count),
            "store_relationships": float(self.store.relationship_count),
            "result_cache_size": float(result_cache["size"]),
            "result_cache_hit_rate": result_cache["hit_rate"],
            "result_cache_hits_total": float(result_cache["hits"]),
            "result_cache_misses_total": float(result_cache["misses"]),
            "result_cache_evictions_total": float(result_cache["evictions"]),
            "parse_cache_size": float(parse_cache["size"]),
            "parse_cache_hit_rate": parse_cache["hit_rate"],
            "parse_cache_hits_total": float(parse_cache["hits"]),
            "parse_cache_misses_total": float(parse_cache["misses"]),
            "queries_active": float(admission["active"]),
            "queries_peak_active": float(admission["peak_active"]),
            "queries_rejected_total": float(admission["rejected"]),
            "slowlog_entries": float(len(self.slowlog)),
            "slowlog_recorded_total": float(self.slowlog.recorded_total),
            "traces_buffered": float(self.tracer.info()["traces_buffered"]),
            "serving_generation": float(self._state.generation),
            "historical_stores_loaded": float(len(self._historical)),
            "uptime_seconds": time.monotonic() - self._started,
        }
        gauges.update(self.slo.gauges())
        if self.statements is not None:
            statements = self.statements.info()
            gauges["statements_tracked"] = float(statements["statements_tracked"])
            gauges["statements_recorded_total"] = float(
                statements["recorded_total"]
            )
            gauges["statements_evicted_total"] = float(statements["evicted_total"])
        if self.archive is not None:
            # Per-crawler labelled gauges persist in the registry; the
            # manifest is one small JSON read per scrape.
            try:
                report = self.quality_report()
            except (ServiceError, OSError, ValueError):
                report = None
            if report is not None:
                for name, value, labels in quality_gauges(report):
                    self.metrics.set_gauge(name, value, labels)
        return self.metrics.render(extra_gauges=gauges)
