"""The query service: everything the HTTP layer needs, HTTP-free.

:class:`QueryService` ties together the engine, the store's
readers-writer lock, the result cache, admission control, and metrics.
Keeping it transport-agnostic means tests (and the CLI) can exercise the
full serving semantics — caching, invalidation, admission, structured
errors — without opening a socket.

Execution paths:

- **read queries** run under the store's shared read lock, so any number
  execute in parallel; results are memoized in the version-keyed cache;
- **write queries** take the exclusive write lock for their whole
  execution, bump ``store.version`` (invalidating every cached result),
  and are never cached.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from typing import Any, Mapping

from repro.cypher import CypherEngine
from repro.cypher.errors import (
    CypherError,
    CypherSyntaxError,
    QueryTimeoutError,
    RowLimitError,
)
from repro.cypher.result import QueryResult
from repro.cypher.lru import LRUCache
from repro.graphdb.errors import ConstraintViolationError, GraphError
from repro.graphdb.store import GraphStore
from repro.lint import QueryLinter, fails_strict
from repro.obs import Profiler, SlowQueryLog, Tracer
from repro.ontology import ENTITIES, RELATIONSHIPS
from repro.server.admission import AdmissionController, ServerBusyError
from repro.server.cache import ResultCache
from repro.server.metrics import Metrics


class ServiceError(Exception):
    """An error with an HTTP status and a structured JSON body."""

    def __init__(self, status: int, code: str, message: str):
        self.status = status
        self.code = code
        super().__init__(message)

    def payload(self) -> dict[str, Any]:
        return {
            "error": {"code": self.code, "message": str(self), "status": self.status}
        }


def encode_value(value: Any) -> Any:
    """Translate a query-result value into plain JSON-able data.

    Nodes and relationships become tagged objects mirroring the Neo4j
    HTTP API's shape; paths (alternating node/rel lists) encode
    element-wise.
    """
    # Import here to avoid widening the module's public dependencies.
    from repro.graphdb.model import Node, Relationship

    if isinstance(value, Node):
        return {
            "_type": "node",
            "id": value.id,
            "labels": sorted(value.labels),
            "properties": dict(value.properties),
        }
    if isinstance(value, Relationship):
        return {
            "_type": "relationship",
            "id": value.id,
            "type": value.type,
            "start": value.start_id,
            "end": value.end_id,
            "properties": dict(value.properties),
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    return value


def encode_result(result: QueryResult) -> dict[str, Any]:
    """Encode a :class:`QueryResult` as the /query response body."""
    payload: dict[str, Any] = {
        "columns": list(result.columns),
        "rows": [
            [encode_value(record[column]) for column in result.columns]
            for record in result.records
        ],
        "row_count": len(result.records),
    }
    if result.stats:
        stats = result.stats
        payload["stats"] = {
            "nodes_created": stats.nodes_created,
            "nodes_deleted": stats.nodes_deleted,
            "relationships_created": stats.relationships_created,
            "relationships_deleted": stats.relationships_deleted,
            "properties_set": stats.properties_set,
            "labels_added": stats.labels_added,
        }
    return payload


class QueryService:
    """Concurrent Cypher-over-JSON serving against one graph store."""

    def __init__(
        self,
        store: GraphStore,
        *,
        max_concurrent: int = 8,
        default_timeout: float | None = 30.0,
        default_max_rows: int | None = 100_000,
        cache_size: int = 256,
        engine: CypherEngine | None = None,
        metrics: Metrics | None = None,
        tracing: bool = True,
        slow_query_seconds: float = 1.0,
        slowlog_capacity: int = 128,
    ):
        self.store = store
        self.engine = engine or CypherEngine(store)
        self.cache = ResultCache(cache_size)
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            default_timeout=default_timeout,
            default_max_rows=default_max_rows,
        )
        #: One registry for everything — query serving, pipeline
        #: telemetry, observability gauges — so /metrics and /stats stay
        #: single-sourced.  Callers may pass a pre-populated registry
        #: (e.g. one the build pipeline already wrote crawler counters
        #: into).
        self.metrics = metrics or Metrics()
        #: With ``tracing`` off, spans and per-query profiling are both
        #: disabled — the comparison baseline for the overhead guard in
        #: ``benchmarks/test_server_throughput.py``.
        self.tracing = tracing
        self.tracer = Tracer(enabled=tracing)
        self.engine.tracer = self.tracer
        self.slowlog = SlowQueryLog(
            threshold_seconds=slow_query_seconds, capacity=slowlog_capacity
        )
        self.linter = QueryLinter(store)
        #: Lint results per query text, so /query's meta.warnings does
        #: not re-analyze a hot query on every request.  Counters are
        #: bumped on the miss path only — once per distinct query.
        self._lint_cache: LRUCache = LRUCache(256)
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # POST /query
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        profile: bool = False,
    ) -> dict[str, Any]:
        """Run one query with admission control and caching.

        Returns the JSON-able response body; raises :class:`ServiceError`
        with the right HTTP status for every failure mode.  With
        ``profile`` the result cache is bypassed in both directions and
        the response carries the executed operator tree (``POST
        /profile``).
        """
        if not isinstance(query, str) or not query.strip():
            raise self._count_error(ServiceError(400, "bad_request", "empty query"))
        params = dict(parameters or {})
        with self.tracer.trace("request", profile=profile) as root:
            trace_id = root.trace_id if root is not None else None
            started = time.monotonic()
            try:
                is_write = self.engine.is_write_query(query)
            except CypherSyntaxError as exc:
                raise self._count_error(ServiceError(400, "syntax_error", str(exc)))
            try:
                with ExitStack() as stack:
                    with self.tracer.span("admission"):
                        stack.enter_context(self.admission.slot())
                    if is_write:
                        body, cached, plan = self._execute_write(
                            query, params, timeout, max_rows, profile
                        )
                    else:
                        body, cached, plan = self._execute_read(
                            query, params, timeout, max_rows, profile
                        )
            except ServerBusyError as exc:
                raise self._count_error(ServiceError(429, "busy", str(exc)))
            except QueryTimeoutError as exc:
                self._log_aborted(query, params, trace_id, started, "timeout")
                raise self._count_error(ServiceError(408, "timeout", str(exc)))
            except RowLimitError as exc:
                self._log_aborted(query, params, trace_id, started, "row_limit")
                raise self._count_error(ServiceError(413, "row_limit", str(exc)))
            except CypherSyntaxError as exc:
                raise self._count_error(ServiceError(400, "syntax_error", str(exc)))
            except ConstraintViolationError as exc:
                raise self._count_error(
                    ServiceError(409, "constraint_violation", str(exc))
                )
            except (CypherError, GraphError) as exc:
                raise self._count_error(ServiceError(400, "query_error", str(exc)))
            elapsed = time.monotonic() - started
        self.metrics.observe("query_latency_seconds", elapsed)
        self.metrics.inc(
            "queries_total",
            labels={"kind": "write" if is_write else "read",
                    "cache": "hit" if cached else "miss"},
        )
        if plan is not None and self.slowlog.should_record(elapsed):
            self.metrics.inc("slow_queries_total")
            self.slowlog.record(
                query,
                elapsed,
                parameters=params,
                trace_id=trace_id,
                plan=plan.to_dict(),
            )
        response = {
            **body,
            "meta": {
                "cached": cached,
                "elapsed_ms": round(elapsed * 1000, 3),
                "store_version": self.store.version,
            },
        }
        warnings = self._lint_warnings(query)
        if warnings:
            response["meta"]["warnings"] = warnings
        if trace_id is not None:
            response["meta"]["trace_id"] = trace_id
        if profile and plan is not None:
            response["profile"] = {
                "plan": plan.to_dict(),
                "render": plan.render().splitlines(),
            }
        return response

    def profile(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
    ) -> dict[str, Any]:
        """``POST /profile``: execute for real, return rows + plan tree."""
        return self.execute(query, parameters, timeout, max_rows, profile=True)

    def _profiler(self, profile: bool) -> Profiler | None:
        """Per-query profiler: always on while tracing is enabled (the
        slow-query log wants a plan for any query that turns out slow),
        and forced for explicit PROFILE requests."""
        if profile or self.tracing:
            return Profiler()
        return None

    def _execute_read(
        self,
        query: str,
        params: dict[str, Any],
        timeout: float | None,
        max_rows: int | None,
        profile: bool,
    ) -> tuple[dict[str, Any], bool, Any]:
        # The read lock spans version read + cache lookup + execution, so
        # the cached entry is guaranteed to describe the version it is
        # keyed on — a writer cannot slip in halfway through.
        with self.store.read_lock():
            version = self.store.version
            if not profile:
                with self.tracer.span("cache_lookup"):
                    cached_body = self.cache.get(query, params, version)
                if cached_body is not None:
                    return cached_body, True, None
            guard = self.admission.guard(timeout, max_rows)
            profiler = self._profiler(profile)
            result = self.engine.run(query, params, guard=guard, profiler=profiler)
            body = encode_result(result)
            if not profile:
                self.cache.put(query, params, version, body)
            return body, False, profiler.root if profiler else None

    def _execute_write(
        self,
        query: str,
        params: dict[str, Any],
        timeout: float | None,
        max_rows: int | None,
        profile: bool,
    ) -> tuple[dict[str, Any], bool, Any]:
        guard = self.admission.guard(timeout, max_rows)
        profiler = self._profiler(profile)
        with self.store.write_lock():
            result = self.engine.run(query, params, guard=guard, profiler=profiler)
            body = encode_result(result)
        return body, False, profiler.root if profiler else None

    def _log_aborted(
        self,
        query: str,
        params: dict[str, Any],
        trace_id: str | None,
        started: float,
        error: str,
    ) -> None:
        """Aborted queries go to the slow log with their error code."""
        self.metrics.inc("slow_queries_total")
        self.slowlog.record(
            query,
            time.monotonic() - started,
            parameters=params,
            trace_id=trace_id,
            error=error,
        )

    def _count_error(self, error: ServiceError) -> ServiceError:
        self.metrics.inc("query_errors_total", labels={"code": error.code})
        return error

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------

    def _lint_warnings(self, query: str) -> list[dict[str, Any]]:
        """Cached lint diagnostics for ``meta.warnings`` on /query."""
        cached = self._lint_cache.get(query)
        if cached is not None:
            return cached
        try:
            findings = self.linter.lint(query)
        except Exception:  # pragma: no cover - linting must never 500 a query
            findings = []
        encoded = [finding.to_dict() for finding in findings]
        for finding in findings:
            self.metrics.inc(
                "lint_diagnostics_total", labels={"severity": finding.severity}
            )
        self._lint_cache.put(query, encoded)
        return encoded

    def lint(self, query: str) -> dict[str, Any]:
        """``POST /lint``: static diagnostics for a query, no execution."""
        if not isinstance(query, str) or not query.strip():
            raise self._count_error(ServiceError(400, "bad_request", "empty query"))
        findings = self.linter.lint(query)
        for finding in findings:
            self.metrics.inc(
                "lint_diagnostics_total", labels={"severity": finding.severity}
            )
        return {
            "query": query,
            "diagnostics": [finding.to_dict() for finding in findings],
            "ok": not any(f.severity == "error" for f in findings),
            "strict_ok": not fails_strict(findings),
        }

    def explain(self, query: str) -> dict[str, Any]:
        """The engine's plan description for one query, plus lint warnings."""
        try:
            explanation = self.engine.explain(query)
        except CypherSyntaxError as exc:
            raise ServiceError(400, "syntax_error", str(exc))
        return {
            "query": query,
            "plan": explanation.plan,
            "warnings": [finding.to_dict() for finding in explanation.warnings],
        }

    def ontology(self) -> dict[str, Any]:
        """The IYP schema: entities and relationships (Tables 6-7)."""
        return {
            "entities": [
                {
                    "label": definition.label,
                    "key_properties": list(definition.key_properties),
                    "description": definition.description,
                    "loose": definition.loose,
                }
                for definition in ENTITIES.values()
            ],
            "relationships": [
                {
                    "type": definition.type,
                    "endpoints": [list(pair) for pair in definition.endpoints],
                    "description": definition.description,
                }
                for definition in RELATIONSHIPS.values()
            ],
        }

    def trace(self, trace_id: str) -> dict[str, Any]:
        """``GET /debug/trace?id=...``: one buffered trace as a span tree."""
        tree = self.tracer.trace_tree(trace_id)
        if tree is None:
            raise ServiceError(404, "unknown_trace", f"no trace {trace_id!r} buffered")
        return {"trace_id": trace_id, "spans": tree}

    def traces(self) -> dict[str, Any]:
        """``GET /debug/traces``: ids of every buffered trace, oldest first."""
        return {"trace_ids": self.tracer.trace_ids(), **self.tracer.info()}

    def slowlog_snapshot(self) -> dict[str, Any]:
        """``GET /debug/slowlog``: the slow-query ring, oldest first."""
        return self.slowlog.snapshot()

    def stats(self) -> dict[str, Any]:
        """Graph composition plus serving statistics."""
        with self.store.read_lock():
            graph = {
                "nodes": self.store.node_count,
                "relationships": self.store.relationship_count,
                "labels": dict(sorted(self.store.label_counts().items())),
                "relationship_types": dict(
                    sorted(self.store.relationship_type_counts().items())
                ),
                "indexes": [list(pair) for pair in self.store.indexes()],
                "constraints": [list(pair) for pair in self.store.constraints()],
                "version": self.store.version,
            }
        return {
            "graph": graph,
            "result_cache": self.cache.info(),
            "parse_cache": self.engine.parse_cache_info(),
            "admission": self.admission.info(),
            "tracer": self.tracer.info(),
            "slowlog": {
                "threshold_seconds": self.slowlog.threshold_seconds,
                "entries": len(self.slowlog),
                "recorded_total": self.slowlog.recorded_total,
            },
            "metrics": self.metrics.snapshot(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    def health(self) -> dict[str, Any]:
        """Liveness: cheap, no locks beyond two dict length reads."""
        return {
            "status": "ok",
            "nodes": self.store.node_count,
            "relationships": self.store.relationship_count,
            "store_version": self.store.version,
        }

    def metrics_text(self) -> str:
        """The /metrics body in Prometheus text exposition format."""
        result_cache = self.cache.info()
        parse_cache = self.engine.parse_cache_info()
        admission = self.admission.info()
        gauges = {
            "store_version": float(self.store.version),
            "store_nodes": float(self.store.node_count),
            "store_relationships": float(self.store.relationship_count),
            "result_cache_size": float(result_cache["size"]),
            "result_cache_hit_rate": result_cache["hit_rate"],
            "result_cache_hits_total": float(result_cache["hits"]),
            "result_cache_misses_total": float(result_cache["misses"]),
            "result_cache_evictions_total": float(result_cache["evictions"]),
            "parse_cache_size": float(parse_cache["size"]),
            "parse_cache_hit_rate": parse_cache["hit_rate"],
            "parse_cache_hits_total": float(parse_cache["hits"]),
            "parse_cache_misses_total": float(parse_cache["misses"]),
            "queries_active": float(admission["active"]),
            "queries_peak_active": float(admission["peak_active"]),
            "queries_rejected_total": float(admission["rejected"]),
            "slowlog_entries": float(len(self.slowlog)),
            "slowlog_recorded_total": float(self.slowlog.recorded_total),
            "traces_buffered": float(self.tracer.info()["traces_buffered"]),
            "uptime_seconds": time.monotonic() - self._started,
        }
        return self.metrics.render(extra_gauges=gauges)
