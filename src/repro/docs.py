"""Documentation generator — the IYP project's documentation pages.

The real project maintains ``documentation/data-sources.md``,
``node_types.md``, and ``relationship_types.md`` by hand; here they are
generated from the registry and the ontology, so they can never drift
from the code.  ``python -m repro docs`` (or :func:`write_docs`) writes
them under ``documentation/``.
"""

from __future__ import annotations

from pathlib import Path

from repro.datasets.registry import DATASETS, organizations
from repro.ontology import (
    ENTITIES,
    NODE_PROPERTIES,
    REFERENCE_PROPERTIES,
    RELATIONSHIP_PROPERTIES,
    RELATIONSHIPS,
)


def _property_cell(catalog: dict[str, str], exclude: tuple[str, ...] = ()) -> str:
    cells = [
        f"`{name}` ({kind})"
        for name, kind in sorted(catalog.items())
        if name not in exclude
    ]
    return ", ".join(cells) if cells else "—"


def render_data_sources() -> str:
    """The Table 8 page: every dataset with its metadata."""
    lines = [
        "# Data sources",
        "",
        f"{len(DATASETS)} datasets from {len(organizations())} organizations.",
        "",
        "| Organization | Dataset | Description | Frequency | License |",
        "|---|---|---|---|---|",
    ]
    for spec in DATASETS:
        lines.append(
            f"| {spec.organization} | `{spec.name}` | {spec.description} "
            f"| {spec.frequency} | {spec.license} |"
        )
    lines.append("")
    return "\n".join(lines)


def render_node_types() -> str:
    """The Table 6 page: entities and their identifying properties."""
    lines = [
        "# Node types (entities)",
        "",
        f"{len(ENTITIES)} entity types.",
        "",
        "| Entity | Key properties | Other properties | Description |",
        "|---|---|---|---|",
    ]
    for definition in ENTITIES.values():
        keys = ", ".join(f"`{k}`" for k in definition.key_properties)
        loose = " *(loosely identified)*" if definition.loose else ""
        extras = _property_cell(
            NODE_PROPERTIES.get(definition.label, {}),
            exclude=definition.key_properties,
        )
        lines.append(
            f"| `:{definition.label}` | {keys} | {extras} "
            f"| {definition.description}{loose} |"
        )
    lines.append("")
    return "\n".join(lines)


def render_relationship_types() -> str:
    """The Table 7 page: relationships and permitted endpoints."""
    lines = [
        "# Relationship types",
        "",
        f"{len(RELATIONSHIPS)} relationship types.",
        "",
        "All relationships additionally carry the `reference_*` provenance "
        "properties; the table lists only type-specific ones.",
        "",
        "| Relationship | Endpoints | Properties | Description |",
        "|---|---|---|---|",
    ]
    for definition in RELATIONSHIPS.values():
        endpoints = "; ".join(
            f"`{start}` → `{end}`" for start, end in definition.endpoints
        )
        extras = _property_cell(
            RELATIONSHIP_PROPERTIES.get(definition.type, {}),
            exclude=REFERENCE_PROPERTIES,
        )
        lines.append(
            f"| `:{definition.type}` | {endpoints} | {extras} "
            f"| {definition.description} |"
        )
    lines.append("")
    return "\n".join(lines)


def write_docs(directory: str | Path = "documentation") -> list[Path]:
    """Write all documentation pages; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    pages = {
        "data-sources.md": render_data_sources(),
        "node_types.md": render_node_types(),
        "relationship_types.md": render_relationship_types(),
    }
    written = []
    for name, content in pages.items():
        path = directory / name
        path.write_text(content, encoding="utf-8")
        written.append(path)
    return written
