"""Internet Yellow Pages — a full reproduction of the IMC 2024 paper.

Top-level convenience re-exports; see README.md for the architecture.

>>> from repro import IYP, WorldConfig, build_iyp, build_world
>>> iyp, report = build_iyp(build_world(WorldConfig.small()))  # doctest: +SKIP
"""

from repro.core import IYP, Reference
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world

__version__ = "1.0.0"

__all__ = [
    "IYP",
    "Reference",
    "WorldConfig",
    "__version__",
    "build_iyp",
    "build_world",
]
