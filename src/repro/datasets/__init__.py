"""Dataset crawlers: the extract-transform-load layer of IYP.

One crawler per dataset of the paper's Table 8.  Each crawler fetches
its dataset in the source's *native* serialization (CSV, JSONL, pipe-
separated delegation files, REST-API JSON...), parses it, and loads
nodes and provenance-stamped links through the :class:`repro.core.IYP`
facade.

Offline, fetching is served by :class:`SimulatedFetcher`, which renders
each dataset from the synthetic world (:mod:`repro.simnet`) — the
parser code path is identical either way.
"""

from repro.datasets.base import Crawler, Fetcher, FetchError, SimulatedFetcher
from repro.datasets.registry import DATASETS, DatasetSpec, crawlers_for, dataset_names

__all__ = [
    "Crawler",
    "DATASETS",
    "DatasetSpec",
    "FetchError",
    "Fetcher",
    "SimulatedFetcher",
    "crawlers_for",
    "dataset_names",
]
