"""The dataset registry — the machine-readable Table 8.

Every dataset IYP imports is described here: providing organization,
dataset name (the ``reference_name`` on links), update frequency,
license, the crawler class, and the simulated-content generator.  The
pipeline iterates this table; tests assert its size matches the paper
(46 datasets from ~23 organizations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import IYP
from repro.datasets.base import Crawler, Fetcher, SimulatedFetcher
from repro.datasets.crawlers import (
    alice_lg,
    apnic,
    bgpkit,
    bgptools,
    caida,
    cisco,
    citizenlab,
    cloudflare,
    emileaben,
    ihr,
    inetintel,
    nro,
    openintel,
    pch,
    peeringdb,
    ripe,
    rovista,
    simulamet,
    stanford,
    tranco,
    worldbank,
)


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 8."""

    organization: str
    name: str
    description: str
    frequency: str
    license: str
    url: str
    generator: Callable
    crawler_factory: Callable[[IYP, Fetcher], Crawler]


def _spec(org, name, description, frequency, license_, url, generator, factory):
    return DatasetSpec(org, name, description, frequency, license_, url, generator, factory)


DATASETS: list[DatasetSpec] = [
    # --- Alice-LG looking glasses (7 datasets) -------------------------
    *[
        _spec(
            "Alice-LG",
            f"alice-lg.{key}",
            f"IXP route-server looking glass snapshot ({key}).",
            "Daily",
            "None",
            url,
            alice_lg.make_generator(ix_index),
            (lambda key=key, url=url: lambda iyp, fetcher: alice_lg.AliceLGCrawler(
                iyp, fetcher, key, url
            ))(),
        )
        for key, url, ix_index in alice_lg.LOOKING_GLASSES
    ],
    # --- APNIC ----------------------------------------------------------
    _spec("APNIC", "apnic.as_population", "AS population estimate.",
          "Daily", "CC BY 4.0", apnic.ASPOP_URL, apnic.generate_aspop,
          apnic.ASPopulationCrawler),
    # --- BGPKIT ----------------------------------------------------------
    _spec("BGPKIT", "bgpkit.pfx2as",
          "Originating AS per prefix seen in all RIS and RouteViews collectors.",
          "Daily", "BGPKIT AUA", bgpkit.PFX2AS_URL, bgpkit.generate_pfx2as,
          bgpkit.PrefixToASNCrawler),
    _spec("BGPKIT", "bgpkit.as2rel", "AS-level relationships inferred from BGP.",
          "Daily", "BGPKIT AUA", bgpkit.AS2REL_URL, bgpkit.generate_as2rel,
          bgpkit.ASRelCrawler),
    _spec("BGPKIT", "bgpkit.peerstats", "Collector peering statistics.",
          "Daily", "BGPKIT AUA", bgpkit.PEER_STATS_URL, bgpkit.generate_peer_stats,
          bgpkit.PeerStatsCrawler),
    # --- BGP.Tools --------------------------------------------------------
    _spec("BGP.Tools", "bgptools.as_names", "AS names.", "Daily", "ODbL",
          bgptools.ASNAMES_URL, bgptools.generate_asnames, bgptools.ASNamesCrawler),
    _spec("BGP.Tools", "bgptools.tags", "AS classification tags.", "Daily", "ODbL",
          bgptools.TAGS_URL, bgptools.generate_tags, bgptools.ASTagsCrawler),
    _spec("BGP.Tools", "bgptools.anycast_prefixes", "Anycast prefix tags.",
          "Daily", "MIT", bgptools.ANYCAST_URL, bgptools.generate_anycast,
          bgptools.AnycastCrawler),
    # --- CAIDA -------------------------------------------------------------
    _spec("CAIDA", "caida.asrank", "Ranking of ASes based on customer cone.",
          "Monthly", "CAIDA AUA", caida.ASRANK_URL, caida.generate_asrank,
          caida.ASRankCrawler),
    _spec("CAIDA", "caida.ixs", "IXP identifiers and locations.",
          "Monthly", "CAIDA AUA", caida.IXS_URL, caida.generate_ixs,
          caida.IXsCrawler),
    # --- Cisco ---------------------------------------------------------------
    _spec("Cisco", "cisco.umbrella_top1m", "Umbrella popularity list.",
          "Daily", "Cisco ToS", cisco.UMBRELLA_URL, cisco.generate_umbrella,
          cisco.UmbrellaCrawler),
    # --- Citizen Lab ------------------------------------------------------------
    _spec("Citizen Lab", "citizenlab.urls", "URL testing lists.",
          "Weekly", "CC BY-NC-SA 4.0", citizenlab.URL_LIST,
          citizenlab.generate_url_list, citizenlab.URLTestingListCrawler),
    # --- Cloudflare ---------------------------------------------------------
    _spec("Cloudflare", "cloudflare.ranking_top", "Radar top domains.",
          "Daily", "CC BY-NC 4.0", cloudflare.RANKING_URL,
          cloudflare.generate_ranking, cloudflare.RankingCrawler),
    _spec("Cloudflare", "cloudflare.dns_top_ases",
          "ASes that queried a domain name the most (1.1.1.1 data).",
          "Daily", "CC BY-NC 4.0", cloudflare.TOP_ASES_URL,
          cloudflare.generate_top_ases, cloudflare.TopASesCrawler),
    _spec("Cloudflare", "cloudflare.dns_top_locations",
          "Countries that queried a domain name the most.",
          "Daily", "CC BY-NC 4.0", cloudflare.TOP_LOCATIONS_URL,
          cloudflare.generate_top_locations, cloudflare.TopLocationsCrawler),
    # --- Emile Aben -----------------------------------------------------------
    _spec("Emile Aben", "emileaben.as_names", "Community short AS names.",
          "Weekly", "MIT", emileaben.ASNAMES_URL, emileaben.generate_asnames,
          emileaben.ASNamesCrawler),
    # --- IHR --------------------------------------------------------------------
    _spec("IHR", "ihr.hegemony", "Inter-dependence of ASes based on BGP data.",
          "Daily", "CC BY-NC 4.0", ihr.HEGEMONY_URL, ihr.generate_hegemony,
          ihr.HegemonyCrawler),
    _spec("IHR", "ihr.country_dependency", "Country-level AS dependency.",
          "Daily", "CC BY-NC 4.0", ihr.COUNTRY_DEP_URL,
          ihr.generate_country_dependency, ihr.CountryDependencyCrawler),
    _spec("IHR", "ihr.rov", "Route origin validation state per prefix.",
          "Daily", "CC BY-NC 4.0", ihr.ROV_URL, ihr.generate_rov, ihr.ROVCrawler),
    # --- Internet Intelligence Lab -----------------------------------------------
    _spec("Internet Intelligence Lab", "inetintel.as2org",
          "AS to Organization mapping.", "Quarterly", "CC BY-NC-SA 4.0",
          inetintel.AS2ORG_URL, inetintel.generate_as2org, inetintel.AS2OrgCrawler),
    # --- NRO ------------------------------------------------------------------------
    _spec("NRO", "nro.delegated_stats",
          "Extended allocation and assignment reports.", "Daily", "NRO ToU",
          nro.DELEGATED_URL, nro.generate_delegated, nro.DelegatedStatsCrawler),
    # --- OpenINTEL --------------------------------------------------------------------
    _spec("OpenINTEL", "openintel.tranco1m",
          "DNS resolution for Tranco Top 1M domain names.", "Daily",
          "CC BY-NC 4.0", openintel.TRANCO1M_URL, openintel.generate_tranco1m,
          openintel.Tranco1MCrawler),
    _spec("OpenINTEL", "openintel.umbrella1m",
          "DNS resolution for Umbrella Top 1M domain names.", "Daily",
          "CC BY-NC 4.0", openintel.UMBRELLA1M_URL, openintel.generate_umbrella1m,
          openintel.Umbrella1MCrawler),
    _spec("OpenINTEL", "openintel.ns",
          "Authoritative nameservers with glue annotations.", "Daily",
          "CC BY-NC 4.0", openintel.NS_URL, openintel.generate_ns,
          openintel.NSCrawler),
    _spec("OpenINTEL", "openintel.dnsgraph", "DNS Dependency Graph.",
          "Weekly", "CC BY-NC 4.0", openintel.DNSGRAPH_URL,
          openintel.generate_dnsgraph, openintel.DNSGraphCrawler),
    # --- PCH ----------------------------------------------------------------------------
    _spec("PCH", "pch.routing_snapshot", "BGP data collected from PCH.",
          "Daily", "CC BY-NC-SA 3.0", pch.PCH_URL,
          pch.generate_routing_snapshot, pch.RoutingSnapshotCrawler),
    # --- PeeringDB ---------------------------------------------------------------------
    _spec("PeeringDB", "peeringdb.org", "Organizations registered in PeeringDB.",
          "Daily", "PeeringDB AUA", peeringdb.ORG_URL, peeringdb.generate_org,
          peeringdb.OrgCrawler),
    _spec("PeeringDB", "peeringdb.fac", "Co-location facilities.",
          "Daily", "PeeringDB AUA", peeringdb.FAC_URL, peeringdb.generate_fac,
          peeringdb.FacCrawler),
    _spec("PeeringDB", "peeringdb.ix", "Information related to IXPs.",
          "Daily", "PeeringDB AUA", peeringdb.IX_URL, peeringdb.generate_ix,
          peeringdb.IXCrawler),
    _spec("PeeringDB", "peeringdb.netixlan", "IXP membership of networks.",
          "Daily", "PeeringDB AUA", peeringdb.IXLAN_URL,
          peeringdb.generate_netixlan, peeringdb.NetIXLanCrawler),
    _spec("PeeringDB", "peeringdb.netfac", "Facility presence of networks.",
          "Daily", "PeeringDB AUA", peeringdb.NETFAC_URL,
          peeringdb.generate_netfac, peeringdb.NetFacCrawler),
    # --- RIPE NCC ------------------------------------------------------------------------
    _spec("RIPE NCC", "ripe.as_names", "Registered AS names and countries.",
          "Daily", "RIPE ToU", ripe.ASNAMES_URL, ripe.generate_asnames,
          ripe.ASNamesCrawler),
    _spec("RIPE NCC", "ripe.rpki", "RPKI route origin authorizations.",
          "Daily", "RIPE ToU", ripe.RPKI_URL, ripe.generate_rpki,
          ripe.RPKICrawler),
    _spec("RIPE NCC", "ripe.atlas_probes", "RIPE Atlas probe metadata.",
          "Daily", "RIPE ToU", ripe.ATLAS_PROBES_URL,
          ripe.generate_atlas_probes, ripe.AtlasProbesCrawler),
    _spec("RIPE NCC", "ripe.atlas_measurements",
          "RIPE Atlas measurement information.", "Daily", "RIPE ToU",
          ripe.ATLAS_MEASUREMENTS_URL, ripe.generate_atlas_measurements,
          ripe.AtlasMeasurementsCrawler),
    # --- SimulaMet -----------------------------------------------------------------------
    _spec("SimulaMet", "simulamet.rdns", "Reverse-DNS delegations (rir-data).",
          "Weekly", "CC BY 4.0", simulamet.RDNS_URL, simulamet.generate_rdns,
          simulamet.RDNSCrawler),
    # --- Stanford -------------------------------------------------------------------------
    _spec("Stanford", "stanford.asdb", "Classification of ASes by business type.",
          "6-month", "None", stanford.ASDB_URL, stanford.generate_asdb,
          stanford.ASdbCrawler),
    # --- Tranco ---------------------------------------------------------------------------
    _spec("Tranco", "tranco.top1m", "Research-oriented top-sites ranking.",
          "Daily", "MIT", tranco.TRANCO_URL, tranco.generate_tranco,
          tranco.TrancoCrawler),
    # --- Virginia Tech ----------------------------------------------------------------------
    _spec("Virginia Tech", "rovista.rov", "RoVista: ROV filtering per AS.",
          "Daily", "None", rovista.ROVISTA_URL, rovista.generate_rovista,
          rovista.RoVistaCrawler),
    # --- World Bank -------------------------------------------------------------------------
    _spec("World Bank", "worldbank.country_pop", "Country population estimate.",
          "Yearly", "CC BY 4.0", worldbank.POPULATION_URL,
          worldbank.generate_population, worldbank.WorldBankPopulationCrawler),
]


def dataset_names() -> list[str]:
    """All dataset reference names in registry order."""
    return [spec.name for spec in DATASETS]


def organizations() -> list[str]:
    """Distinct providing organizations."""
    return sorted({spec.organization for spec in DATASETS})


def make_fetcher(world) -> SimulatedFetcher:
    """A fetcher serving every registered dataset from a world."""
    fetcher = SimulatedFetcher(world)
    for spec in DATASETS:
        fetcher.register(spec.url, spec.generator)
    return fetcher


def crawlers_for(
    iyp: IYP, fetcher: Fetcher, names: list[str] | None = None
) -> list[Crawler]:
    """Instantiate crawlers (all by default, or a named subset)."""
    selected = []
    wanted = set(names) if names is not None else None
    for spec in DATASETS:
        if wanted is not None and spec.name not in wanted:
            continue
        selected.append(spec.crawler_factory(iyp, fetcher))
    if wanted is not None:
        missing = wanted - {spec.name for spec in DATASETS}
        if missing:
            raise KeyError(f"unknown dataset names: {sorted(missing)}")
    return selected
