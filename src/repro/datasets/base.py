"""Crawler framework: fetchers, the crawler base class, provenance.

A :class:`Crawler` is constructed with the target :class:`~repro.core.IYP`
instance and a :class:`Fetcher`.  ``run()`` fetches the dataset's URL(s)
and loads the parsed content.  The systematic provenance properties of
Section 2.2 are produced by :meth:`Crawler.reference`.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Callable

from repro.core import IYP, Reference

SNAPSHOT_DATE = "2024-05-01T00:00:00Z"


class FetchError(Exception):
    """Raised when a dataset URL cannot be served."""


class Fetcher(abc.ABC):
    """Transport abstraction: maps a URL to the dataset's raw bytes."""

    @abc.abstractmethod
    def fetch(self, url: str) -> str:
        """Return the content behind ``url``; raises FetchError."""


class SimulatedFetcher(Fetcher):
    """Serves dataset URLs rendered from the synthetic world.

    The registry wires each dataset URL to a generator function
    ``world -> str`` producing the file in the original source's format.
    Rendered files are cached, and fetches are counted so tests can
    assert that crawlers hit the network layer exactly once per URL.
    """

    def __init__(self, world) -> None:
        self.world = world
        self._generators: dict[str, Callable] = {}
        self._cache: dict[str, str] = {}
        self.fetch_counts: dict[str, int] = {}

    def register(self, url: str, generator: Callable) -> None:
        """Associate a URL with its content generator."""
        self._generators[url] = generator

    def fetch(self, url: str) -> str:
        self.fetch_counts[url] = self.fetch_counts.get(url, 0) + 1
        if url not in self._cache:
            generator = self._generators.get(url)
            if generator is None:
                raise FetchError(f"no simulated source registered for {url!r}")
            self._cache[url] = generator(self.world)
        return self._cache[url]


class RecordingFetcher(Fetcher):
    """Wraps a fetcher and checksums every payload that flows through.

    The incremental build pipeline (``build_iyp(..., incremental=True)``)
    needs to know, *before* running a crawler, whether its inputs changed
    since the previous build.  This wrapper is always in the path: it
    records a SHA-256 per URL, and :meth:`begin`/:meth:`end` bracket one
    crawler's run so the URLs it touched land in that crawler's
    :class:`~repro.pipeline.build.CrawlerRun` record.  The next build
    re-fetches (cheap — rendering, not crawling) and compares
    :meth:`payload_checksum` per crawler to decide what to skip.
    """

    def __init__(self, inner: Fetcher):
        self.inner = inner
        self.digests: dict[str, str] = {}
        self._active: list[str] | None = None

    def fetch(self, url: str) -> str:
        content = self.inner.fetch(url)
        self.digests[url] = hashlib.sha256(content.encode("utf-8")).hexdigest()
        if self._active is not None and url not in self._active:
            self._active.append(url)
        return content

    def begin(self) -> None:
        """Start attributing fetched URLs to one crawler's run."""
        self._active = []

    def end(self) -> list[str]:
        """Stop attributing; returns the URLs fetched since :meth:`begin`."""
        urls = self._active or []
        self._active = None
        return urls

    def digest(self, url: str) -> str:
        """SHA-256 of ``url``'s payload, fetching it if not yet seen."""
        if url not in self.digests:
            self.fetch(url)
        return self.digests[url]

    def payload_checksum(self, urls: list[str]) -> str:
        """One checksum over a crawler's full input set.

        Stable under URL ordering; any byte change in any payload (or a
        URL appearing/disappearing) changes the checksum.
        """
        summary = hashlib.sha256()
        for url in sorted(set(urls)):
            summary.update(url.encode("utf-8"))
            summary.update(b"\n")
            summary.update(self.digest(url).encode("ascii"))
            summary.update(b"\n")
        return summary.hexdigest()


class StaticFetcher(Fetcher):
    """Serves URLs from a fixed mapping (used by parser unit tests)."""

    def __init__(self, contents: dict[str, str]):
        self._contents = dict(contents)

    def fetch(self, url: str) -> str:
        try:
            return self._contents[url]
        except KeyError as exc:
            raise FetchError(f"no content for {url!r}") from exc


class Crawler(abc.ABC):
    """Base class of all dataset crawlers.

    Subclasses define the class attributes ``organization``, ``name``
    (the ``reference_name`` stamped on links), ``url_data`` and
    optionally ``url_info``, and implement :meth:`run`.
    """

    organization: str = ""
    name: str = ""
    url_data: str = ""
    url_info: str = ""

    def __init__(self, iyp: IYP, fetcher: Fetcher):
        self.iyp = iyp
        self.fetcher = fetcher

    def fetch(self, url: str | None = None) -> str:
        """Fetch the dataset (or a specific URL)."""
        return self.fetcher.fetch(url or self.url_data)

    def reference(self) -> Reference:
        """Provenance stamped on every link this crawler creates."""
        return Reference(
            organization=self.organization,
            dataset_name=self.name,
            url_info=self.url_info,
            url_data=self.url_data,
            time_modification=SNAPSHOT_DATE,
            time_fetch=SNAPSHOT_DATE,
        )

    @abc.abstractmethod
    def run(self) -> None:
        """Fetch, parse, and load the dataset into the knowledge graph."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
