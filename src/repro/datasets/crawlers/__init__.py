"""One crawler module per data-providing organization (paper Table 8)."""
