"""Georgia Tech Internet Intelligence Lab: AS-to-Organization mapping.

Sibling ASes (several ASNs run by one organization) become SIBLING_OF
links, plus MANAGED_BY links to the shared Organization node.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

AS2ORG_URL = (
    "https://raw.githubusercontent.com/InetIntel/"
    "Dataset-AS-to-Organization-Mapping/main/latest.jsonl"
)


def generate_as2org(world: World) -> str:
    """JSONL: one record per organization with its ASN list."""
    lines = []
    for org in world.orgs.values():
        lines.append(
            json.dumps(
                {"org_name": org.name, "country": org.country, "asns": sorted(org.asns)}
            )
        )
    return "\n".join(lines)


class AS2OrgCrawler(Crawler):
    organization = "Internet Intelligence Lab"
    name = "inetintel.as2org"
    url_data = AS2ORG_URL
    url_info = (
        "https://github.com/InetIntel/Dataset-AS-to-Organization-Mapping"
    )

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            org = self.iyp.get_node("Organization", name=record["org_name"])
            as_nodes = [
                self.iyp.get_node("AS", asn=asn) for asn in record["asns"]
            ]
            for as_node in as_nodes:
                self.iyp.add_link(as_node, "MANAGED_BY", org, None, reference)
            for first, second in zip(as_nodes, as_nodes[1:], strict=False):
                self.iyp.add_link(first, "SIBLING_OF", second, None, reference)
