"""Virginia Tech RoVista: which ASes filter RPKI-invalid routes."""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

ROVISTA_URL = "https://rovista.netsecurelab.org/api/latest.csv"


def generate_rovista(world: World) -> str:
    """CSV: asn,ratio — fraction of invalid routes the AS filters.

    Networks that register ROAs tend to also validate, so the filtering
    ratio is correlated with the AS's RPKI propensity.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["asn", "ratio"])
    for asn in sorted(world.ases):
        info = world.ases[asn]
        ratio = round(min(1.0, info.rpki_propensity * 0.9 + (asn % 7) * 0.01), 2)
        writer.writerow([asn, ratio])
    return buffer.getvalue()


class RoVistaCrawler(Crawler):
    """Tags ASes as 'Validating RPKI ROV' / 'Not Validating RPKI ROV'."""

    organization = "Virginia Tech"
    name = "rovista.rov"
    url_data = ROVISTA_URL
    url_info = "https://rovista.netsecurelab.org"

    def run(self) -> None:
        reference = self.reference()
        validating = self.iyp.get_node("Tag", label="Validating RPKI ROV")
        not_validating = self.iyp.get_node("Tag", label="Not Validating RPKI ROV")
        reader = csv.DictReader(io.StringIO(self.fetch()))
        for row in reader:
            as_node = self.iyp.get_node("AS", asn=int(row["asn"]))
            ratio = float(row["ratio"])
            tag = validating if ratio > 0.5 else not_validating
            self.iyp.add_link(
                as_node, "CATEGORIZED", tag, {"ratio": ratio}, reference
            )
