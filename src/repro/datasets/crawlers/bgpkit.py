"""BGPKIT datasets: pfx2as, as2rel, peer-stats.

pfx2as is IYP's only prefix-to-origin source (the paper's Originality
rule: it uses all RIS and RouteViews collectors and is updated daily).
The generator injects the IPv6 origin error of Section 6.1 so the
dataset-comparison study has something real to find.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

PFX2AS_URL = "https://data.bgpkit.com/pfx2as/pfx2as-latest.json"
AS2REL_URL = "https://data.bgpkit.com/as2rel/as2rel-latest.json"
PEER_STATS_URL = "https://data.bgpkit.com/peer-stats/peer-stats-latest.json"


def generate_pfx2as(world: World) -> str:
    """Render the pfx2as file: a JSON array of {prefix, asn, count}.

    A small fraction of IPv6 entries carries a wrong origin ASN — the
    injected data error that the Section 6.1 comparison must detect.
    """
    error_every = (
        int(1 / world.config.bgpkit_ipv6_error_fraction)
        if world.config.bgpkit_ipv6_error_fraction > 0
        else 0
    )
    wrong_origin = min(world.ases)
    records = []
    v6_index = 0
    for prefix in sorted(world.prefixes):
        info = world.prefixes[prefix]
        for origin in info.origins:
            reported = origin
            if info.af == 6:
                v6_index += 1
                if error_every and v6_index % error_every == 0 and origin != wrong_origin:
                    reported = wrong_origin
            records.append({"prefix": info.prefix, "asn": reported, "count": 12})
    return json.dumps(records)


def generate_as2rel(world: World) -> str:
    """AS relationships: rel 0 = peer-to-peer, 1 = provider-to-customer."""
    records = []
    for asn in sorted(world.ases):
        info = world.ases[asn]
        for peer in info.peers:
            if asn < peer:
                records.append({"asn1": asn, "asn2": peer, "rel": 0})
        for customer in info.customers:
            records.append({"asn1": asn, "asn2": customer, "rel": 1})
    return json.dumps(records)


def generate_peer_stats(world: World) -> str:
    """Collector peering: one record per (collector, peer ASN)."""
    records = [
        {"collector": collector, "asn": asn}
        for collector, peers in sorted(world.collector_peers.items())
        for asn in peers
    ]
    return json.dumps(records)


class PrefixToASNCrawler(Crawler):
    """Loads (:AS)-[:ORIGINATE]->(:Prefix) from BGPKIT pfx2as."""

    organization = "BGPKIT"
    name = "bgpkit.pfx2as"
    url_data = PFX2AS_URL
    url_info = "https://data.bgpkit.com/pfx2as"

    def run(self) -> None:
        records = json.loads(self.fetch())
        reference = self.reference()
        as_nodes = self.iyp.batch_get_nodes(
            "AS", "asn", [record["asn"] for record in records]
        )
        prefix_nodes = self.iyp.batch_get_nodes(
            "Prefix", "prefix", [record["prefix"] for record in records]
        )
        for record in records:
            asn = self.iyp.canonicalize("AS", "asn", record["asn"])
            prefix = self.iyp.canonicalize("Prefix", "prefix", record["prefix"])
            self.iyp.add_link(
                as_nodes[asn],
                "ORIGINATE",
                prefix_nodes[prefix],
                {"count": record.get("count", 1)},
                reference,
            )


class ASRelCrawler(Crawler):
    """Loads (:AS)-[:PEERS_WITH {rel}]->(:AS) from BGPKIT as2rel."""

    organization = "BGPKIT"
    name = "bgpkit.as2rel"
    url_data = AS2REL_URL

    def run(self) -> None:
        records = json.loads(self.fetch())
        reference = self.reference()
        asns = {record["asn1"] for record in records} | {
            record["asn2"] for record in records
        }
        nodes = self.iyp.batch_get_nodes("AS", "asn", sorted(asns))
        for record in records:
            self.iyp.add_link(
                nodes[record["asn1"]],
                "PEERS_WITH",
                nodes[record["asn2"]],
                {"rel": record["rel"]},
                reference,
            )


class PeerStatsCrawler(Crawler):
    """Loads (:AS)-[:PEERS_WITH]->(:BGPCollector) from peer-stats."""

    organization = "BGPKIT"
    name = "bgpkit.peerstats"
    url_data = PEER_STATS_URL

    def run(self) -> None:
        records = json.loads(self.fetch())
        reference = self.reference()
        as_nodes = self.iyp.batch_get_nodes(
            "AS", "asn", sorted({record["asn"] for record in records})
        )
        collectors = {
            name: self.iyp.get_node("BGPCollector", name=name)
            for name in sorted({record["collector"] for record in records})
        }
        for record in records:
            self.iyp.add_link(
                as_nodes[record["asn"]],
                "PEERS_WITH",
                collectors[record["collector"]],
                None,
                reference,
            )
