"""SimulaMet rir-data.org reverse-DNS delegations.

Maps RIR address blocks to the nameservers their reverse zones are
delegated to: (:Prefix)-[:MANAGED_BY]->(:AuthoritativeNameServer).
"""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

RDNS_URL = "https://rir-data.org/rdns/latest.csv"


def generate_rdns(world: World) -> str:
    """CSV: prefix,nameserver — reverse-zone delegation per block."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["prefix", "nameserver"])
    providers = sorted(world.dns_providers)
    if not providers:
        return buffer.getvalue()
    for index, (block, _opaque, _rir, _country) in enumerate(sorted(world.allocations)):
        provider = world.dns_providers[providers[index % len(providers)]]
        for ns_name in provider.ns_pool[:2]:
            writer.writerow([block, ns_name])
    return buffer.getvalue()


class RDNSCrawler(Crawler):
    organization = "SimulaMet"
    name = "simulamet.rdns"
    url_data = RDNS_URL
    url_info = "https://rir-data.org"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        for row in reader:
            prefix = self.iyp.get_node("Prefix", prefix=row["prefix"])
            nameserver = self.iyp.get_node(
                "AuthoritativeNameServer", name=row["nameserver"]
            )
            self.iyp.add_link(prefix, "MANAGED_BY", nameserver, None, reference)
