"""PeeringDB API endpoints: org, fac, ix, ixlan/netixlan, netfac.

PeeringDB is the canonical example in the paper of circumstantial
details becoming relationship properties: IXP membership is one
MEMBER_OF link, with peering policy and traffic levels as properties.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

ORG_URL = "https://www.peeringdb.com/api/org"
FAC_URL = "https://www.peeringdb.com/api/fac"
IX_URL = "https://www.peeringdb.com/api/ix"
IXLAN_URL = "https://www.peeringdb.com/api/netixlan"
NETFAC_URL = "https://www.peeringdb.com/api/netfac"


def generate_org(world: World) -> str:
    data = [
        {"id": org.peeringdb_org_id, "name": org.name, "country": org.country,
         "website": org.website or ""}
        for org in world.orgs.values()
        if org.peeringdb_org_id is not None
    ]
    return json.dumps({"data": sorted(data, key=lambda o: o["id"])})


def generate_fac(world: World) -> str:
    data = [
        {"id": index + 1, "name": name, "country": country}
        for index, (name, country) in enumerate(world.facilities)
    ]
    return json.dumps({"data": data})


def generate_ix(world: World) -> str:
    data = [
        {
            "id": ix.peeringdb_ix_id,
            "name": ix.name,
            "country": ix.country,
            "website": ix.website or "",
            "fac": ix.facility,
        }
        for ix in world.ixps.values()
    ]
    return json.dumps({"data": data})


def generate_netixlan(world: World) -> str:
    data = []
    counter = 1
    for ix in world.ixps.values():
        for asn in ix.members:
            data.append(
                {
                    "id": counter,
                    "ix_id": ix.peeringdb_ix_id,
                    "asn": asn,
                    "speed": 10000,
                    "policy": "Open" if asn % 3 else "Selective",
                }
            )
            counter += 1
    return json.dumps({"data": data})


def generate_netfac(world: World) -> str:
    data = []
    counter = 1
    for index, (name, _country) in enumerate(world.facilities):
        for ix in world.ixps.values():
            if ix.facility == name:
                for asn in ix.members[:8]:
                    data.append({"id": counter, "fac": name, "asn": asn})
                    counter += 1
    return json.dumps({"data": data})


class OrgCrawler(Crawler):
    organization = "PeeringDB"
    name = "peeringdb.org"
    url_data = ORG_URL
    url_info = "https://www.peeringdb.com"

    def run(self) -> None:
        reference = self.reference()
        for record in json.loads(self.fetch())["data"]:
            org = self.iyp.get_node("Organization", name=record["name"])
            org_id = self.iyp.get_node("PeeringdbOrgID", id=record["id"])
            self.iyp.add_link(org, "EXTERNAL_ID", org_id, None, reference)
            if record.get("country"):
                country = self.iyp.get_node("Country", country_code=record["country"])
                self.iyp.add_link(org, "COUNTRY", country, None, reference)
            if record.get("website"):
                url = self.iyp.get_node("URL", url=record["website"])
                self.iyp.add_link(url, "WEBSITE", org, None, reference)


class FacCrawler(Crawler):
    organization = "PeeringDB"
    name = "peeringdb.fac"
    url_data = FAC_URL
    url_info = "https://www.peeringdb.com"

    def run(self) -> None:
        reference = self.reference()
        for record in json.loads(self.fetch())["data"]:
            facility = self.iyp.get_node("Facility", name=record["name"])
            fac_id = self.iyp.get_node("PeeringdbFacID", id=record["id"])
            self.iyp.add_link(facility, "EXTERNAL_ID", fac_id, None, reference)
            country = self.iyp.get_node("Country", country_code=record["country"])
            self.iyp.add_link(facility, "COUNTRY", country, None, reference)


class IXCrawler(Crawler):
    organization = "PeeringDB"
    name = "peeringdb.ix"
    url_data = IX_URL
    url_info = "https://www.peeringdb.com"

    def run(self) -> None:
        reference = self.reference()
        for record in json.loads(self.fetch())["data"]:
            ixp = self.iyp.get_node("IXP", name=record["name"])
            ix_id = self.iyp.get_node("PeeringdbIXID", id=record["id"])
            self.iyp.add_link(ixp, "EXTERNAL_ID", ix_id, None, reference)
            country = self.iyp.get_node("Country", country_code=record["country"])
            self.iyp.add_link(ixp, "COUNTRY", country, None, reference)
            if record.get("fac"):
                facility = self.iyp.get_node("Facility", name=record["fac"])
                self.iyp.add_link(ixp, "LOCATED_IN", facility, None, reference)
            if record.get("website"):
                url = self.iyp.get_node("URL", url=record["website"])
                self.iyp.add_link(url, "WEBSITE", ixp, None, reference)


class NetIXLanCrawler(Crawler):
    """IXP memberships with peering-policy details as link properties."""

    organization = "PeeringDB"
    name = "peeringdb.netixlan"
    url_data = IXLAN_URL
    url_info = "https://www.peeringdb.com"

    def run(self) -> None:
        reference = self.reference()
        ix_by_id: dict[int, object] = {}
        for record in json.loads(self.fetch())["data"]:
            ix_id = record["ix_id"]
            if ix_id not in ix_by_id:
                id_nodes = self.iyp.store.find_nodes("PeeringdbIXID", "id", ix_id)
                if not id_nodes:
                    continue
                ixps = [
                    self.iyp.store.get_node(rel.other_end(id_nodes[0].id))
                    for rel in self.iyp.store.relationships_of(
                        id_nodes[0].id, rel_type="EXTERNAL_ID"
                    )
                ]
                if not ixps:
                    continue
                ix_by_id[ix_id] = ixps[0]
            as_node = self.iyp.get_node("AS", asn=record["asn"])
            self.iyp.add_link(
                as_node,
                "MEMBER_OF",
                ix_by_id[ix_id],
                {"speed": record.get("speed"), "policy": record.get("policy")},
                reference,
            )


class NetFacCrawler(Crawler):
    organization = "PeeringDB"
    name = "peeringdb.netfac"
    url_data = NETFAC_URL
    url_info = "https://www.peeringdb.com"

    def run(self) -> None:
        reference = self.reference()
        for record in json.loads(self.fetch())["data"]:
            as_node = self.iyp.get_node("AS", asn=record["asn"])
            facility = self.iyp.get_node("Facility", name=record["fac"])
            self.iyp.add_link(as_node, "LOCATED_IN", facility, None, reference)
