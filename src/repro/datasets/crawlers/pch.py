"""Packet Clearing House daily routing snapshots.

A second, independent BGP view: pipe-separated ``prefix|origin|collector``
records derived from PCH's route collectors.  In the graph these become
additional ORIGINATE links (parallel to BGPKIT's, distinguished by
``reference_name``), exactly the redundancy Section 2.3 embraces.
"""

from __future__ import annotations

from repro.datasets.base import Crawler
from repro.simnet.world import World

PCH_URL = "https://www.pch.net/resources/Routing_Data/latest.txt"


def generate_routing_snapshot(world: World) -> str:
    """Render a RIB-dump-style snapshot: ``prefix|as_path|collector``.

    AS paths come from the Gao-Rexford propagation simulator: for each
    prefix, the path selected by one of the first collector's peers.
    PCH sees a large subset of the table (its collectors sit at IXPs).
    """
    lines = []
    routing = world.routing
    first_collector = world.collectors[0] if world.collectors else None
    peers = world.collector_peers.get(first_collector, []) if first_collector else []
    for index, prefix in enumerate(sorted(world.prefixes)):
        if index % 10 == 0:  # ~90% visibility
            continue
        info = world.prefixes[prefix]
        for origin in info.origins:
            path = None
            if routing is not None:
                for peer in peers:
                    path = routing.collector_paths.get((peer, origin))
                    if path is not None:
                        break
            if path is None:
                path = (origin,)
            path_text = " ".join(str(asn) for asn in path)
            lines.append(f"{info.prefix}|{path_text}|pch-collector-1")
    return "\n".join(lines)


class RoutingSnapshotCrawler(Crawler):
    """Parses RIB-style rows; the path's last hop is the origin AS."""

    organization = "PCH"
    name = "pch.routing_snapshot"
    url_data = PCH_URL
    url_info = "https://www.pch.net/resources/Routing_Data"

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            fields = line.strip().split("|")
            if len(fields) != 3:
                continue
            prefix_text, path_text, _collector = fields
            hops = path_text.split()
            if not hops:
                continue
            prefix = self.iyp.get_node("Prefix", prefix=prefix_text)
            origin = self.iyp.get_node("AS", asn=int(hops[-1]))
            self.iyp.add_link(
                origin, "ORIGINATE", prefix, {"as_path": path_text}, reference
            )
