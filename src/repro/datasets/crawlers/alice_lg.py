"""Alice-LG route-server looking glasses.

The paper imports seven IXP looking glasses (AMS-IX, BCIX, DE-CIX,
IX.br, LINX, Megaport, Netnod) through one Alice-LG crawler
parameterized by the route server's URL.  Each yields MEMBER_OF links
between the neighbours seen on the route server and the IXP.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

# (dataset key, public looking-glass URL, index of the backing IXP)
LOOKING_GLASSES = [
    ("amsix", "https://lg.ams-ix.net/api/v1/neighbours", 1),
    ("bcix", "https://lg.bcix.de/api/v1/neighbours", 2),
    ("decix", "https://lg.de-cix.net/api/v1/neighbours", 3),
    ("ixbr", "https://lg.ix.br/api/v1/neighbours", 4),
    ("linx", "https://alice-rs.linx.net/api/v1/neighbours", 5),
    ("megaport", "https://lg.megaport.com/api/v1/neighbours", 6),
    ("netnod", "https://lg.netnod.se/api/v1/neighbours", 7),
]


def make_generator(ix_index: int):
    """Build the content generator for one looking glass."""

    def generate(world: World) -> str:
        ix = world.ixps.get(ix_index)
        if ix is None:  # small worlds may have fewer IXPs
            return json.dumps({"neighbours": [], "ix_name": ""})
        neighbours = [
            {"asn": asn, "state": "up", "description": world.ases[asn].name}
            for asn in ix.members
        ]
        return json.dumps({"ix_name": ix.name, "neighbours": neighbours})

    return generate


class AliceLGCrawler(Crawler):
    """Loads route-server neighbours as IXP members."""

    organization = "Alice-LG"

    def __init__(self, iyp, fetcher, dataset_key: str, url: str):
        super().__init__(iyp, fetcher)
        self.name = f"alice-lg.{dataset_key}"
        self.url_data = url
        self.url_info = "https://github.com/alice-lg/alice-lg"

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        if not payload.get("ix_name"):
            return
        ixp = self.iyp.get_node("IXP", name=payload["ix_name"])
        for neighbour in payload["neighbours"]:
            if neighbour.get("state") != "up":
                continue
            as_node = self.iyp.get_node("AS", asn=neighbour["asn"])
            self.iyp.add_link(as_node, "MEMBER_OF", ixp, None, reference)
