"""OpenINTEL datasets: tranco1m / umbrella1m resolutions, the ns
(authoritative nameserver) dataset, and the DNS Dependency Graph.

These four datasets carry the DNS half of the paper's evaluation: the
RiPKI reproduction walks tranco1m RESOLVES_TO links, the DNS Robustness
reproduction reads the ns dataset (with its glue annotations), and the
SPoF analysis walks the dependency graph.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.nettypes.dns import registered_domain
from repro.simnet.dns import zone_nameservers
from repro.simnet.world import World

TRANCO1M_URL = "https://data.openintel.nl/data/tranco1m/latest.jsonl"
UMBRELLA1M_URL = "https://data.openintel.nl/data/umbrella1m/latest.jsonl"
NS_URL = "https://data.openintel.nl/data/ns/latest.jsonl"
DNSGRAPH_URL = "https://dnsgraph.dacs.utwente.nl/latest.jsonl"


def _resolution_records(world: World, names: list[str]) -> list[dict]:
    records = []
    for domain_name in names:
        domain = world.domains[domain_name]
        qname = domain.hostname
        if domain.cname_target:
            records.append(
                {
                    "query_name": qname,
                    "response_type": "CNAME",
                    "response_name": qname,
                    "answer": domain.cname_target,
                }
            )
            qname = domain.cname_target
        for ip in domain.ips:
            records.append(
                {
                    "query_name": domain.hostname,
                    "response_type": "AAAA" if ":" in ip else "A",
                    "response_name": qname,
                    "answer": ip,
                }
            )
    return records


def generate_tranco1m(world: World) -> str:
    """DNS resolutions for the Tranco list (JSONL)."""
    records = _resolution_records(world, world.tranco)
    return "\n".join(json.dumps(record) for record in records)


def generate_umbrella1m(world: World) -> str:
    """DNS resolutions for the Umbrella list (JSONL)."""
    records = _resolution_records(world, world.umbrella)
    return "\n".join(json.dumps(record) for record in records)


def generate_ns(world: World) -> str:
    """The ns dataset: per-domain NS records with glue annotations."""
    records = []
    for domain_name in world.tranco:
        domain = world.domains[domain_name]
        for ns_name in domain.nameservers:
            ns_info = world.nameservers.get(ns_name)
            records.append(
                {
                    "domain": domain.name,
                    "ns": ns_name,
                    "glue": domain.has_glue,
                    "in_zone": domain.in_zone_glue,
                    "ips": ns_info.ips if ns_info else [],
                }
            )
    return "\n".join(json.dumps(record) for record in records)


def generate_dnsgraph(world: World) -> str:
    """The DNS Dependency Graph: every zone's NS set (JSONL)."""
    zones = zone_nameservers(world)
    lines = []
    for zone in sorted(zones):
        entries = []
        for ns_name in zones[zone]:
            ns_info = world.nameservers.get(ns_name)
            entries.append(
                {"ns": ns_name, "ips": ns_info.ips if ns_info else []}
            )
        lines.append(json.dumps({"zone": zone, "nameservers": entries}))
    return "\n".join(lines)


class _ResolutionCrawler(Crawler):
    """Shared loader for the tranco1m / umbrella1m resolution datasets."""

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            if record["response_type"] == "CNAME":
                source = self.iyp.get_node("HostName", name=record["response_name"])
                target = self.iyp.get_node("HostName", name=record["answer"])
                self.iyp.add_link(source, "ALIAS_OF", target, None, reference)
                self._host_part_of(target)
                continue
            host = self.iyp.get_node("HostName", name=record["response_name"])
            ip_node = self.iyp.get_node("IP", ip=record["answer"])
            self.iyp.add_link(host, "RESOLVES_TO", ip_node, None, reference)
            if record["response_name"] != record["query_name"]:
                query_host = self.iyp.get_node("HostName", name=record["query_name"])
                self._host_part_of(query_host)
            self._host_part_of(host)

    def _host_part_of(self, host_node) -> None:
        """Link a HostName to its registrable DomainName."""
        registrable = registered_domain(host_node.properties["name"])
        if registrable is None:
            return
        domain = self.iyp.get_node("DomainName", name=registrable)
        self.iyp.add_link(host_node, "PART_OF", domain, None, self.reference())


class Tranco1MCrawler(_ResolutionCrawler):
    organization = "OpenINTEL"
    name = "openintel.tranco1m"
    url_data = TRANCO1M_URL
    url_info = "https://openintel.nl/"


class Umbrella1MCrawler(_ResolutionCrawler):
    organization = "OpenINTEL"
    name = "openintel.umbrella1m"
    url_data = UMBRELLA1M_URL
    url_info = "https://openintel.nl/"


class NSCrawler(Crawler):
    """Loads (:DomainName)-[:MANAGED_BY {glue, in_zone}]->
    (:AuthoritativeNameServer) plus nameserver glue resolutions."""

    organization = "OpenINTEL"
    name = "openintel.ns"
    url_data = NS_URL
    url_info = "https://openintel.nl/"

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            domain = self.iyp.get_node("DomainName", name=record["domain"])
            nameserver = self.iyp.get_node(
                "AuthoritativeNameServer", name=record["ns"]
            )
            # The same node also is a HostName: a resolvable FQDN.
            self.iyp.store.add_label(nameserver.id, "HostName")
            self.iyp.add_link(
                domain,
                "MANAGED_BY",
                nameserver,
                {"glue": record["glue"], "in_zone": record["in_zone"]},
                reference,
            )
            for ip in record.get("ips", ()):
                ip_node = self.iyp.get_node("IP", ip=ip)
                self.iyp.add_link(nameserver, "RESOLVES_TO", ip_node, None, reference)


class DNSGraphCrawler(Crawler):
    """Loads the zone -> NS dependency graph used by the SPoF study."""

    organization = "OpenINTEL"
    name = "openintel.dnsgraph"
    url_data = DNSGRAPH_URL
    url_info = "https://dnsgraph.dacs.utwente.nl"

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            zone = self.iyp.get_node("DomainName", name=record["zone"])
            for entry in record["nameservers"]:
                nameserver = self.iyp.get_node(
                    "AuthoritativeNameServer", name=entry["ns"]
                )
                self.iyp.store.add_label(nameserver.id, "HostName")
                self.iyp.add_link(zone, "MANAGED_BY", nameserver, None, reference)
                for ip in entry.get("ips", ()):
                    ip_node = self.iyp.get_node("IP", ip=ip)
                    self.iyp.add_link(
                        nameserver, "RESOLVES_TO", ip_node, None, reference
                    )
