"""Cloudflare Radar API datasets: top domains ranking, and the top
ASes / top locations querying each popular domain (1.1.1.1 resolver
view) — the QUERIED_FROM relationships of Figure 4.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

RANKING_URL = "https://api.cloudflare.com/client/v4/radar/ranking/top"
TOP_ASES_URL = "https://api.cloudflare.com/client/v4/radar/dns/top/ases"
TOP_LOCATIONS_URL = "https://api.cloudflare.com/client/v4/radar/dns/top/locations"
DATASETS_URL = "https://api.cloudflare.com/client/v4/radar/datasets"


def generate_ranking(world: World) -> str:
    """Radar top-domains ranking (rank-less bucket, like the real API)."""
    n_top = max(1, int(len(world.tranco) * world.config.cloudflare_top_fraction))
    top = [{"domain": name} for name in world.tranco[:n_top]]
    return json.dumps({"success": True, "result": {"top_0": top}})


def generate_top_ases(world: World) -> str:
    """Per-domain top querying ASes."""
    result = {}
    for domain_name in world.tranco:
        domain = world.domains[domain_name]
        if not domain.queried_from_asns:
            continue
        result[domain_name] = [
            {"clientASN": asn, "value": round(100.0 / (position + 1), 2)}
            for position, asn in enumerate(domain.queried_from_asns)
        ]
    return json.dumps({"success": True, "result": result})


def generate_top_locations(world: World) -> str:
    """Per-domain top querying countries (derived from the AS view)."""
    result = {}
    for domain_name in world.tranco:
        domain = world.domains[domain_name]
        if not domain.queried_from_asns:
            continue
        countries = []
        seen = set()
        for asn in domain.queried_from_asns:
            country = world.ases[asn].country
            if country not in seen:
                seen.add(country)
                countries.append(country)
        result[domain_name] = [
            {"clientCountryAlpha2": country, "value": round(100.0 / (i + 1), 2)}
            for i, country in enumerate(countries)
        ]
    return json.dumps({"success": True, "result": result})


def generate_datasets(world: World) -> str:
    """Radar dataset catalogue (metadata only)."""
    return json.dumps(
        {
            "success": True,
            "result": {
                "datasets": [
                    {"id": 1, "title": "Cloudflare Radar Top Domains"},
                    {"id": 2, "title": "Cloudflare Radar DNS Top ASes"},
                ]
            },
        }
    )


class RankingCrawler(Crawler):
    """Loads the Radar top-domains bucket as a Ranking."""

    organization = "Cloudflare"
    name = "cloudflare.ranking_top"
    url_data = RANKING_URL
    url_info = "https://radar.cloudflare.com"

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        ranking = self.iyp.get_node("Ranking", name="Cloudflare top 100 domains")
        for entry in payload["result"]["top_0"]:
            domain = self.iyp.get_node("DomainName", name=entry["domain"])
            self.iyp.add_link(domain, "RANK", ranking, None, reference)


class TopASesCrawler(Crawler):
    """Loads (:DomainName)-[:QUERIED_FROM {value}]->(:AS)."""

    organization = "Cloudflare"
    name = "cloudflare.dns_top_ases"
    url_data = TOP_ASES_URL
    url_info = "https://radar.cloudflare.com"

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        for domain_name, entries in payload["result"].items():
            domain = self.iyp.get_node("DomainName", name=domain_name)
            for entry in entries:
                as_node = self.iyp.get_node("AS", asn=entry["clientASN"])
                self.iyp.add_link(
                    domain, "QUERIED_FROM", as_node, {"value": entry["value"]}, reference
                )


class TopLocationsCrawler(Crawler):
    """Loads (:DomainName)-[:QUERIED_FROM {value}]->(:Country)."""

    organization = "Cloudflare"
    name = "cloudflare.dns_top_locations"
    url_data = TOP_LOCATIONS_URL
    url_info = "https://radar.cloudflare.com"

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        for domain_name, entries in payload["result"].items():
            domain = self.iyp.get_node("DomainName", name=domain_name)
            for entry in entries:
                country = self.iyp.get_node(
                    "Country", country_code=entry["clientCountryAlpha2"]
                )
                self.iyp.add_link(
                    domain, "QUERIED_FROM", country, {"value": entry["value"]}, reference
                )
