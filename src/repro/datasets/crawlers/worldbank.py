"""World Bank country population estimates."""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.nettypes.countries import alpha2_to_alpha3
from repro.simnet.world import World

POPULATION_URL = (
    "https://api.worldbank.org/v2/country/all/indicator/SP.POP.TOTL?format=json"
)


def generate_population(world: World) -> str:
    """World Bank API format: [metadata, [records]]."""
    records = []
    for country, population in sorted(world.country_population.items()):
        records.append(
            {
                "country": {"id": alpha2_to_alpha3(country), "value": country},
                "countryiso3code": alpha2_to_alpha3(country),
                "date": "2023",
                "value": population,
            }
        )
    return json.dumps([{"page": 1, "pages": 1}, records])


class WorldBankPopulationCrawler(Crawler):
    """Loads (:Country)-[:POPULATION {value}]->(:Estimate)."""

    organization = "World Bank"
    name = "worldbank.country_pop"
    url_data = POPULATION_URL
    url_info = "https://www.worldbank.org"

    def run(self) -> None:
        reference = self.reference()
        _metadata, records = json.loads(self.fetch())
        estimate = self.iyp.get_node(
            "Estimate", name="World Bank Population Estimate"
        )
        for record in records:
            if record.get("value") is None:
                continue
            alpha3 = record["countryiso3code"]
            try:
                from repro.nettypes.countries import alpha3_to_alpha2

                alpha2 = alpha3_to_alpha2(alpha3)
            except KeyError:
                continue
            country = self.iyp.get_node("Country", country_code=alpha2)
            self.iyp.add_link(
                country, "POPULATION", estimate, {"value": record["value"]}, reference
            )
