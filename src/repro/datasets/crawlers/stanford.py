"""Stanford's ASdb: AS classification by business type.

The paper's Freshness discussion singles this dataset out: updated only
every six months, but AS business types change slowly enough that it is
worth importing anyway.
"""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

ASDB_URL = "https://asdb.stanford.edu/data/latest.csv"


def generate_asdb(world: World) -> str:
    """CSV: asn,category1,category2 (empty second category allowed)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["asn", "category1", "category2"])
    for asn in sorted(world.ases):
        categories = world.ases[asn].asdb_categories
        first = categories[0] if categories else ""
        second = categories[1] if len(categories) > 1 else ""
        writer.writerow([asn, first, second])
    return buffer.getvalue()


class ASdbCrawler(Crawler):
    """Loads ASdb categories as CATEGORIZED Tag links."""

    organization = "Stanford"
    name = "stanford.asdb"
    url_data = ASDB_URL
    url_info = "https://asdb.stanford.edu"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        tags: dict[str, object] = {}
        for row in reader:
            as_node = self.iyp.get_node("AS", asn=int(row["asn"]))
            for key in ("category1", "category2"):
                label = row.get(key, "").strip()
                if not label:
                    continue
                if label not in tags:
                    tags[label] = self.iyp.get_node("Tag", label=label)
                self.iyp.add_link(
                    as_node, "CATEGORIZED", tags[label], None, reference
                )
