"""APNIC AS population estimates.

Per-country market shares of eyeball ASes — the POPULATION
relationships.  Not peer-reviewed, but commonly used by independent
research groups, which is the paper's Recognition criterion for it.
"""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

ASPOP_URL = "https://stats.labs.apnic.net/aspop/latest.json"


def generate_aspop(world: World) -> str:
    """JSON: list of {cc, asn, percent, users}."""
    records = []
    for (country, asn), percent in sorted(world.as_population.items()):
        users = int(world.country_population.get(country, 0) * percent / 100.0)
        records.append(
            {"cc": country, "asn": asn, "percent": percent, "users": users}
        )
    return json.dumps({"copyright": "APNIC", "data": records})


class ASPopulationCrawler(Crawler):
    """Loads (:AS)-[:POPULATION {percent, users}]->(:Country)."""

    organization = "APNIC"
    name = "apnic.as_population"
    url_data = ASPOP_URL
    url_info = "https://stats.labs.apnic.net/aspop"

    def run(self) -> None:
        reference = self.reference()
        for record in json.loads(self.fetch())["data"]:
            as_node = self.iyp.get_node("AS", asn=record["asn"])
            country = self.iyp.get_node("Country", country_code=record["cc"])
            self.iyp.add_link(
                as_node,
                "POPULATION",
                country,
                {"percent": record["percent"], "users": record["users"]},
                reference,
            )
