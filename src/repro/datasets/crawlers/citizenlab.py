"""Citizen Lab URL testing lists: categorized URLs."""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

URL_LIST = "https://raw.githubusercontent.com/citizenlab/test-lists/global.csv"

_CATEGORIES = ["NEWS", "COMT", "SRCH", "CULTR", "ECON", "GOVT", "POLR"]


def generate_url_list(world: World) -> str:
    """CSV: url,category_code — URLs derived from popular domains."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["url", "category_code"])
    for index, domain in enumerate(world.tranco[: max(10, len(world.tranco) // 10)]):
        writer.writerow(
            [f"http://{domain}/", _CATEGORIES[index % len(_CATEGORIES)]]
        )
    return buffer.getvalue()


class URLTestingListCrawler(Crawler):
    """Loads (:URL)-[:CATEGORIZED]->(:Tag) for test-list URLs."""

    organization = "Citizen Lab"
    name = "citizenlab.urls"
    url_data = URL_LIST
    url_info = "https://github.com/citizenlab/test-lists"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        tags: dict[str, object] = {}
        for row in reader:
            url = self.iyp.get_node("URL", url=row["url"])
            label = row["category_code"]
            if label not in tags:
                tags[label] = self.iyp.get_node("Tag", label=label)
            self.iyp.add_link(url, "CATEGORIZED", tags[label], None, reference)
