"""Community-maintained short AS names (github.com/emileaben/asnames)."""

from __future__ import annotations

from repro.datasets.base import Crawler
from repro.simnet.world import World

ASNAMES_URL = "https://raw.githubusercontent.com/emileaben/asnames/main/asnames.csv"


def generate_asnames(world: World) -> str:
    """Pipe format: ``asn|name`` — short display names."""
    lines = []
    for asn in sorted(world.ases):
        short = world.ases[asn].name.split("-")[0].title()
        lines.append(f"{asn}|{short}")
    return "\n".join(lines)


class ASNamesCrawler(Crawler):
    organization = "Emile Aben"
    name = "emileaben.as_names"
    url_data = ASNAMES_URL
    url_info = "https://github.com/emileaben/asnames"

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            if "|" not in line:
                continue
            asn_text, _, name_text = line.partition("|")
            as_node = self.iyp.get_node("AS", asn=int(asn_text))
            name_node = self.iyp.get_node("Name", name=name_text)
            self.iyp.add_link(as_node, "NAME", name_node, None, reference)
