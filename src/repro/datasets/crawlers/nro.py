"""NRO delegated extended statistics.

The pipe-separated format of the real files is preserved:
``registry|cc|type|start|value|date|status|opaque-id``.  Loaded as
OpaqueID nodes with ASSIGNED links from the delegated ASes and
prefixes, plus COUNTRY links — the registration countries the SPoF
study aggregates by.
"""

from __future__ import annotations

import ipaddress

from repro.datasets.base import Crawler
from repro.simnet.world import World

DELEGATED_URL = "https://ftp.ripe.net/pub/stats/ripencc/nro-stats/latest/nro-delegated-stats"


def generate_delegated(world: World) -> str:
    """Render the NRO delegated-extended file."""
    lines = ["2|nro|20240501|0|19840101|20240501|+0000"]
    for asn in sorted(world.ases):
        info = world.ases[asn]
        lines.append(
            f"{info.rir}|{info.country}|asn|{asn}|1|20150101|allocated|{info.opaque_id}"
        )
    for block, opaque_id, rir, country in sorted(world.allocations):
        network = ipaddress.ip_network(block)
        if network.version == 4:
            lines.append(
                f"{rir}|{country}|ipv4|{network.network_address}|"
                f"{network.num_addresses}|20150101|allocated|{opaque_id}"
            )
        else:
            lines.append(
                f"{rir}|{country}|ipv6|{network.network_address}|"
                f"{network.prefixlen}|20150101|allocated|{opaque_id}"
            )
    return "\n".join(lines)


class DelegatedStatsCrawler(Crawler):
    """Loads delegated ASes and address blocks with registration data."""

    organization = "NRO"
    name = "nro.delegated_stats"
    url_data = DELEGATED_URL
    url_info = "https://www.nro.net/about/rirs/statistics"

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            fields = line.strip().split("|")
            if len(fields) < 8 or fields[2] not in ("asn", "ipv4", "ipv6"):
                continue
            rir, country_code, kind, start, value, _date, status, opaque = fields[:8]
            if status not in ("allocated", "assigned", "available", "reserved"):
                continue
            opaque_node = self.iyp.get_node("OpaqueID", id=opaque)
            if kind == "asn":
                resource = self.iyp.get_node("AS", asn=int(start))
            elif kind == "ipv4":
                length = 32 - (int(value) - 1).bit_length()
                resource = self.iyp.get_node("Prefix", prefix=f"{start}/{length}")
            else:
                resource = self.iyp.get_node("Prefix", prefix=f"{start}/{value}")
            rel_type = {
                "allocated": "ASSIGNED",
                "assigned": "ASSIGNED",
                "available": "AVAILABLE",
                "reserved": "RESERVED",
            }[status]
            self.iyp.add_link(
                resource, rel_type, opaque_node, {"registry": rir}, reference
            )
            if country_code and country_code != "ZZ":
                country = self.iyp.get_node("Country", country_code=country_code)
                self.iyp.add_link(resource, "COUNTRY", country, None, reference)
