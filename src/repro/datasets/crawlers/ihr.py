"""IHR datasets: AS hegemony, country dependency, and ROV.

The ROV dataset both tags prefixes with their RPKI/IRR validation state
(the 'RPKI Valid' / 'RPKI Invalid...' Tag nodes central to the RiPKI
reproduction) and provides a second, independent prefix-to-origin
mapping — which is exactly what lets the Section 6.1 comparison catch
the injected BGPKIT IPv6 bug.
"""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

HEGEMONY_URL = "https://ihr-archive.iijlab.net/ihr/hegemony/global/latest.csv"
COUNTRY_DEP_URL = "https://ihr-archive.iijlab.net/ihr/hegemony/countries/latest.csv"
ROV_URL = "https://ihr-archive.iijlab.net/ihr/rov/latest.csv"


def generate_hegemony(world: World) -> str:
    """CSV: timebin,originasn,asn,hege — AS-level dependencies.

    When the route-propagation simulator has run, hegemony is computed
    the way the real dataset is: the fraction of ASes whose best path
    toward the origin traverses the transit AS.  Falls back to the
    topology-based approximation otherwise.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["timebin", "originasn", "asn", "hege"])
    if world.routing is not None:
        for origin in sorted(world.routing.hegemony):
            scores = world.routing.hegemony[origin]
            for transit in sorted(scores):
                if scores[transit] >= 0.01:
                    writer.writerow(
                        ["2024-05-01 00:00:00", origin, transit, scores[transit]]
                    )
        return buffer.getvalue()
    for asn in sorted(world.ases):
        info = world.ases[asn]
        for provider in info.providers:
            hege = max(0.01, round(world.ases[provider].hegemony, 4))
            writer.writerow(["2024-05-01 00:00:00", asn, provider, hege])
    return buffer.getvalue()


def generate_country_dependency(world: World) -> str:
    """CSV: country,asn,hege — per-country transit dependencies."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["country", "asn", "hege"])
    by_country: dict[str, list[int]] = {}
    for asn, info in world.ases.items():
        by_country.setdefault(info.country, []).append(asn)
    for country in sorted(by_country):
        providers: dict[int, int] = {}
        for asn in by_country[country]:
            for provider in world.ases[asn].providers:
                providers[provider] = providers.get(provider, 0) + 1
        total = sum(providers.values()) or 1
        for provider, count in sorted(providers.items()):
            writer.writerow([country, provider, round(count / total, 4)])
    return buffer.getvalue()


def generate_rov(world: World) -> str:
    """CSV: prefix,origin,rpki_status,irr_status — validation states."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["prefix", "origin", "rpki_status", "irr_status"])
    for prefix in sorted(world.prefixes):
        info = world.prefixes[prefix]
        for origin in info.origins:
            writer.writerow(
                [info.prefix, origin, info.rov_status, info.irr_status or "NotFound"]
            )
    return buffer.getvalue()


class HegemonyCrawler(Crawler):
    """Loads (:AS)-[:DEPENDS_ON {hege}]->(:AS)."""

    organization = "IHR"
    name = "ihr.hegemony"
    url_data = HEGEMONY_URL
    url_info = "https://ihr.iijlab.net"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        for row in reader:
            origin = self.iyp.get_node("AS", asn=int(row["originasn"]))
            upstream = self.iyp.get_node("AS", asn=int(row["asn"]))
            self.iyp.add_link(
                origin, "DEPENDS_ON", upstream, {"hege": float(row["hege"])}, reference
            )


class CountryDependencyCrawler(Crawler):
    """Loads (:Country)-[:DEPENDS_ON {hege}]->(:AS)."""

    organization = "IHR"
    name = "ihr.country_dependency"
    url_data = COUNTRY_DEP_URL
    url_info = "https://ihr.iijlab.net"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        for row in reader:
            country = self.iyp.get_node("Country", country_code=row["country"])
            upstream = self.iyp.get_node("AS", asn=int(row["asn"]))
            self.iyp.add_link(
                country, "DEPENDS_ON", upstream, {"hege": float(row["hege"])}, reference
            )


class ROVCrawler(Crawler):
    """Loads prefix validation tags and IHR's independent origin view."""

    organization = "IHR"
    name = "ihr.rov"
    url_data = ROV_URL
    url_info = "https://ihr.iijlab.net/ihr/en-us/rov"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        tags: dict[str, object] = {}

        def tag(label: str):
            if label not in tags:
                tags[label] = self.iyp.get_node("Tag", label=label)
            return tags[label]

        for row in reader:
            prefix = self.iyp.get_node("Prefix", prefix=row["prefix"])
            origin = self.iyp.get_node("AS", asn=int(row["origin"]))
            self.iyp.add_link(origin, "ORIGINATE", prefix, None, reference)
            self.iyp.add_link(
                prefix, "CATEGORIZED", tag(f"RPKI {row['rpki_status']}"), None, reference
            )
            if row["irr_status"] and row["irr_status"] != "NotFound":
                self.iyp.add_link(
                    prefix,
                    "CATEGORIZED",
                    tag(f"IRR {row['irr_status']}"),
                    None,
                    reference,
                )
