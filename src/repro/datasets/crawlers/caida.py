"""CAIDA datasets: AS Rank and the IXPs dataset."""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

ASRANK_URL = "https://api.asrank.caida.org/v2/restful/asns"
IXS_URL = "https://publicdata.caida.org/datasets/ixps/ixs-latest.jsonl"


def generate_asrank(world: World) -> str:
    """AS Rank API dump: one JSON object per AS."""
    records = []
    for asn in sorted(world.ases):
        info = world.ases[asn]
        records.append(
            {
                "asn": str(asn),
                "asnName": info.name,
                "rank": info.rank,
                "organization": {"orgName": info.org_name},
                "country": {"iso": info.country},
                "cone": {"numberAsns": info.cone_size},
            }
        )
    return json.dumps({"data": {"asns": {"edges": [{"node": r} for r in records]}}})


def generate_ixs(world: World) -> str:
    """CAIDA IXP dataset: JSONL, one IXP per line."""
    lines = []
    for ix in world.ixps.values():
        lines.append(
            json.dumps(
                {
                    "ix_id": ix.caida_ix_id,
                    "name": ix.name,
                    "country": ix.country,
                    "pdb_id": ix.peeringdb_ix_id,
                }
            )
        )
    return "\n".join(lines)


class ASRankCrawler(Crawler):
    """Loads ASRank: RANK links to the 'CAIDA ASRank' Ranking node, plus
    AS names, organizations, and registration countries."""

    organization = "CAIDA"
    name = "caida.asrank"
    url_data = ASRANK_URL
    url_info = "https://doi.org/10.21986/CAIDA.DATA.AS-RANK"

    def run(self) -> None:
        payload = json.loads(self.fetch())
        reference = self.reference()
        ranking = self.iyp.get_node("Ranking", name="CAIDA ASRank")
        for edge in payload["data"]["asns"]["edges"]:
            record = edge["node"]
            as_node = self.iyp.get_node("AS", asn=record["asn"])
            self.iyp.add_link(
                as_node, "RANK", ranking, {"rank": record["rank"]}, reference
            )
            name_node = self.iyp.get_node("Name", name=record["asnName"])
            self.iyp.add_link(as_node, "NAME", name_node, None, reference)
            org_name = record.get("organization", {}).get("orgName")
            if org_name:
                org_node = self.iyp.get_node("Organization", name=org_name)
                self.iyp.add_link(as_node, "MANAGED_BY", org_node, None, reference)
            country = record.get("country", {}).get("iso")
            if country:
                country_node = self.iyp.get_node("Country", country_code=country)
                self.iyp.add_link(as_node, "COUNTRY", country_node, None, reference)


class IXsCrawler(Crawler):
    """Loads CAIDA IXP identifiers and countries."""

    organization = "CAIDA"
    name = "caida.ixs"
    url_data = IXS_URL
    url_info = "https://www.caida.org/catalog/datasets/ixps"

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            ixp = self.iyp.get_node("IXP", name=record["name"])
            caida_id = self.iyp.get_node("CaidaIXID", id=record["ix_id"])
            self.iyp.add_link(ixp, "EXTERNAL_ID", caida_id, None, reference)
            country = self.iyp.get_node("Country", country_code=record["country"])
            self.iyp.add_link(ixp, "COUNTRY", country, None, reference)
            if record.get("pdb_id"):
                pdb_id = self.iyp.get_node("PeeringdbIXID", id=record["pdb_id"])
                self.iyp.add_link(ixp, "EXTERNAL_ID", pdb_id, None, reference)
