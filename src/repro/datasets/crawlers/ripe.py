"""RIPE NCC datasets: AS names, RPKI ROAs, Atlas probes & measurements."""

from __future__ import annotations

import json

from repro.datasets.base import Crawler
from repro.simnet.world import World

ASNAMES_URL = "https://ftp.ripe.net/ripe/asnames/asn.txt"
RPKI_URL = "https://ftp.ripe.net/rpki/roas-latest.json"
ATLAS_PROBES_URL = "https://atlas.ripe.net/api/v2/probes/"
ATLAS_MEASUREMENTS_URL = "https://atlas.ripe.net/api/v2/measurements/"


def generate_asnames(world: World) -> str:
    """RIPE asn.txt format: ``<asn> <name>, <country>`` per line."""
    lines = []
    for asn in sorted(world.ases):
        info = world.ases[asn]
        lines.append(f"{asn} {info.name}, {info.country}")
    return "\n".join(lines)


def generate_rpki(world: World) -> str:
    """ROAs in the RIPE JSON dump format."""
    roas = []
    for prefix in sorted(world.prefixes):
        for roa in world.prefixes[prefix].roas:
            roas.append(
                {
                    "asn": f"AS{roa.asn}",
                    "prefix": roa.prefix,
                    "maxLength": roa.max_length,
                    "ta": world.prefixes[prefix].rir,
                }
            )
    return json.dumps({"roas": roas})


def generate_atlas_probes(world: World) -> str:
    """Atlas API v2 probe listing."""
    results = []
    for probe in world.atlas_probes.values():
        results.append(
            {
                "id": probe.probe_id,
                "asn_v4": probe.asn,
                "address_v4": probe.ip,
                "country_code": probe.country,
                "status": {"name": probe.status},
                "tags": [{"slug": tag} for tag in probe.tags],
            }
        )
    return json.dumps({"count": len(results), "results": results})


def generate_atlas_measurements(world: World) -> str:
    """Atlas API v2 measurement listing."""
    results = []
    for measurement in world.atlas_measurements.values():
        results.append(
            {
                "id": measurement.measurement_id,
                "type": measurement.kind,
                "target": measurement.target,
                "target_is_ip": measurement.target_is_ip,
                "af": measurement.af,
                "probes": [{"id": pid} for pid in measurement.probe_ids],
            }
        )
    return json.dumps({"count": len(results), "results": results})


class ASNamesCrawler(Crawler):
    """Loads authoritative AS names and registration countries."""

    organization = "RIPE NCC"
    name = "ripe.as_names"
    url_data = ASNAMES_URL

    def run(self) -> None:
        reference = self.reference()
        for line in self.fetch().splitlines():
            line = line.strip()
            if not line:
                continue
            asn_text, _, rest = line.partition(" ")
            name_text, _, country_code = rest.rpartition(", ")
            as_node = self.iyp.get_node("AS", asn=int(asn_text))
            name_node = self.iyp.get_node("Name", name=name_text)
            self.iyp.add_link(as_node, "NAME", name_node, None, reference)
            if len(country_code) == 2:
                country = self.iyp.get_node("Country", country_code=country_code)
                self.iyp.add_link(as_node, "COUNTRY", country, None, reference)


class RPKICrawler(Crawler):
    """Loads (:AS)-[:ROUTE_ORIGIN_AUTHORIZATION {maxLength}]->(:Prefix)."""

    organization = "RIPE NCC"
    name = "ripe.rpki"
    url_data = RPKI_URL
    url_info = "https://ftp.ripe.net/rpki"

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        for roa in payload["roas"]:
            as_node = self.iyp.get_node("AS", asn=roa["asn"])
            prefix_node = self.iyp.get_node("Prefix", prefix=roa["prefix"])
            self.iyp.add_link(
                as_node,
                "ROUTE_ORIGIN_AUTHORIZATION",
                prefix_node,
                {"maxLength": roa["maxLength"], "ta": roa.get("ta", "")},
                reference,
            )


class AtlasProbesCrawler(Crawler):
    """Loads Atlas probes: ASSIGNED IP, LOCATED_IN AS, COUNTRY."""

    organization = "RIPE NCC"
    name = "ripe.atlas_probes"
    url_data = ATLAS_PROBES_URL

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        for record in payload["results"]:
            probe = self.iyp.get_node(
                "AtlasProbe",
                properties={
                    "status": record["status"]["name"],
                    "tags": [tag["slug"] for tag in record["tags"]],
                },
                id=record["id"],
            )
            if record.get("address_v4"):
                ip_node = self.iyp.get_node("IP", ip=record["address_v4"])
                self.iyp.add_link(probe, "ASSIGNED", ip_node, None, reference)
            if record.get("asn_v4"):
                as_node = self.iyp.get_node("AS", asn=record["asn_v4"])
                self.iyp.add_link(probe, "LOCATED_IN", as_node, None, reference)
            if record.get("country_code"):
                country = self.iyp.get_node(
                    "Country", country_code=record["country_code"]
                )
                self.iyp.add_link(probe, "COUNTRY", country, None, reference)


class AtlasMeasurementsCrawler(Crawler):
    """Loads Atlas measurements: TARGET links plus participating probes."""

    organization = "RIPE NCC"
    name = "ripe.atlas_measurements"
    url_data = ATLAS_MEASUREMENTS_URL

    def run(self) -> None:
        reference = self.reference()
        payload = json.loads(self.fetch())
        for record in payload["results"]:
            measurement = self.iyp.get_node(
                "AtlasMeasurement",
                properties={"type": record["type"], "af": record["af"]},
                id=record["id"],
            )
            if record["target_is_ip"]:
                target = self.iyp.get_node("IP", ip=record["target"])
            else:
                target = self.iyp.get_node("HostName", name=record["target"])
            self.iyp.add_link(measurement, "TARGET", target, None, reference)
            for probe_record in record["probes"]:
                probe = self.iyp.get_node("AtlasProbe", id=probe_record["id"])
                self.iyp.add_link(probe, "PART_OF", measurement, None, reference)
