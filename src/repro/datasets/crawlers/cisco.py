"""The Cisco Umbrella popularity list."""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

UMBRELLA_URL = (
    "https://s3-us-west-1.amazonaws.com/umbrella-static/top-1m.csv"
)


def generate_umbrella(world: World) -> str:
    """CSV: rank,domain."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    for rank, domain in enumerate(world.umbrella, start=1):
        writer.writerow([rank, domain])
    return buffer.getvalue()


class UmbrellaCrawler(Crawler):
    """Loads (:DomainName)-[:RANK]->(:Ranking 'Cisco Umbrella Top 1M')."""

    organization = "Cisco"
    name = "cisco.umbrella_top1m"
    url_data = UMBRELLA_URL
    url_info = "https://umbrella-static.s3-us-west-1.amazonaws.com/index.html"

    def run(self) -> None:
        reference = self.reference()
        ranking = self.iyp.get_node("Ranking", name="Cisco Umbrella Top 1M")
        for row in csv.reader(io.StringIO(self.fetch())):
            if len(row) != 2:
                continue
            rank, domain_name = int(row[0]), row[1]
            domain = self.iyp.get_node("DomainName", name=domain_name)
            self.iyp.add_link(domain, "RANK", ranking, {"rank": rank}, reference)
