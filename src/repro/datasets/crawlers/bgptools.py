"""BGP.Tools datasets: AS names, AS tags, anycast prefix tags.

The AS tags dataset provides the 'Content Delivery Network', 'Academic',
'Government', 'DDoS Mitigation'... Tag nodes that the RiPKI extension
(Section 4.1.4) slices RPKI deployment by.
"""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

ASNAMES_URL = "https://bgp.tools/asns.csv"
TAGS_URL = "https://bgp.tools/tags.csv"
ANYCAST_URL = "https://raw.githubusercontent.com/bgptools/anycast-prefixes/anycatch.csv"


def generate_asnames(world: World) -> str:
    """CSV: asn,name (ASN in the 'AS123' spelling used by bgp.tools)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["asn", "name"])
    for asn in sorted(world.ases):
        writer.writerow([f"AS{asn}", world.ases[asn].name])
    return buffer.getvalue()


def generate_tags(world: World) -> str:
    """CSV: asn,tag — one row per (AS, classification tag)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["asn", "tag"])
    for asn in sorted(world.ases):
        for tag in world.ases[asn].tags:
            writer.writerow([f"AS{asn}", tag])
    return buffer.getvalue()


def generate_anycast(world: World) -> str:
    """One anycast prefix per line."""
    return "\n".join(
        sorted(info.prefix for info in world.prefixes.values() if info.anycast)
    )


class ASNamesCrawler(Crawler):
    organization = "BGP.Tools"
    name = "bgptools.as_names"
    url_data = ASNAMES_URL
    url_info = "https://bgp.tools/kb/api"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        for row in reader:
            as_node = self.iyp.get_node("AS", asn=row["asn"])
            name_node = self.iyp.get_node("Name", name=row["name"])
            self.iyp.add_link(as_node, "NAME", name_node, None, reference)


class ASTagsCrawler(Crawler):
    organization = "BGP.Tools"
    name = "bgptools.tags"
    url_data = TAGS_URL
    url_info = "https://bgp.tools/kb/api"

    def run(self) -> None:
        reference = self.reference()
        reader = csv.DictReader(io.StringIO(self.fetch()))
        tags: dict[str, object] = {}
        for row in reader:
            as_node = self.iyp.get_node("AS", asn=row["asn"])
            if row["tag"] not in tags:
                tags[row["tag"]] = self.iyp.get_node("Tag", label=row["tag"])
            self.iyp.add_link(as_node, "CATEGORIZED", tags[row["tag"]], None, reference)


class AnycastCrawler(Crawler):
    organization = "BGP.Tools"
    name = "bgptools.anycast_prefixes"
    url_data = ANYCAST_URL
    url_info = "https://github.com/bgptools/anycast-prefixes"

    def run(self) -> None:
        reference = self.reference()
        tag = self.iyp.get_node("Tag", label="Anycast")
        for line in self.fetch().splitlines():
            line = line.strip()
            if not line:
                continue
            prefix = self.iyp.get_node("Prefix", prefix=line)
            self.iyp.add_link(prefix, "CATEGORIZED", tag, None, reference)
