"""The Tranco top-sites list."""

from __future__ import annotations

import csv
import io

from repro.datasets.base import Crawler
from repro.simnet.world import World

TRANCO_URL = "https://tranco-list.eu/top-1m.csv"


def generate_tranco(world: World) -> str:
    """CSV: rank,domain — exactly the real list's shape."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    for rank, domain in enumerate(world.tranco, start=1):
        writer.writerow([rank, domain])
    return buffer.getvalue()


class TrancoCrawler(Crawler):
    """Loads (:DomainName)-[:RANK {rank}]->(:Ranking 'Tranco top 1M')."""

    organization = "Tranco"
    name = "tranco.top1m"
    url_data = TRANCO_URL
    url_info = "https://tranco-list.eu"

    def run(self) -> None:
        reference = self.reference()
        ranking = self.iyp.get_node("Ranking", name="Tranco top 1M")
        for row in csv.reader(io.StringIO(self.fetch())):
            if len(row) != 2:
                continue
            rank, domain_name = int(row[0]), row[1]
            domain = self.iyp.get_node("DomainName", name=domain_name)
            self.iyp.add_link(domain, "RANK", ranking, {"rank": rank}, reference)
