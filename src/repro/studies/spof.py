"""Single points of failure in the DNS resolution chain (Section 5.2,
Figures 5 and 6).

The paper extends the DNS Robustness methodology beyond direct
dependencies using the OpenINTEL DNS Dependency Graph, BGPKIT pfx2asn,
and the NRO delegated files:

- **direct** — the ASes hosting a domain's own nameservers;
- **third-party** — ASes reached only transitively: the domain's
  nameservers live under a provider's zone, whose own nameservers live
  under another provider's zone, and so on (outsourcing chains);
- **hierarchical** — the ASes hosting the registries of the domain's
  TLD chain (a ccTLD ties every domain under it to the registry
  operator's country).

The study reports, per country and per AS, how many ranked domains
depend on it in each of the three ways — the data behind the paper's
stacked-bar Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics import bounded_reach
from repro.core import IYP
from repro.nettypes.dns import public_suffix, registered_domain

_ZONE_NS = """
MATCH (z:DomainName)-[m:MANAGED_BY {reference_name:'openintel.dnsgraph'}]
      -(ns:AuthoritativeNameServer)
RETURN z.name AS zone, ns.name AS ns
"""

_NS_AS = """
MATCH (ns:AuthoritativeNameServer)-[:RESOLVES_TO]-(:IP)-[:PART_OF]
      -(:Prefix)-[o:ORIGINATE {reference_name:'bgpkit.pfx2as'}]-(a:AS)
RETURN DISTINCT ns.name AS ns, a.asn AS asn
"""

_AS_COUNTRY = """
MATCH (a:AS)-[c:COUNTRY {reference_name:'nro.delegated_stats'}]-(cn:Country)
RETURN DISTINCT a.asn AS asn, cn.country_code AS country
"""

_AS_NAME = """
MATCH (a:AS)-[n:NAME {reference_name:'ripe.as_names'}]-(name:Name)
RETURN a.asn AS asn, name.name AS name
"""

_RANKED = """
MATCH (d:DomainName)-[:RANK]-(r:Ranking)
WHERE r.name IN ['Tranco top 1M', 'Cisco Umbrella Top 1M']
RETURN DISTINCT d.name AS domain
"""

DepCounts = dict[str, int]  # {'direct': n, 'third_party': n, 'hierarchical': n}


@dataclass
class SPOFResults:
    """Figures 5 and 6 as data series."""

    domains_analyzed: int = 0
    by_country: dict[str, DepCounts] = field(default_factory=dict)
    by_as: dict[int, DepCounts] = field(default_factory=dict)
    as_names: dict[int, str] = field(default_factory=dict)
    # Number of domains with at least one dependency of each type.
    domains_with: DepCounts = field(
        default_factory=lambda: {"direct": 0, "third_party": 0, "hierarchical": 0}
    )

    def top_countries(self, n: int = 10) -> list[tuple[str, DepCounts]]:
        """Countries by total dependent domains, descending."""
        return sorted(
            self.by_country.items(),
            key=lambda item: -sum(item[1].values()),
        )[:n]

    def top_ases(self, n: int = 10) -> list[tuple[int, DepCounts]]:
        """ASes by total dependent domains, descending."""
        return sorted(
            self.by_as.items(),
            key=lambda item: -sum(item[1].values()),
        )[:n]


def run_spof_study(iyp: IYP, max_chain_depth: int = 5) -> SPOFResults:
    """Walk the DNS dependency chains of every ranked domain."""
    zone_ns: dict[str, set[str]] = {}
    for row in iyp.run(_ZONE_NS).records:
        zone_ns.setdefault(row["zone"], set()).add(row["ns"])
    ns_as: dict[str, set[int]] = {}
    for row in iyp.run(_NS_AS).records:
        ns_as.setdefault(row["ns"], set()).add(row["asn"])
    as_country: dict[int, str] = {
        row["asn"]: row["country"] for row in iyp.run(_AS_COUNTRY).records
    }
    ranked = [row["domain"] for row in iyp.run(_RANKED).records]

    results = SPOFResults()
    results.as_names = {
        row["asn"]: row["name"] for row in iyp.run(_AS_NAME).records
    }

    def ases_of_zone(zone: str) -> set[int]:
        ases: set[int] = set()
        for ns in zone_ns.get(zone, ()):
            ases |= ns_as.get(ns, set())
        return ases

    def zone_providers(zone: str) -> list[str] | None:
        """One outsourcing step: the provider zones of a zone's
        nameservers, or None for zones with no DNS data (which stay
        expandable should a later chain learn about them)."""
        servers = zone_ns.get(zone)
        if servers is None:
            return None
        return [registered_domain(ns) or ns for ns in servers]

    def third_party_ases(domain: str) -> set[int]:
        """ASes reached through the provider outsourcing chain."""
        frontier = {
            registered_domain(ns) or ns for ns in zone_ns.get(domain, ())
        }
        collected: set[int] = set()
        for zone in bounded_reach(
            frontier,
            zone_providers,
            max_depth=max_chain_depth,
            visited=(domain,),
        ):
            collected |= ases_of_zone(zone)
        return collected

    def hierarchical_ases(domain: str) -> set[int]:
        suffix = public_suffix(domain)
        ases: set[int] = set()
        for zone in {suffix, suffix.rsplit(".", 1)[-1]}:
            ases |= ases_of_zone(zone)
        return ases

    for domain in ranked:
        if domain not in zone_ns:
            continue
        results.domains_analyzed += 1
        direct = ases_of_zone(domain)
        third = third_party_ases(domain) - direct
        hierarchical = hierarchical_ases(domain) - direct - third
        for dep_type, ases in (
            ("direct", direct),
            ("third_party", third),
            ("hierarchical", hierarchical),
        ):
            if ases:
                results.domains_with[dep_type] += 1
            countries = {as_country.get(asn) for asn in ases} - {None}
            for country in countries:
                counts = results.by_country.setdefault(
                    country, {"direct": 0, "third_party": 0, "hierarchical": 0}
                )
                counts[dep_type] += 1
            for asn in ases:
                counts = results.by_as.setdefault(
                    asn, {"direct": 0, "third_party": 0, "hierarchical": 0}
                )
                counts[dep_type] += 1
    return results
