"""The Figure 4 "sneak peek": one popular domain's neighbourhood.

Starting from a DomainName node, walk the branches the paper's figure
shows — ranking, zone structure, resolution chain down to the
originating AS and its RPKI/IRR tags, the delegated nameservers, and
the querying ASes — and report which distinct datasets contributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import IYP

_NEIGHBOURHOOD = """
MATCH (d:DomainName {name: $domain})-[r]-(n)
RETURN type(r) AS rel, labels(n) AS labels, r.reference_name AS dataset
"""

_RESOLUTION_CHAIN = """
MATCH (d:DomainName {name: $domain})-[:PART_OF]-(h:HostName)
      -[rt:RESOLVES_TO]-(i:IP)-[:PART_OF]-(p:Prefix)
OPTIONAL MATCH (p)-[o:ORIGINATE]-(a:AS)
OPTIONAL MATCH (p)-[:CATEGORIZED]-(t:Tag)
RETURN h.name AS hostname, i.ip AS ip, p.prefix AS prefix,
       collect(DISTINCT a.asn) AS origins,
       collect(DISTINCT t.label) AS prefix_tags,
       collect(DISTINCT rt.reference_name) AS resolution_datasets
"""

_NS_CHAIN = """
MATCH (d:DomainName {name: $domain})-[m:MANAGED_BY]-(ns:AuthoritativeNameServer)
OPTIONAL MATCH (ns)-[:RESOLVES_TO]-(i:IP)-[:PART_OF]-(p:Prefix)-[:ORIGINATE]-(a:AS)
RETURN ns.name AS ns, collect(DISTINCT i.ip) AS ips,
       collect(DISTINCT a.asn) AS hosting_ases
"""


@dataclass
class SneakPeek:
    """One domain's cross-dataset neighbourhood."""

    domain: str
    relationships: list[dict] = field(default_factory=list)
    resolution: list[dict] = field(default_factory=list)
    nameservers: list[dict] = field(default_factory=list)
    datasets: set[str] = field(default_factory=set)

    @property
    def dataset_count(self) -> int:
        return len(self.datasets)


_LABEL_COLORS = {
    "DomainName": "gold",
    "HostName": "lightpink",
    "IP": "lightblue",
    "Prefix": "palegreen",
    "AS": "orange",
    "Tag": "lightgrey",
    "Ranking": "plum",
    "AuthoritativeNameServer": "lightsalmon",
    "Country": "khaki",
}

_PEEK_GRAPH = """
MATCH (d:DomainName {name: $domain})-[r]-(n)
RETURN d AS start, type(r) AS rel, n AS end
UNION
MATCH (:DomainName {name: $domain})-[:PART_OF]-(h:HostName)
      -[r:RESOLVES_TO]-(i:IP)
RETURN h AS start, type(r) AS rel, i AS end
UNION
MATCH (:DomainName {name: $domain})-[:PART_OF]-(:HostName)
      -[:RESOLVES_TO]-(i:IP)-[r:PART_OF]-(p:Prefix)
RETURN i AS start, type(r) AS rel, p AS end
UNION
MATCH (:DomainName {name: $domain})-[:PART_OF]-(:HostName)
      -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(p:Prefix)-[r]-(x)
WHERE type(r) IN ['ORIGINATE', 'CATEGORIZED', 'ROUTE_ORIGIN_AUTHORIZATION']
RETURN p AS start, type(r) AS rel, x AS end
"""


def sneak_peek_dot(iyp: IYP, domain: str) -> str:
    """Render the Figure 4 neighbourhood as a Graphviz DOT document.

    Node colors follow the label scheme of the paper's figure (yellow
    DomainName, pink HostName, ...).  Pipe the output through
    ``dot -Tsvg`` to get the picture.
    """
    rows = iyp.run(_PEEK_GRAPH, {"domain": domain}).records
    lines = [
        "graph sneak_peek {",
        "  layout=neato; overlap=false; splines=true;",
        '  node [style=filled, fontname="Helvetica", fontsize=10];',
    ]
    seen_nodes: set[int] = set()
    seen_edges: set[tuple[int, str, int]] = set()
    for row in rows:
        for node in (row["start"], row["end"]):
            if node.id in seen_nodes:
                continue
            seen_nodes.add(node.id)
            label = next(iter(sorted(node.labels)))
            color = _LABEL_COLORS.get(label, "white")
            caption = (
                node.properties.get("name")
                or node.properties.get("prefix")
                or node.properties.get("ip")
                or node.properties.get("label")
                or (f"AS{node.properties['asn']}" if "asn" in node.properties else "")
                or label
            )
            lines.append(
                f'  n{node.id} [label="{caption}", fillcolor="{color}"];'
            )
        key = (row["start"].id, row["rel"], row["end"].id)
        reverse = (row["end"].id, row["rel"], row["start"].id)
        if key in seen_edges or reverse in seen_edges:
            continue
        seen_edges.add(key)
        lines.append(
            f'  n{row["start"].id} -- n{row["end"].id} '
            f'[label="{row["rel"]}", fontsize=8];'
        )
    lines.append("}")
    return "\n".join(lines)


def sneak_peek(iyp: IYP, domain: str) -> SneakPeek:
    """Collect the Figure 4 neighbourhood for one domain name."""
    peek = SneakPeek(domain=domain)
    params = {"domain": domain}
    peek.relationships = iyp.run(_NEIGHBOURHOOD, params).records
    for row in peek.relationships:
        if row["dataset"]:
            peek.datasets.add(row["dataset"])
    peek.resolution = iyp.run(_RESOLUTION_CHAIN, params).records
    for row in peek.resolution:
        peek.datasets.update(row.get("resolution_datasets") or ())
    peek.nameservers = iyp.run(_NS_CHAIN, params).records
    return peek
