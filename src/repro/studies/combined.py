"""Combining RiPKI and DNS Robustness (paper Section 5.1.1).

RPKI coverage of the DNS infrastructure itself: the fraction of
prefixes hosting Tranco nameservers that are RPKI-covered, and the
fraction of Tranco *domains* whose nameservers all sit in RPKI-covered
prefixes (the concentration effect the paper reports: 48% of prefixes
but 84% of domains).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import IYP

_NS_PREFIXES = """
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)
      -[:MANAGED_BY {reference_name:'openintel.ns'}]-(ns:AuthoritativeNameServer)
      -[:RESOLVES_TO {reference_name:'openintel.ns'}]-(:IP)
      -[:PART_OF]-(pfx:Prefix)
RETURN DISTINCT d.name AS domain, pfx.prefix AS prefix
"""

_RPKI_TAGGED_PREFIXES = """
MATCH (pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI Valid' OR t.label STARTS WITH 'RPKI Invalid'
RETURN DISTINCT pfx.prefix AS prefix
"""


@dataclass
class CombinedResults:
    """Section 5.1.1 numbers."""

    ns_prefixes_total: int = 0
    ns_prefixes_covered_pct: float = 0.0
    domains_on_covered_ns_pct: float = 0.0


def run_combined_study(iyp: IYP) -> CombinedResults:
    """RPKI coverage of nameserver prefixes and of the domains above them.

    Two set-shaped queries joined in Python (as the paper's notebooks
    do) instead of a per-row OPTIONAL MATCH — same result, an order of
    magnitude faster on laptop-scale graphs.
    """
    results = CombinedResults()
    rows = iyp.run(_NS_PREFIXES).records
    if not rows:
        return results
    covered_prefixes = {
        row["prefix"] for row in iyp.run(_RPKI_TAGGED_PREFIXES).records
    }
    prefix_covered: dict[str, bool] = {}
    domain_covered: dict[str, bool] = {}
    for row in rows:
        covered = row["prefix"] in covered_prefixes
        prefix_covered[row["prefix"]] = prefix_covered.get(
            row["prefix"], False
        ) or covered
        domain_covered[row["domain"]] = domain_covered.get(
            row["domain"], False
        ) or covered
    results.ns_prefixes_total = len(prefix_covered)
    results.ns_prefixes_covered_pct = (
        100.0 * sum(prefix_covered.values()) / len(prefix_covered)
    )
    results.domains_on_covered_ns_pct = (
        100.0 * sum(domain_covered.values()) / len(domain_covered)
    )
    return results
