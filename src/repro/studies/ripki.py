"""The RiPKI reproduction (paper Section 4.1, Table 2) and extensions.

Reports, for the prefixes hosting Tranco domains:

- the fraction of RPKI-invalid prefixes and the share of invalids
  caused by a too-small maxLength;
- overall RPKI coverage (valid + invalid), and coverage restricted to
  the top band, the bottom band, and CDN-tagged prefixes (Table 2);
- coverage per BGP.Tools AS tag (the Section 4.1.4 extension);
- domain-weighted coverage (the Section 5.1.2 extension: how many
  *domains* sit on RPKI-covered prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import IYP

# Prefix -> RPKI tag membership for the Tranco hosting infrastructure.
_TRANCO_PREFIX_TAGS = """
MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName)-[:PART_OF]-(h:HostName)
      -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)
OPTIONAL MATCH (pfx)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
RETURN d.name AS domain, r.rank AS rank, pfx.prefix AS prefix,
       collect(DISTINCT t.label) AS rpki_tags
"""

_CDN_PREFIXES = """
MATCH (:Tag {label:'Content Delivery Network'})-[:CATEGORIZED]-(a:AS)
      -[:ORIGINATE]-(pfx:Prefix)
RETURN DISTINCT pfx.prefix AS prefix
"""

_TAG_AS_PREFIXES = """
MATCH (t:Tag)-[:CATEGORIZED]-(a:AS)-[:ORIGINATE]-(pfx:Prefix)
OPTIONAL MATCH (pfx)-[:CATEGORIZED]-(rt:Tag)
WHERE rt.label STARTS WITH 'RPKI'
RETURN t.label AS tag, pfx.prefix AS prefix,
       collect(DISTINCT rt.label) AS rpki_tags
"""

_INVALID_DETAIL = """
MATCH (pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI Invalid'
RETURN pfx.prefix AS prefix, t.label AS label
"""


@dataclass
class RiPKIResults:
    """Everything Table 2 and the extensions report."""

    total_prefixes: int = 0
    invalid_pct: float = 0.0
    invalid_maxlen_share: float = 0.0
    covered_pct: float = 0.0
    top_band_pct: float = 0.0
    bottom_band_pct: float = 0.0
    cdn_pct: float = 0.0
    coverage_by_tag: dict[str, float] = field(default_factory=dict)
    domains_covered_pct: float = 0.0
    cdn_domains_covered_pct: float = 0.0

    def table2_row(self) -> dict[str, float]:
        """The IYP row of Table 2."""
        return {
            "RPKI Invalid": self.invalid_pct,
            "RPKI covered": self.covered_pct,
            "Top 100k": self.top_band_pct,
            "Bottom 100k": self.bottom_band_pct,
            "CDN": self.cdn_pct,
        }


def _is_covered(tags: list[str]) -> bool:
    return any(tag.startswith("RPKI Valid") or tag.startswith("RPKI Invalid")
               for tag in tags)


def _is_invalid(tags: list[str]) -> bool:
    return any(tag.startswith("RPKI Invalid") for tag in tags)


def run_ripki_study(iyp: IYP, band_fraction: float = 0.1) -> RiPKIResults:
    """Run the full RiPKI reproduction against a knowledge graph.

    ``band_fraction`` is the size of the "Top/Bottom 100k" bands as a
    fraction of the ranked list (the paper's 100k out of 1M).
    """
    results = RiPKIResults()
    rows = iyp.run(_TRANCO_PREFIX_TAGS).records
    if not rows:
        return results

    max_rank = max(row["rank"] for row in rows)
    band = max(1, int(max_rank * band_fraction))

    prefix_tags: dict[str, list[str]] = {}
    prefix_min_rank: dict[str, int] = {}
    domain_tags: dict[str, list[str]] = {}
    domain_prefixes: dict[str, set[str]] = {}
    for row in rows:
        prefix = row["prefix"]
        tags = prefix_tags.setdefault(prefix, [])
        for tag in row["rpki_tags"]:
            if tag not in tags:
                tags.append(tag)
        rank = row["rank"]
        prefix_min_rank[prefix] = min(prefix_min_rank.get(prefix, rank), rank)
        domain_tags.setdefault(row["domain"], []).extend(row["rpki_tags"])
        domain_prefixes.setdefault(row["domain"], set()).add(prefix)

    all_prefixes = list(prefix_tags)
    results.total_prefixes = len(all_prefixes)
    covered = [p for p in all_prefixes if _is_covered(prefix_tags[p])]
    invalid = [p for p in all_prefixes if _is_invalid(prefix_tags[p])]
    results.covered_pct = 100.0 * len(covered) / len(all_prefixes)
    results.invalid_pct = 100.0 * len(invalid) / len(all_prefixes)

    top = [p for p in all_prefixes if prefix_min_rank[p] <= band]
    bottom_rows = {
        row["prefix"] for row in rows if row["rank"] > max_rank - band
    }
    bottom = list(bottom_rows)
    if top:
        results.top_band_pct = 100.0 * sum(
            1 for p in top if _is_covered(prefix_tags[p])
        ) / len(top)
    if bottom:
        results.bottom_band_pct = 100.0 * sum(
            1 for p in bottom if _is_covered(prefix_tags[p])
        ) / len(bottom)

    # CDN prefixes (hosting Tranco content or not, as in the paper).
    cdn_rows = iyp.run(_CDN_PREFIXES).records
    cdn_prefixes = [row["prefix"] for row in cdn_rows]
    if cdn_prefixes:
        cdn_in_tranco = [p for p in cdn_prefixes if p in prefix_tags]
        pool = cdn_in_tranco or cdn_prefixes
        covered_cdn = sum(1 for p in pool if _is_covered(prefix_tags.get(p, [])))
        results.cdn_pct = 100.0 * covered_cdn / len(pool)

    # Invalid cause breakdown: maxLength vs wrong origin.
    invalid_rows = iyp.run(_INVALID_DETAIL).records
    labels = [row["label"] for row in invalid_rows]
    if labels:
        maxlen = sum(1 for label in labels if "more-specific" in label)
        results.invalid_maxlen_share = 100.0 * maxlen / len(labels)

    # Section 4.1.4: coverage per AS classification tag.
    results.coverage_by_tag = _coverage_by_tag(iyp)

    # Section 5.1.2: domain-weighted coverage.
    covered_domains = sum(
        1 for tags in domain_tags.values() if _is_covered(tags)
    )
    results.domains_covered_pct = 100.0 * covered_domains / len(domain_tags)
    cdn_prefix_set = set(cdn_prefixes)
    cdn_domains = [
        domain
        for domain, prefixes in domain_prefixes.items()
        if prefixes & cdn_prefix_set
    ]
    if cdn_domains:
        covered_cdn_domains = sum(
            1 for domain in cdn_domains if _is_covered(domain_tags[domain])
        )
        results.cdn_domains_covered_pct = (
            100.0 * covered_cdn_domains / len(cdn_domains)
        )
    return results


def _coverage_by_tag(iyp: IYP) -> dict[str, float]:
    rows = iyp.run(_TAG_AS_PREFIXES).records
    by_tag: dict[str, dict[str, bool]] = {}
    for row in rows:
        if row["tag"].startswith("RPKI") or row["tag"].startswith("IRR"):
            continue
        prefixes = by_tag.setdefault(row["tag"], {})
        prefixes[row["prefix"]] = prefixes.get(row["prefix"], False) or _is_covered(
            row["rpki_tags"]
        )
    return {
        tag: round(100.0 * sum(covered.values()) / len(covered), 1)
        for tag, covered in sorted(by_tag.items())
        if covered
    }
