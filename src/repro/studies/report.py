"""The weekly report: every study regenerated in one document.

The paper ships two Jupyter notebooks whose re-execution against the
latest public snapshot refreshes all results ("reproducible on-demand",
Section 6.2).  This module is the same idea as a library call: run
every study against a knowledge graph and render one markdown report —
the artifact a weekly cron job would publish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import IYP
from repro.studies.combined import run_combined_study
from repro.studies.comparison import compare_origin_datasets
from repro.studies.dns_robustness import run_dns_robustness_study
from repro.studies.ripki import run_ripki_study
from repro.studies.spof import run_spof_study


@dataclass
class WeeklyReport:
    """The rendered report plus the raw study results."""

    markdown: str
    ripki: object
    dns: object
    combined: object
    spof: object
    comparison: object


def _table(header: list[str], rows: list[list]) -> list[str]:
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "---|" * len(header))
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def generate_report(iyp: IYP, snapshot_label: str = "latest") -> WeeklyReport:
    """Run all studies and render the markdown report."""
    ripki = run_ripki_study(iyp)
    dns = run_dns_robustness_study(iyp)
    combined = run_combined_study(iyp)
    spof = run_spof_study(iyp)
    comparison = compare_origin_datasets(iyp)
    summary = iyp.summary()

    lines: list[str] = [
        f"# IYP weekly report — snapshot {snapshot_label}",
        "",
        f"Graph: {summary['nodes']:,} nodes, "
        f"{summary['relationships']:,} relationships.",
        "",
        "## RPKI status of popular-domain prefixes (Table 2)",
        "",
    ]
    lines += _table(
        ["metric", "%"],
        [[key, f"{value:.1f}"] for key, value in ripki.table2_row().items()]
        + [["invalids from maxLength", f"{ripki.invalid_maxlen_share:.0f}"],
           ["domains on covered prefixes", f"{ripki.domains_covered_pct:.1f}"]],
    )
    lines += ["", "### Coverage per AS classification tag", ""]
    lines += _table(
        ["tag", "%"],
        [[tag, value] for tag, value in sorted(
            ripki.coverage_by_tag.items(), key=lambda kv: kv[1]
        )],
    )
    lines += ["", "## DNS best practices (Table 3)", ""]
    lines += _table(
        ["metric", "%"],
        [[key, f"{value:.1f}"] for key, value in dns.table3_row().items()],
    )
    lines += ["", "## Shared DNS infrastructure (Tables 4-5)", ""]
    lines += _table(
        ["grouping", "median", "max"],
        [
            [".com/.net/.org by NS set", dns.cno_by_ns.median, dns.cno_by_ns.maximum],
            [".com/.net/.org by /24", dns.cno_by_slash24.median,
             dns.cno_by_slash24.maximum],
            [".com/.net/.org by BGP prefix", dns.cno_by_prefix.median,
             dns.cno_by_prefix.maximum],
            ["All domains by BGP prefix", dns.all_by_prefix.median,
             dns.all_by_prefix.maximum],
            ["All domains by NS set", dns.all_by_ns.median, dns.all_by_ns.maximum],
        ],
    )
    lines += ["", "## RPKI and the DNS infrastructure (Section 5.1)", ""]
    lines += _table(
        ["metric", "%"],
        [
            ["nameserver prefixes covered",
             f"{combined.ns_prefixes_covered_pct:.1f}"],
            ["domains on covered nameservers",
             f"{combined.domains_on_covered_ns_pct:.1f}"],
        ],
    )
    lines += ["", "## Single points of failure in the DNS chain (Figures 5-6)", ""]
    lines += _table(
        ["country", "direct", "third-party", "hierarchical"],
        [
            [country, counts["direct"], counts["third_party"],
             counts["hierarchical"]]
            for country, counts in spof.top_countries(8)
        ],
    )
    lines += ["", "## Dataset consistency (Section 6.1)", ""]
    lines += _table(
        ["metric", "value"],
        [
            ["prefixes compared", comparison.prefixes_compared],
            ["origin disagreements", comparison.total],
            ["IPv6-dominated (bug signature)", comparison.ipv6_dominated],
        ],
    )
    lines.append("")
    return WeeklyReport(
        markdown="\n".join(lines),
        ripki=ripki,
        dns=dns,
        combined=combined,
        spof=spof,
        comparison=comparison,
    )
