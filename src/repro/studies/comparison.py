"""Dataset comparison (paper Section 6.1, "Datasets comparison").

BGPKIT's pfx2asn and IHR's ROV both map prefixes to origin ASes.  The
paper recounts how querying the *differences* between the two datasets
in IYP surfaced an error affecting IPv6 prefixes in the BGPKIT data.
The synthetic world injects exactly such an error
(``WorldConfig.bgpkit_ipv6_error_fraction``); this study is the query
that finds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import IYP

_ORIGINS_BY_DATASET = """
MATCH (a:AS)-[o:ORIGINATE]-(p:Prefix)
WHERE o.reference_name IN ['bgpkit.pfx2as', 'ihr.rov']
RETURN p.prefix AS prefix, p.af AS af, o.reference_name AS dataset,
       collect(DISTINCT a.asn) AS origins
"""


@dataclass
class ComparisonResult:
    """Origin disagreements between the two prefix-to-AS datasets."""

    disagreements: list[dict] = field(default_factory=list)
    ipv4_count: int = 0
    ipv6_count: int = 0
    prefixes_compared: int = 0

    @property
    def total(self) -> int:
        return len(self.disagreements)

    @property
    def ipv6_dominated(self) -> bool:
        """True when the bug signature matches the paper's: the
        disagreement is concentrated in IPv6 prefixes."""
        return self.ipv6_count > self.ipv4_count


def compare_origin_datasets(iyp: IYP) -> ComparisonResult:
    """Find prefixes whose origin sets differ between BGPKIT and IHR.

    MOAS prefixes with the same origin set in both datasets are not
    disagreements; a prefix is flagged when either dataset reports an
    origin the other does not.
    """
    by_prefix: dict[str, dict] = {}
    for row in iyp.run(_ORIGINS_BY_DATASET).records:
        entry = by_prefix.setdefault(
            row["prefix"],
            {"af": row["af"], "bgpkit.pfx2as": set(), "ihr.rov": set()},
        )
        entry[row["dataset"]] |= set(row["origins"])
    result = ComparisonResult()
    result.prefixes_compared = len(by_prefix)
    for prefix in sorted(by_prefix):
        entry = by_prefix[prefix]
        bgpkit, ihr = entry["bgpkit.pfx2as"], entry["ihr.rov"]
        if not bgpkit or not ihr or bgpkit == ihr:
            continue
        result.disagreements.append(
            {
                "prefix": prefix,
                "af": entry["af"],
                "bgpkit_origins": sorted(bgpkit),
                "ihr_origins": sorted(ihr),
            }
        )
        if entry["af"] == 6:
            result.ipv6_count += 1
        else:
            result.ipv4_count += 1
    return result
