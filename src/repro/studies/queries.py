"""The Cypher queries published in the paper, verbatim.

Listings 1-6 of the paper, plus the Figure 3 semantic-search examples.
They run unmodified on this reproduction's engine — keeping them
byte-for-byte identical to the paper is itself part of the reproduction.
"""

# Listing 1: all originating ASes.
LISTING_1 = """
// Select ASes originating prefixes
MATCH (x:AS)-[:ORIGINATE]-(:Prefix)
// Return the AS's ASN
RETURN DISTINCT x.asn
"""

# Listing 2: Multiple Origin AS (MOAS) prefixes.
LISTING_2 = """
// Find Prefixes with two originating ASes
MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS)
// Make sure that the ASNs of the two ASes are different
WHERE x.asn <> y.asn
// Return the prefix attribute of the Prefix node
RETURN DISTINCT p.prefix
"""

# Listing 3: popular hostnames in RPKI-valid prefixes of a named org.
# (The paper uses CERN; the org name is a parameter here.)
LISTING_3 = """
// Find RPKI valid prefixes managed by the organization
MATCH (org:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(pfx:Prefix)-[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
WHERE org.name = $org_name
// Find popular hostnames in these prefixes (refered as pfx)
MATCH (pfx)-[:PART_OF]-(:IP)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(h:HostName)
// Return the hostname's name
RETURN DISTINCT h.name
"""

# Listing 4: RPKI-invalid prefixes for Tranco domains.
LISTING_4 = """
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(:DomainName)-[:PART_OF]-(:HostName)
      -[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI Invalid'
RETURN count(DISTINCT pfx)
"""

# Listing 5: nameserver /24 grouping for .com/.net/.org domains
# (the per-/24 computation happens in Python, as in the paper's
# notebook; the query collects nameserver IPv4 addresses per domain).
LISTING_5 = """
MATCH (r:Ranking {name: 'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:MANAGED_BY]-(a:AuthoritativeNameServer)
      -[:RESOLVES_TO]-(i:IP {af:4})
WHERE d.name ENDS WITH '.com' OR d.name ENDS WITH '.net' OR d.name ENDS WITH '.org'
RETURN d.name AS domain, COLLECT(DISTINCT i.ip) AS ips
"""

# Listing 6: BGP-prefix grouping for all Tranco domains.
LISTING_6 = """
MATCH (r:Ranking {name: 'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:MANAGED_BY]-(a:AuthoritativeNameServer)
      -[:RESOLVES_TO]-(i:IP {af:4})-[:PART_OF]-(pfx:Prefix)
RETURN d.name AS domain, COLLECT(DISTINCT pfx.prefix) AS prefixes
"""
