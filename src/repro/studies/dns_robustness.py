"""The DNS Robustness reproduction (paper Section 4.2, Tables 3-5).

Three parts:

1. **Best practices (Table 3)** — for .com/.net/.org SLDs of the Tranco
   list: coverage, discarded fraction (no glue data), and whether the
   RFC 1034/2182 two-nameserver requirement is not met / met / exceeded,
   plus the in-zone-glue fraction.
2. **Shared infrastructure (Table 4)** — group domains by their exact
   nameserver set and by the /24s of their nameserver addresses; report
   the median (per-domain) and maximum group sizes.
3. **Extensions (Table 5)** — the same grouping using BGP prefixes
   instead of /24s, and over the whole Tranco list instead of the three
   TLDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import IYP
from repro.nettypes.ip import slash24_of

_CNO_SUFFIXES = (".com", ".net", ".org")

_DOMAIN_NS = """
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)
      -[m:MANAGED_BY]-(ns:AuthoritativeNameServer)
WHERE m.reference_name = 'openintel.ns'
RETURN d.name AS domain, ns.name AS ns, m.glue AS glue, m.in_zone AS in_zone
"""

_NS_IPV4 = """
MATCH (ns:AuthoritativeNameServer)-[:RESOLVES_TO]-(i:IP {af:4})
RETURN DISTINCT ns.name AS ns, i.ip AS ip
"""

_NS_PREFIX = """
MATCH (ns:AuthoritativeNameServer)-[:RESOLVES_TO]-(:IP {af:4})
      -[:PART_OF]-(pfx:Prefix)
RETURN DISTINCT ns.name AS ns, pfx.prefix AS prefix
"""


@dataclass
class GroupingStats:
    """Median (per-domain) and maximum shared-infrastructure group size."""

    median: int = 0
    maximum: int = 0
    groups: int = 0


@dataclass
class DNSRobustnessResults:
    """Tables 3, 4, and 5."""

    # Table 3
    coverage_pct: float = 0.0
    discarded_pct: float = 0.0
    meet_pct: float = 0.0
    exceed_pct: float = 0.0
    not_meet_pct: float = 0.0
    in_zone_glue_pct: float = 0.0
    # Table 4
    cno_by_ns: GroupingStats = field(default_factory=GroupingStats)
    cno_by_slash24: GroupingStats = field(default_factory=GroupingStats)
    # Table 5
    cno_by_prefix: GroupingStats = field(default_factory=GroupingStats)
    all_by_prefix: GroupingStats = field(default_factory=GroupingStats)
    all_by_ns: GroupingStats = field(default_factory=GroupingStats)

    def table3_row(self) -> dict[str, float]:
        return {
            "Coverage": self.coverage_pct,
            "Discarded": self.discarded_pct,
            "Meet": self.meet_pct,
            "Exceed": self.exceed_pct,
            "Not meet": self.not_meet_pct,
            "In-zone glue": self.in_zone_glue_pct,
        }


def _is_cno_sld(domain: str) -> bool:
    return domain.endswith(_CNO_SUFFIXES) and domain.count(".") == 1


def _group_stats(domain_keys: dict[str, tuple]) -> GroupingStats:
    """Group domains by an identical key; median is per-domain."""
    sizes: dict[tuple, int] = {}
    for key in domain_keys.values():
        sizes[key] = sizes.get(key, 0) + 1
    if not sizes:
        return GroupingStats()
    per_domain = sorted(sizes[key] for key in domain_keys.values())
    return GroupingStats(
        median=per_domain[len(per_domain) // 2],
        maximum=max(sizes.values()),
        groups=len(sizes),
    )


def run_dns_robustness_study(iyp: IYP) -> DNSRobustnessResults:
    """Run the full DNS Robustness reproduction."""
    results = DNSRobustnessResults()
    rows = iyp.run(_DOMAIN_NS).records
    if not rows:
        return results

    domains: dict[str, dict] = {}
    for row in rows:
        entry = domains.setdefault(
            row["domain"], {"ns": set(), "glue": False, "in_zone": False}
        )
        entry["ns"].add(row["ns"])
        entry["glue"] = entry["glue"] or bool(row["glue"])
        entry["in_zone"] = entry["in_zone"] or bool(row["in_zone"])

    total = len(domains)
    cno = {name: entry for name, entry in domains.items() if _is_cno_sld(name)}
    results.coverage_pct = 100.0 * len(cno) / total if total else 0.0

    kept = {name: entry for name, entry in cno.items() if entry["glue"]}
    if cno:
        results.discarded_pct = 100.0 * (len(cno) - len(kept)) / len(cno)
        not_meet = sum(1 for entry in kept.values() if len(entry["ns"]) < 2)
        meet = sum(1 for entry in kept.values() if len(entry["ns"]) == 2)
        exceed = sum(1 for entry in kept.values() if len(entry["ns"]) > 2)
        results.not_meet_pct = 100.0 * not_meet / len(cno)
        results.meet_pct = 100.0 * meet / len(cno)
        results.exceed_pct = 100.0 * exceed / len(cno)
    if kept:
        results.in_zone_glue_pct = 100.0 * sum(
            1 for entry in kept.values() if entry["in_zone"]
        ) / len(kept)

    # Shared infrastructure groupings.
    ns_ips: dict[str, list[str]] = {}
    for row in iyp.run(_NS_IPV4).records:
        ns_ips.setdefault(row["ns"], []).append(row["ip"])
    ns_prefixes: dict[str, list[str]] = {}
    for row in iyp.run(_NS_PREFIX).records:
        ns_prefixes.setdefault(row["ns"], []).append(row["prefix"])

    def key_by_ns(entry) -> tuple:
        return tuple(sorted(entry["ns"]))

    def key_by_slash24(entry) -> tuple:
        return tuple(
            sorted(
                {
                    slash24_of(ip)
                    for ns in entry["ns"]
                    for ip in ns_ips.get(ns, ())
                }
            )
        )

    def key_by_prefix(entry) -> tuple:
        return tuple(
            sorted(
                {
                    prefix
                    for ns in entry["ns"]
                    for prefix in ns_prefixes.get(ns, ())
                }
            )
        )

    results.cno_by_ns = _group_stats(
        {name: key_by_ns(entry) for name, entry in kept.items()}
    )
    results.cno_by_slash24 = _group_stats(
        {name: key_by_slash24(entry) for name, entry in kept.items()}
    )
    results.cno_by_prefix = _group_stats(
        {name: key_by_prefix(entry) for name, entry in kept.items()}
    )
    results.all_by_ns = _group_stats(
        {name: key_by_ns(entry) for name, entry in domains.items()}
    )
    results.all_by_prefix = _group_stats(
        {name: key_by_prefix(entry) for name, entry in domains.items()}
    )
    return results
