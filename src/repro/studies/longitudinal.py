"""Longitudinal analysis across snapshots (paper Section 7).

The paper calls running one IYP instance per point in time and merging
results by hand "cumbersome".  This module is that workflow as a
library: register labelled snapshots, run the same query against each,
and get the merged time series back.  Combined with the era presets of
:class:`~repro.simnet.WorldConfig` it reproduces the paper's
2015-vs-2024 arc as a single call, and
:meth:`SnapshotSeries.from_archive` builds the series straight from a
managed dump archive (:class:`repro.archive.SnapshotArchive`) instead
of hand-managed stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core import IYP


@dataclass
class SnapshotSeries:
    """An ordered set of labelled knowledge-graph snapshots."""

    snapshots: dict[str, IYP] = field(default_factory=dict)

    def add(self, label: str, iyp: IYP) -> None:
        """Register a snapshot under a time label (e.g. '2024-05-01')."""
        self.snapshots[label] = iyp

    @classmethod
    def from_archive(
        cls, archive, labels: Iterable[str] | None = None
    ) -> "SnapshotSeries":
        """Load archived dumps into a series, oldest first.

        ``labels`` restricts (and orders by manifest position) which
        entries load; by default every archived snapshot joins the
        series.  Each dump is loaded into its own store, so studies can
        run per era without the instances interfering.
        """
        wanted = None if labels is None else set(labels)
        series = cls()
        for entry in archive.entries():
            if wanted is not None and entry.label not in wanted:
                continue
            series.add(entry.label, IYP(archive.load(entry)))
        return series

    def run(self, query: str, parameters: dict[str, Any] | None = None):
        """Run one query on every snapshot; label -> QueryResult."""
        return {
            label: iyp.run(query, parameters)
            for label, iyp in self.snapshots.items()
        }

    def metric(self, query: str, parameters: dict[str, Any] | None = None
               ) -> dict[str, Any]:
        """Run a single-value query on every snapshot; label -> value."""
        return {
            label: result.value()
            for label, result in self.run(query, parameters).items()
        }

    def study(self, runner: Callable[[IYP], Any]) -> dict[str, Any]:
        """Apply a study function (e.g. run_ripki_study) per snapshot."""
        return {label: runner(iyp) for label, iyp in self.snapshots.items()}

    def trend(self, query: str) -> list[tuple[str, Any]]:
        """A metric as an ordered (label, value) series."""
        values = self.metric(query)
        return [(label, values[label]) for label in self.snapshots]
