"""The paper's evaluation, reproduced as queries over the knowledge graph.

- :mod:`repro.studies.queries` — the paper's published Cypher listings;
- :mod:`repro.studies.ripki` — the RiPKI reproduction (Table 2) and its
  extensions (Section 4.1.4 tag breakdown, Section 5.1.2 domain
  weighting);
- :mod:`repro.studies.dns_robustness` — the DNS Robustness reproduction
  (Tables 3-5);
- :mod:`repro.studies.combined` — RPKI coverage of the DNS
  infrastructure (Section 5.1.1);
- :mod:`repro.studies.spof` — single points of failure in the DNS
  resolution chain (Figures 5 and 6);
- :mod:`repro.studies.comparison` — the dataset-comparison lesson of
  Section 6.1 (finding the injected BGPKIT IPv6 bug);
- :mod:`repro.studies.sneak_peek` — the Figure 4 neighbourhood walk.
"""

from repro.studies.combined import CombinedResults, run_combined_study
from repro.studies.comparison import ComparisonResult, compare_origin_datasets
from repro.studies.dns_robustness import (
    DNSRobustnessResults,
    GroupingStats,
    run_dns_robustness_study,
)
from repro.studies.ripki import RiPKIResults, run_ripki_study
from repro.studies.sneak_peek import sneak_peek
from repro.studies.spof import SPOFResults, run_spof_study

__all__ = [
    "CombinedResults",
    "ComparisonResult",
    "DNSRobustnessResults",
    "GroupingStats",
    "RiPKIResults",
    "SPOFResults",
    "compare_origin_datasets",
    "run_combined_study",
    "run_dns_robustness_study",
    "run_ripki_study",
    "run_spof_study",
    "sneak_peek",
]
