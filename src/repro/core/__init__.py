"""The IYP core: the knowledge-graph construction and query facade.

This is the paper's primary contribution — the machinery that turns
heterogeneous datasets into one harmonized property graph:

- :class:`IYP` wraps the graph store and the Cypher engine, enforcing
  canonical identifier forms on node creation (Section 2.3) and the
  systematic provenance properties on every link (Section 2.2);
- :class:`Reference` carries those provenance properties;
- uniqueness constraints and indexes are derived from the ontology.
"""

from repro.core.diff import GraphDiff, snapshot_diff
from repro.core.iyp import IYP, Reference

__all__ = ["GraphDiff", "IYP", "Reference", "snapshot_diff"]
