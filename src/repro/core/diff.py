"""Diffing two knowledge-graph snapshots.

The paper's Limitations section describes longitudinal analysis as
running multiple IYP instances and merging by hand.  A structural diff
is the first tool that workflow needs: it compares two stores by
*identity* (the ontology's key properties), not by internal node ids,
so two independently built snapshots are comparable.

Three kinds of change are reported: entities present on only one side
(added/removed), and entities present on both sides whose *properties*
changed (modified) — each modification carries the per-property
``(before, after)`` pairs, so a longitudinal run can tell "this AS got
renamed" from "this AS appeared".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphdb.model import Node
from repro.graphdb.store import GraphStore
from repro.ontology import ENTITIES

NodeKey = tuple[str, Any]  # (label, identifying value)
RelKey = tuple[NodeKey, str, NodeKey, str]  # start, type, end, dataset

#: property name -> (before, after); absent sides are None.
PropChanges = dict[str, tuple[Any, Any]]


@dataclass
class GraphDiff:
    """Structural differences between two snapshots."""

    nodes_added: list[NodeKey] = field(default_factory=list)
    nodes_removed: list[NodeKey] = field(default_factory=list)
    relationships_added: list[RelKey] = field(default_factory=list)
    relationships_removed: list[RelKey] = field(default_factory=list)
    nodes_modified: list[tuple[NodeKey, PropChanges]] = field(default_factory=list)
    relationships_modified: list[tuple[RelKey, PropChanges]] = field(
        default_factory=list
    )

    @property
    def unchanged(self) -> bool:
        return not (
            self.nodes_added
            or self.nodes_removed
            or self.relationships_added
            or self.relationships_removed
            or self.nodes_modified
            or self.relationships_modified
        )

    def summary(self) -> dict[str, dict[str, int]]:
        """Counts per label / relationship type."""

        def count_by(keys, index):
            counts: dict[str, int] = {}
            for key in keys:
                token = key[index] if index is not None else key
                counts[token] = counts.get(token, 0) + 1
            return dict(sorted(counts.items()))

        return {
            "nodes_added": count_by(self.nodes_added, 0),
            "nodes_removed": count_by(self.nodes_removed, 0),
            "nodes_modified": count_by(
                [key for key, _ in self.nodes_modified], 0
            ),
            "relationships_added": count_by(
                [key[1] for key in self.relationships_added], None
            ),
            "relationships_removed": count_by(
                [key[1] for key in self.relationships_removed], None
            ),
            "relationships_modified": count_by(
                [key[1] for key, _ in self.relationships_modified], None
            ),
        }


def node_identity(node: Node) -> NodeKey | None:
    """The (label, value) identity of a node, or None if unidentifiable."""
    for label in sorted(node.labels):
        definition = ENTITIES.get(label)
        if definition is None:
            continue
        value = node.properties.get(definition.key_properties[0])
        if value is not None:
            return (label, value)
    return None


def property_changes(
    old: dict[str, Any], new: dict[str, Any]
) -> PropChanges:
    """Per-key differences between two property maps.

    Mirrors the store's update semantics: a value counts as changed when
    it differs by equality *or* by type (``True`` vs ``1`` is a change).
    Keys present on one side only report ``None`` for the other.
    """
    changes: PropChanges = {}
    for key in old.keys() | new.keys():
        before, after = old.get(key), new.get(key)
        if before != after or type(before) is not type(after):
            changes[key] = (before, after)
    return changes


def _node_keys(store: GraphStore) -> dict[int, NodeKey]:
    keys: dict[int, NodeKey] = {}
    for node in store.iter_nodes():
        identity = node_identity(node)
        if identity is not None:
            keys[node.id] = identity
    return keys


def _nodes_by_key(store: GraphStore, node_keys: dict[int, NodeKey]
                  ) -> dict[NodeKey, Node]:
    by_key: dict[NodeKey, Node] = {}
    for node in store.iter_nodes():
        key = node_keys.get(node.id)
        if key is not None and key not in by_key:
            by_key[key] = node
    return by_key


def _rel_keys(store: GraphStore, node_keys: dict[int, NodeKey]
              ) -> dict[RelKey, dict[str, Any]]:
    keys: dict[RelKey, dict[str, Any]] = {}
    for rel in store.iter_relationships():
        start = node_keys.get(rel.start_id)
        end = node_keys.get(rel.end_id)
        if start is None or end is None:
            continue
        dataset = rel.properties.get("reference_name", "")
        keys.setdefault((start, rel.type, end, dataset), rel.properties)
    return keys


def snapshot_diff(old: GraphStore, new: GraphStore) -> GraphDiff:
    """Compare two snapshots by entity identity."""
    old_nodes = _node_keys(old)
    new_nodes = _node_keys(new)
    old_set = set(old_nodes.values())
    new_set = set(new_nodes.values())
    diff = GraphDiff(
        nodes_added=sorted(new_set - old_set, key=repr),
        nodes_removed=sorted(old_set - new_set, key=repr),
    )
    old_by_key = _nodes_by_key(old, old_nodes)
    new_by_key = _nodes_by_key(new, new_nodes)
    for key in sorted(old_set & new_set, key=repr):
        changes = property_changes(
            old_by_key[key].properties, new_by_key[key].properties
        )
        if changes:
            diff.nodes_modified.append((key, changes))
    old_rels = _rel_keys(old, old_nodes)
    new_rels = _rel_keys(new, new_nodes)
    diff.relationships_added = sorted(new_rels.keys() - old_rels.keys(), key=repr)
    diff.relationships_removed = sorted(old_rels.keys() - new_rels.keys(), key=repr)
    for key in sorted(old_rels.keys() & new_rels.keys(), key=repr):
        changes = property_changes(old_rels[key], new_rels[key])
        if changes:
            diff.relationships_modified.append((key, changes))
    return diff
