"""Diffing two knowledge-graph snapshots.

The paper's Limitations section describes longitudinal analysis as
running multiple IYP instances and merging by hand.  A structural diff
is the first tool that workflow needs: it compares two stores by
*identity* (the ontology's key properties), not by internal node ids,
so two independently built snapshots are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphdb.model import Node
from repro.graphdb.store import GraphStore
from repro.ontology import ENTITIES

NodeKey = tuple[str, Any]  # (label, identifying value)
RelKey = tuple[NodeKey, str, NodeKey, str]  # start, type, end, dataset


@dataclass
class GraphDiff:
    """Structural differences between two snapshots."""

    nodes_added: list[NodeKey] = field(default_factory=list)
    nodes_removed: list[NodeKey] = field(default_factory=list)
    relationships_added: list[RelKey] = field(default_factory=list)
    relationships_removed: list[RelKey] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        return not (
            self.nodes_added
            or self.nodes_removed
            or self.relationships_added
            or self.relationships_removed
        )

    def summary(self) -> dict[str, dict[str, int]]:
        """Counts per label / relationship type."""

        def count_by(keys, index):
            counts: dict[str, int] = {}
            for key in keys:
                token = key[index] if index is not None else key
                counts[token] = counts.get(token, 0) + 1
            return dict(sorted(counts.items()))

        return {
            "nodes_added": count_by(self.nodes_added, 0),
            "nodes_removed": count_by(self.nodes_removed, 0),
            "relationships_added": count_by(
                [key[1] for key in self.relationships_added], None
            ),
            "relationships_removed": count_by(
                [key[1] for key in self.relationships_removed], None
            ),
        }


def node_identity(node: Node) -> NodeKey | None:
    """The (label, value) identity of a node, or None if unidentifiable."""
    for label in sorted(node.labels):
        definition = ENTITIES.get(label)
        if definition is None:
            continue
        value = node.properties.get(definition.key_properties[0])
        if value is not None:
            return (label, value)
    return None


def _node_keys(store: GraphStore) -> dict[int, NodeKey]:
    keys: dict[int, NodeKey] = {}
    for node in store.iter_nodes():
        identity = node_identity(node)
        if identity is not None:
            keys[node.id] = identity
    return keys


def _rel_keys(store: GraphStore, node_keys: dict[int, NodeKey]) -> set[RelKey]:
    keys: set[RelKey] = set()
    for rel in store.iter_relationships():
        start = node_keys.get(rel.start_id)
        end = node_keys.get(rel.end_id)
        if start is None or end is None:
            continue
        dataset = rel.properties.get("reference_name", "")
        keys.add((start, rel.type, end, dataset))
    return keys


def snapshot_diff(old: GraphStore, new: GraphStore) -> GraphDiff:
    """Compare two snapshots by entity identity."""
    old_nodes = _node_keys(old)
    new_nodes = _node_keys(new)
    old_set = set(old_nodes.values())
    new_set = set(new_nodes.values())
    diff = GraphDiff(
        nodes_added=sorted(new_set - old_set, key=repr),
        nodes_removed=sorted(old_set - new_set, key=repr),
    )
    old_rels = _rel_keys(old, old_nodes)
    new_rels = _rel_keys(new, new_nodes)
    diff.relationships_added = sorted(new_rels - old_rels, key=repr)
    diff.relationships_removed = sorted(old_rels - new_rels, key=repr)
    return diff
