"""The IYP facade: canonicalizing loader + query interface.

Dataset crawlers never touch the graph store directly; they call
:meth:`IYP.get_node` / :meth:`IYP.add_link`.  ``get_node`` translates
identifiers to canonical form before node creation, which is what
guarantees that ``2001:DB8::/32`` from one dataset and ``2001:0db8::/32``
from another land on the same Prefix node.  ``add_link`` stamps every
relationship with the provenance ("reference") properties of Section 2.2
so any datapoint in the graph can be traced to its original dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.cypher import CypherEngine, QueryResult
from repro.graphdb import GraphStore, Node
from repro.nettypes import (
    canonical_ip,
    canonical_prefix,
    normalize_name,
    normalize_url,
    parse_asn,
)
from repro.ontology import ENTITIES


@dataclass(frozen=True)
class Reference:
    """Provenance of an imported datapoint (paper Section 2.2)."""

    organization: str
    dataset_name: str
    url_info: str = ""
    url_data: str = ""
    time_modification: str = ""
    time_fetch: str = ""

    def properties(self) -> dict[str, str]:
        """Relationship properties carrying this provenance."""
        props = {
            "reference_org": self.organization,
            "reference_name": self.dataset_name,
        }
        if self.url_info:
            props["reference_url_info"] = self.url_info
        if self.url_data:
            props["reference_url_data"] = self.url_data
        if self.time_modification:
            props["reference_time_modification"] = self.time_modification
        if self.time_fetch:
            props["reference_time_fetch"] = self.time_fetch
        return props


# Canonicalization applied per (label, key property) before node lookup.
def _canonical_country(value: str) -> str:
    return value.strip().upper()


_CANONICALIZERS = {
    ("AS", "asn"): parse_asn,
    ("Prefix", "prefix"): canonical_prefix,
    ("IP", "ip"): canonical_ip,
    ("Country", "country_code"): _canonical_country,
    ("HostName", "name"): normalize_name,
    ("DomainName", "name"): normalize_name,
    ("AuthoritativeNameServer", "name"): normalize_name,
    ("URL", "url"): normalize_url,
}


class IYP:
    """The Internet Yellow Pages knowledge graph.

    >>> iyp = IYP()
    >>> asn = iyp.get_node('AS', asn='AS2914')     # canonicalized to 2914
    >>> pfx = iyp.get_node('Prefix', prefix='10.0.0.0/8')
    >>> ref = Reference('BGPKIT', 'bgpkit.pfx2as')
    >>> _ = iyp.add_link(asn, 'ORIGINATE', pfx, reference=ref)
    >>> iyp.run('MATCH (a:AS)-[:ORIGINATE]-(:Prefix) RETURN a.asn').value()
    2914
    """

    def __init__(self, store: GraphStore | None = None):
        self.store = store or GraphStore()
        self.engine = CypherEngine(self.store)
        self._ensure_indexes()

    def _ensure_indexes(self) -> None:
        for definition in ENTITIES.values():
            if definition.loose:
                # Loose entities are identified via EXTERNAL_ID; a plain
                # index still accelerates name lookups.
                for prop in definition.key_properties:
                    self.store.create_index(definition.label, prop)
                continue
            for prop in definition.key_properties:
                self.store.create_index(definition.label, prop)

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------

    def get_node(self, label: str, /, properties: Mapping[str, Any] | None = None,
                 **key_props: Any) -> Node:
        """Get-or-create a node by its identifying property.

        The identifying property is taken from the ontology definition of
        ``label``; its value is translated to canonical form first.
        ``properties`` carries non-identifying extras to merge in.
        """
        definition = ENTITIES.get(label)
        if definition is None:
            raise KeyError(f"unknown entity label {label!r}")
        key_prop = definition.key_properties[0]
        if key_prop not in key_props:
            raise TypeError(
                f":{label} requires its identifying property {key_prop!r}"
            )
        value = self.canonicalize(label, key_prop, key_props[key_prop])
        extras = dict(properties or {})
        for prop, extra_value in key_props.items():
            if prop != key_prop:
                extras[prop] = extra_value
        return self.store.merge_node(label, key_prop, value, extras)

    def batch_get_nodes(
        self, label: str, key_prop: str, values: list[Any]
    ) -> dict[Any, Node]:
        """Get-or-create many nodes; returns canonical value -> node."""
        result: dict[Any, Node] = {}
        for value in values:
            canonical = self.canonicalize(label, key_prop, value)
            if canonical in result:
                continue
            result[canonical] = self.store.merge_node(label, key_prop, canonical)
        return result

    @staticmethod
    def canonicalize(label: str, key_prop: str, value: Any) -> Any:
        """Translate an identifier to canonical form (Section 2.3)."""
        canonicalizer = _CANONICALIZERS.get((label, key_prop))
        return canonicalizer(value) if canonicalizer else value

    # ------------------------------------------------------------------
    # Link creation
    # ------------------------------------------------------------------

    def add_link(
        self,
        start: Node,
        rel_type: str,
        end: Node,
        properties: Mapping[str, Any] | None = None,
        reference: Reference | None = None,
    ):
        """Create one relationship, stamped with its provenance.

        The same semantic link imported from two datasets stays two
        distinct relationships (distinguished by ``reference_name``), so
        datasets can be selected, discarded, or compared after the fact.
        """
        props = dict(properties or {})
        match_props = None
        if reference is not None:
            props.update(reference.properties())
            match_props = {"reference_name": reference.dataset_name}
            return self.store.merge_relationship(
                start.id, rel_type, end.id,
                properties=props, match_props=match_props,
            )
        return self.store.merge_relationship(
            start.id, rel_type, end.id, properties=props
        )

    def add_links(
        self,
        links: list[tuple[Node, str, Node, Mapping[str, Any] | None]],
        reference: Reference | None = None,
    ) -> int:
        """Create many relationships with shared provenance."""
        for start, rel_type, end, properties in links:
            self.add_link(start, rel_type, end, properties, reference)
        return len(links)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def run(self, query: str, parameters: dict[str, Any] | None = None) -> QueryResult:
        """Execute a Cypher query against the knowledge graph."""
        return self.engine.run(query, parameters)

    def literal_search(self, needle: str, limit: int = 100) -> list[Node]:
        """Literal keyword search: every node with the string anywhere in
        its properties.

        This is the approach Figure 3 contrasts semantic search against:
        searching for ``'7018'`` literally hits AS 7018 but also any IP,
        prefix, or hostname containing those characters.  Provided so
        users can see the difference on their own data.
        """
        needle = needle.lower()
        matches: list[Node] = []
        for node in self.store.iter_nodes():
            for value in node.properties.values():
                if needle in str(value).lower():
                    matches.append(node)
                    break
            if len(matches) >= limit:
                break
        return matches

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Graph size and composition, for reports and sanity checks."""
        return {
            "nodes": self.store.node_count,
            "relationships": self.store.relationship_count,
            "labels": dict(sorted(self.store.label_counts().items())),
            "relationship_types": dict(
                sorted(self.store.relationship_type_counts().items())
            ),
        }
