"""Cost-based planning for one MATCH clause.

The naive executor matched patterns in textual order and evaluated the
whole WHERE expression only after the full pattern product had been
enumerated.  The planner turns each MATCH clause into a
:class:`MatchPlan` that the engine and matcher execute instead:

- **Conjunct decomposition** — WHERE is split on top-level ``AND`` into
  conjuncts, each classified independently.  The conjunction is true
  exactly when every conjunct is true (three-valued logic included), so
  the split never changes which rows pass.
- **Prefilters** — conjuncts whose free variables are all bound by
  earlier clauses are evaluated once per incoming row, before any
  pattern matching starts.
- **Index-seek promotion** — ``x.prop = <value>`` conjuncts whose value
  does not depend on variables introduced by this MATCH are rewritten
  into the pattern's inline property map, which the matcher already
  turns into an index seek when a ``(label, prop)`` hash index exists.
  Inline maps and WHERE equality share the same semantics (the match
  requires ``equals(...) is True``), so the rewrite is exact.
- **Predicate pushdown** — remaining single-variable conjuncts
  (``STARTS WITH``, comparisons, ``IN``, pattern predicates over one
  known variable, ...) are attached to that variable and checked by the
  matcher the moment the variable binds, pruning the search tree
  instead of filtering its leaves.
- **Join ordering** — the patterns of a multi-pattern MATCH are
  reordered greedily: the cheapest pattern (by estimated anchor
  cardinality) binds first, then patterns connected to already-bound
  variables are preferred over disconnected ones so selective joins
  run before any cartesian product.  Result multisets are order
  independent — relationship isomorphism is enforced over the whole
  clause regardless of pattern order — so reordering is safe.

Everything that cannot be classified stays in ``residual`` and is
evaluated exactly where the naive executor evaluated the full WHERE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cypher import ast
from repro.graphdb.store import GraphStore

__all__ = [
    "MatchPlan",
    "plan_match",
    "split_conjuncts",
    "free_variables",
    "render_expression",
]


# ---------------------------------------------------------------------------
# Conjunct decomposition and free-variable analysis
# ---------------------------------------------------------------------------


def split_conjuncts(expression: ast.Expression | None) -> list[ast.Expression]:
    """Flatten top-level ``AND`` into a list of conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: list[ast.Expression]) -> ast.Expression | None:
    """Rebuild a conjunction from a (possibly empty) conjunct list."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("and", result, conjunct)
    return result


def free_variables(expression: ast.Expression | None) -> frozenset[str]:
    """Variable names an expression reads from the enclosing scope.

    Locally-scoped names (list-comprehension / list-predicate /
    ``reduce`` iteration variables) are excluded.  Pattern predicates
    conservatively report *every* variable their pattern mentions, even
    ones that would bind existentially — over-reporting keeps a
    conjunct out of the pushdown set, never produces a wrong plan.
    """
    names: set[str] = set()
    _collect_free(expression, frozenset(), names)
    return frozenset(names)


def _collect_free(
    expression: ast.Expression | None, scoped: frozenset[str], names: set[str]
) -> None:
    if expression is None:
        return
    if isinstance(expression, ast.Variable):
        if expression.name not in scoped:
            names.add(expression.name)
    elif isinstance(expression, (ast.Literal, ast.Parameter)):
        return
    elif isinstance(expression, ast.PropertyAccess):
        _collect_free(expression.subject, scoped, names)
    elif isinstance(expression, ast.FunctionCall):
        for arg in expression.args:
            _collect_free(arg, scoped, names)
    elif isinstance(expression, ast.UnaryOp):
        _collect_free(expression.operand, scoped, names)
    elif isinstance(expression, ast.BinaryOp):
        _collect_free(expression.left, scoped, names)
        _collect_free(expression.right, scoped, names)
    elif isinstance(expression, ast.IsNull):
        _collect_free(expression.operand, scoped, names)
    elif isinstance(expression, ast.ListLiteral):
        for item in expression.items:
            _collect_free(item, scoped, names)
    elif isinstance(expression, ast.MapLiteral):
        for _, value in expression.items:
            _collect_free(value, scoped, names)
    elif isinstance(expression, ast.IndexAccess):
        for part in (expression.subject, expression.index, expression.end):
            _collect_free(part, scoped, names)
    elif isinstance(expression, ast.CaseExpression):
        _collect_free(expression.operand, scoped, names)
        for condition, value in expression.whens:
            _collect_free(condition, scoped, names)
            _collect_free(value, scoped, names)
        _collect_free(expression.default, scoped, names)
    elif isinstance(expression, ast.ListComprehension):
        _collect_free(expression.source, scoped, names)
        inner = scoped | {expression.variable}
        _collect_free(expression.predicate, inner, names)
        _collect_free(expression.projection, inner, names)
    elif isinstance(expression, ast.ListPredicate):
        _collect_free(expression.source, scoped, names)
        _collect_free(expression.predicate, scoped | {expression.variable}, names)
    elif isinstance(expression, ast.Reduce):
        _collect_free(expression.init, scoped, names)
        _collect_free(expression.source, scoped, names)
        inner = scoped | {expression.accumulator, expression.variable}
        _collect_free(expression.expression, inner, names)
    elif isinstance(expression, ast.PatternPredicate):
        for name in _pattern_variables(expression.pattern):
            if name not in scoped:
                names.add(name)
        for node in expression.pattern.nodes:
            for _, value in node.properties:
                _collect_free(value, scoped, names)
        for rel in expression.pattern.relationships:
            for _, value in rel.properties:
                _collect_free(value, scoped, names)


def _pattern_variables(pattern: ast.PathPattern) -> set[str]:
    """Every variable a single path pattern mentions (incl. path var)."""
    names: set[str] = set()
    if pattern.path_variable:
        names.add(pattern.path_variable)
    for node in pattern.nodes:
        if node.variable:
            names.add(node.variable)
    for rel in pattern.relationships:
        if rel.variable:
            names.add(rel.variable)
    return names


def _bindable_variables(patterns: Iterable[ast.PathPattern]) -> set[str]:
    """Node and relationship variables (pushdown targets); path variables
    bind only after a full path materializes, so they are excluded."""
    names: set[str] = set()
    for pattern in patterns:
        for node in pattern.nodes:
            if node.variable:
                names.add(node.variable)
        for rel in pattern.relationships:
            if rel.variable:
                names.add(rel.variable)
    return names


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass
class MatchPlan:
    """How one MATCH clause executes: pattern order, pushdown, residue."""

    #: Patterns in execution (join) order, with promoted equalities
    #: already folded into their inline property maps.
    patterns: tuple[ast.PathPattern, ...]
    #: ``order[i]`` is the textual index of ``patterns[i]``.
    order: tuple[int, ...]
    #: Bind-time predicates, keyed by the variable that triggers them.
    pushed: dict[str, tuple[ast.Expression, ...]] = field(default_factory=dict)
    #: Promoted equalities per variable, for EXPLAIN: (key, value expr).
    promoted: dict[str, tuple[tuple[str, ast.Expression], ...]] = field(
        default_factory=dict
    )
    #: Conjuncts decided per incoming row, before matching starts.
    prefilters: tuple[ast.Expression, ...] = ()
    #: What remains of WHERE, evaluated on complete bindings.
    residual: ast.Expression | None = None
    #: Estimated result cardinality per pattern (aligned with
    #: ``patterns``), only present when the plan was built with
    #: measured :class:`repro.analytics.GraphStatistics`.
    estimates: tuple[float, ...] | None = None

    @property
    def reordered(self) -> bool:
        return self.order != tuple(range(len(self.order)))

    def pushed_count(self) -> int:
        return sum(len(preds) for preds in self.pushed.values()) + sum(
            len(pairs) for pairs in self.promoted.values()
        )

    def describe_predicates(self) -> list[str]:
        """EXPLAIN lines for the pushdown decisions, one per predicate."""
        lines: list[str] = []
        for expr in self.prefilters:
            lines.append(f"prefilter: {render_expression(expr)}")
        for var in sorted(self.promoted):
            for key, value in self.promoted[var]:
                lines.append(
                    f"pushed seek {var}.{key} = {render_expression(value)}"
                )
        for var in sorted(self.pushed):
            for expr in self.pushed[var]:
                lines.append(f"pushed filter [{var}]: {render_expression(expr)}")
        if self.residual is not None:
            lines.append(f"residual: {render_expression(self.residual)}")
        return lines


def plan_match(
    patterns: tuple[ast.PathPattern, ...],
    where: ast.Expression | None,
    store: GraphStore,
    bound: frozenset[str] = frozenset(),
    statistics=None,
) -> MatchPlan:
    """Plan one MATCH clause.

    ``bound`` is the set of variables already carried by the incoming
    rows (identical for every row of a pipeline stage); conjuncts that
    only touch those become prefilters, and promoted equality values may
    reference them.

    ``statistics`` is an optional :class:`repro.analytics.
    GraphStatistics`.  When given, join ordering ranks patterns by
    estimated cardinality — anchor population times the measured mean
    fan-out of every expansion hop — instead of anchor cost alone, and
    the per-pattern estimates are recorded on the plan for EXPLAIN.
    Without it, planning is byte-identical to the uniform-cost model.
    """
    bindable = _bindable_variables(patterns)
    prefilters: list[ast.Expression] = []
    pushed: dict[str, list[ast.Expression]] = {}
    promotions: dict[str, list[tuple[str, ast.Expression]]] = {}
    residual: list[ast.Expression] = []
    for conjunct in split_conjuncts(where):
        free = free_variables(conjunct)
        introduced = free - bound
        if not introduced:
            prefilters.append(conjunct)
            continue
        if len(introduced) > 1 or not introduced <= bindable:
            residual.append(conjunct)
            continue
        (variable,) = introduced
        promotion = _as_promotable_equality(conjunct, variable, bound)
        if promotion is not None:
            promotions.setdefault(variable, []).append(promotion)
        else:
            pushed.setdefault(variable, []).append(conjunct)
    rewritten = tuple(_apply_promotions(p, promotions) for p in patterns)
    order, estimates = _order_patterns(rewritten, store, bound, statistics)
    return MatchPlan(
        patterns=tuple(rewritten[i] for i in order),
        order=order,
        pushed={var: tuple(preds) for var, preds in pushed.items()},
        promoted={var: tuple(pairs) for var, pairs in promotions.items()},
        prefilters=tuple(prefilters),
        residual=conjoin(residual),
        estimates=estimates,
    )


def _as_promotable_equality(
    conjunct: ast.Expression, variable: str, bound: frozenset[str]
) -> tuple[str, ast.Expression] | None:
    """``x.prop = value`` (either side) with ``value`` independent of the
    variables this MATCH introduces -> ``(prop, value)``, else None."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "eq"):
        return None
    for subject, value in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if (
            isinstance(subject, ast.PropertyAccess)
            and isinstance(subject.subject, ast.Variable)
            and subject.subject.name == variable
            and free_variables(value) <= bound
        ):
            return (subject.key, value)
    return None


def _apply_promotions(
    pattern: ast.PathPattern,
    promotions: Mapping[str, list[tuple[str, ast.Expression]]],
) -> ast.PathPattern:
    """Fold promoted equalities into the pattern's inline property maps."""
    if not promotions:
        return pattern
    nodes = []
    changed = False
    for node in pattern.nodes:
        extra = promotions.get(node.variable or "")
        if extra:
            additions = tuple(
                (key, value) for key, value in extra if (key, value) not in node.properties
            )
            if additions:
                node = ast.NodePattern(
                    node.variable,
                    node.labels,
                    node.properties + additions,
                    span=node.span,
                    label_spans=node.label_spans,
                )
                changed = True
        nodes.append(node)
    relationships = []
    for rel in pattern.relationships:
        extra = promotions.get(rel.variable or "")
        if extra:
            additions = tuple(
                (key, value) for key, value in extra if (key, value) not in rel.properties
            )
            if additions:
                rel = ast.RelPattern(
                    rel.variable,
                    rel.types,
                    rel.properties + additions,
                    rel.direction,
                    rel.min_hops,
                    rel.max_hops,
                    span=rel.span,
                    type_spans=rel.type_spans,
                )
                changed = True
        relationships.append(rel)
    if not changed:
        return pattern
    return ast.PathPattern(
        tuple(nodes),
        tuple(relationships),
        path_variable=pattern.path_variable,
        shortest=pattern.shortest,
    )


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


def _order_patterns(
    patterns: tuple[ast.PathPattern, ...],
    store: GraphStore,
    bound: frozenset[str],
    statistics=None,
) -> tuple[tuple[int, ...], tuple[float, ...] | None]:
    """Greedy join order: cheapest anchor first, then always prefer
    patterns connected (by a shared variable) to what is already bound,
    cheapest connected pattern next.  Disconnected patterns — genuine
    cartesian products — run last, when the bound side is as small as
    the plan can make it.

    With ``statistics``, "cheapest" means smallest *estimated result
    cardinality* (anchor population times measured per-hop fan-out)
    rather than smallest anchor, and the estimate per chosen pattern is
    returned alongside the order.
    """
    if len(patterns) <= 1:
        order = tuple(range(len(patterns)))
        if statistics is None:
            return order, None
        estimates = tuple(
            _pattern_estimate(patterns[i], set(bound), store, statistics)
            for i in order
        )
        return order, estimates
    remaining = set(range(len(patterns)))
    available = set(bound)
    order: list[int] = []
    estimates: list[float] = []
    variables = [_pattern_variables(p) for p in patterns]
    while remaining:
        connected = [i for i in remaining if variables[i] & available]
        pool = connected or sorted(remaining)
        best = min(
            pool,
            key=lambda i: (
                _pattern_cost(patterns[i], available, store, statistics),
                i,
            ),
        )
        order.append(best)
        if statistics is not None:
            estimates.append(
                _pattern_estimate(patterns[best], available, store, statistics)
            )
        remaining.discard(best)
        available |= variables[best]
    return tuple(order), (tuple(estimates) if statistics is not None else None)


def _pattern_cost(
    pattern: ast.PathPattern,
    available: set[str],
    store: GraphStore,
    statistics=None,
) -> float:
    """Estimated anchor cardinality; mirrors the matcher's anchor
    heuristic (bound variable < index seek < smallest label scan <
    all-nodes scan) against a set of available variables.  With
    ``statistics`` the cost is the full cardinality estimate including
    expansion fan-out, not just the anchor."""
    if statistics is not None:
        return _pattern_estimate(pattern, available, store, statistics)
    best: int | None = None
    for node in pattern.nodes:
        cost = _node_cost(node, available, store)
        if best is None or cost < best:
            best = cost
    return best if best is not None else 0


def _pattern_estimate(
    pattern: ast.PathPattern,
    available: set[str],
    store: GraphStore,
    statistics,
) -> float:
    """Estimated rows a pattern produces: the cheapest anchor's
    population multiplied by the measured mean fan-out of each expansion
    hop walking away from that anchor.

    Fan-out for a hop is :meth:`GraphStatistics.expansion` for the
    source node's label (smallest-population label when several),
    summed over the relationship's admissible types; a hop traversed
    against its arrow flips the direction it asks for.
    """
    best_cost: int | None = None
    anchor = 0
    for index, node in enumerate(pattern.nodes):
        cost = _node_cost(node, available, store)
        if best_cost is None or cost < best_cost:
            best_cost, anchor = cost, index
    if best_cost is None:
        return 0.0
    estimate = float(best_cost)
    # Expand rightward from the anchor, then leftward; each hop
    # multiplies by the measured fan-out of its source node.
    for hop in range(anchor, len(pattern.relationships)):
        estimate *= _hop_fanout(
            pattern.nodes[hop], pattern.relationships[hop], statistics, False
        )
    for hop in range(anchor - 1, -1, -1):
        estimate *= _hop_fanout(
            pattern.nodes[hop + 1], pattern.relationships[hop], statistics, True
        )
    return estimate


def _hop_fanout(
    source: ast.NodePattern,
    rel: ast.RelPattern,
    statistics,
    reverse: bool,
) -> float:
    """Mean number of neighbours one expansion step yields."""
    direction = rel.direction
    if reverse and direction != "both":
        direction = "in" if direction == "out" else "out"
    label: str | None = None
    if source.labels:
        label = min(
            source.labels,
            key=lambda candidate: statistics.label_counts.get(candidate, 0),
        )
    if rel.types:
        fanout = sum(
            statistics.expansion(label, rel_type, direction)
            for rel_type in rel.types
        )
    else:
        fanout = statistics.expansion(label, None, direction)
    if rel.is_variable_length:
        # Crude but monotone: a variable-length hop repeats its fan-out
        # up to max_hops times (treat unbounded as 3 levels).
        hops = rel.max_hops if rel.max_hops != -1 else 3
        total = 0.0
        level = 1.0
        for _ in range(max(hops, 1)):
            level *= fanout
            total += level
        return total
    return fanout


def _node_cost(node: ast.NodePattern, available: set[str], store: GraphStore) -> int:
    if node.variable and node.variable in available:
        return 0
    if node.labels:
        best: int | None = None
        for label in node.labels:
            count = store.label_count(label)
            for key, _ in node.properties:
                if store.has_index(label, key):
                    count = min(count, 2)  # index seek: near-constant
                    break
            if best is None or count < best:
                best = count
        return (best or 0) + 1
    return store.node_count + 2


# ---------------------------------------------------------------------------
# Expression rendering (EXPLAIN)
# ---------------------------------------------------------------------------

_OPERATOR_TEXT = {
    "and": "AND", "or": "OR", "xor": "XOR",
    "eq": "=", "neq": "<>", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "in": "IN", "starts_with": "STARTS WITH", "ends_with": "ENDS WITH",
    "contains": "CONTAINS", "regex": "=~",
}


def render_expression(expression: ast.Expression | None) -> str:
    """A compact, human-readable form of an expression for plan output.

    Best effort: uncommon shapes fall back to a placeholder rather than
    failing the EXPLAIN."""
    if expression is None:
        return "<none>"
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    if isinstance(expression, ast.Parameter):
        return f"${expression.name}"
    if isinstance(expression, ast.Variable):
        return expression.name
    if isinstance(expression, ast.PropertyAccess):
        return f"{render_expression(expression.subject)}.{expression.key}"
    if isinstance(expression, ast.BinaryOp):
        op = _OPERATOR_TEXT.get(expression.op, expression.op)
        return (
            f"{render_expression(expression.left)} {op} "
            f"{render_expression(expression.right)}"
        )
    if isinstance(expression, ast.UnaryOp):
        if expression.op == "not":
            return f"NOT {render_expression(expression.operand)}"
        return f"{expression.op}{render_expression(expression.operand)}"
    if isinstance(expression, ast.IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{render_expression(expression.operand)} {suffix}"
    if isinstance(expression, ast.FunctionCall):
        args = ", ".join(render_expression(arg) for arg in expression.args)
        if expression.star:
            args = "*"
        return f"{expression.name}({args})"
    if isinstance(expression, ast.ListLiteral):
        return "[" + ", ".join(render_expression(i) for i in expression.items) + "]"
    if isinstance(expression, ast.PatternPredicate):
        names = sorted(_pattern_variables(expression.pattern))
        return f"exists(pattern over {', '.join(names) or 'anonymous'})"
    return f"<{type(expression).__name__}>"
