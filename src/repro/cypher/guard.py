"""Per-query execution guards: time budgets and row limits.

A :class:`QueryGuard` is created per request by the admission controller
(:mod:`repro.server.admission`) and handed to
:meth:`repro.cypher.engine.CypherEngine.run`.  The engine and pattern
matcher call :meth:`QueryGuard.tick` from their inner loops, so a query
that blows its time budget aborts cooperatively mid-match instead of
holding a worker thread (and, for read queries, a read lock) forever.

Checking the clock on every tick would dominate tight matching loops, so
the deadline is only consulted every ``TICK_STRIDE`` ticks.
"""

from __future__ import annotations

import time

from repro.cypher.errors import QueryTimeoutError, RowLimitError

TICK_STRIDE = 256


class QueryGuard:
    """Cooperative execution limits for one query."""

    __slots__ = ("timeout", "max_rows", "_deadline", "_ticks")

    def __init__(self, timeout: float | None = None, max_rows: int | None = None):
        self.timeout = timeout
        self.max_rows = max_rows
        self._deadline = (time.monotonic() + timeout) if timeout else None
        self._ticks = 0

    def tick(self) -> None:
        """Called from execution inner loops; raises on a blown deadline."""
        if self._deadline is None:
            return
        self._ticks += 1
        if self._ticks % TICK_STRIDE:
            return
        if time.monotonic() > self._deadline:
            raise QueryTimeoutError(self.timeout)

    def check_deadline(self) -> None:
        """Unconditional deadline check (clause boundaries)."""
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise QueryTimeoutError(self.timeout)

    def check_rows(self, produced: int) -> None:
        """Raise when a result exceeds the row limit."""
        if self.max_rows is not None and produced > self.max_rows:
            raise RowLimitError(produced, self.max_rows)
