"""Value semantics for the Cypher subset.

Implements Cypher's three-valued logic (true / false / null), its
comparison rules (comparing incompatible types yields null for ordering
and false for equality), orderability for ORDER BY (null sorts last,
ascending), and hashable grouping keys for DISTINCT / implicit GROUP BY.
"""

from __future__ import annotations

from typing import Any

from repro.cypher.errors import CypherRuntimeError
from repro.graphdb.model import Node, Relationship

_NUMERIC = (int, float)


def is_truthy(value: Any) -> bool:
    """WHERE semantics: only boolean true passes; null and false do not."""
    return value is True


def logical_and(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return _as_bool(left) and _as_bool(right)


def logical_or(left: Any, right: Any) -> Any:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return _as_bool(left) or _as_bool(right)


def logical_xor(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    return _as_bool(left) != _as_bool(right)


def logical_not(value: Any) -> Any:
    if value is None:
        return None
    return not _as_bool(value)


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise CypherRuntimeError(f"expected a boolean, got {value!r}")


def equals(left: Any, right: Any) -> Any:
    """Cypher ``=``: null-propagating equality."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        return float(left) == float(right)
    if type(left) is not type(right) and not (
        isinstance(left, (list, tuple)) and isinstance(right, (list, tuple))
    ):
        return False
    if isinstance(left, (list, tuple)):
        if len(left) != len(right):
            return False
        for a, b in zip(left, right, strict=True):
            item = equals(a, b)
            if item is None:
                return None
            if not item:
                return False
        return True
    return left == right


def compare(left: Any, right: Any, op: str) -> Any:
    """Cypher ordering comparison; returns True/False/None."""
    if left is None or right is None:
        return None
    comparable = (
        (isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC)
         and not isinstance(left, bool) and not isinstance(right, bool))
        or (isinstance(left, str) and isinstance(right, str))
        or (isinstance(left, bool) and isinstance(right, bool))
    )
    if not comparable:
        return None
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    if op == "gt":
        return left > right
    if op == "ge":
        return left >= right
    raise CypherRuntimeError(f"unknown comparison {op}")


def list_membership(item: Any, container: Any) -> Any:
    """Cypher ``IN`` over lists with null semantics."""
    if container is None:
        return None
    if not isinstance(container, (list, tuple)):
        raise CypherRuntimeError(f"IN requires a list, got {type(container).__name__}")
    saw_null = False
    for element in container:
        verdict = equals(item, element)
        if verdict is True:
            return True
        if verdict is None:
            saw_null = True
    return None if saw_null or item is None else False


_TYPE_ORDER = {
    "map": 0,
    "node": 1,
    "relationship": 2,
    "list": 3,
    "str": 4,
    "bool": 5,
    "number": 6,
    "null": 7,  # null sorts last ascending, per Cypher
}


def sort_key(value: Any) -> tuple:
    """A total order over heterogeneous values for ORDER BY."""
    if value is None:
        return (_TYPE_ORDER["null"], 0)
    if isinstance(value, bool):
        return (_TYPE_ORDER["bool"], value)
    if isinstance(value, _NUMERIC):
        return (_TYPE_ORDER["number"], float(value))
    if isinstance(value, str):
        return (_TYPE_ORDER["str"], value)
    if isinstance(value, (list, tuple)):
        return (_TYPE_ORDER["list"], tuple(sort_key(item) for item in value))
    if isinstance(value, Node):
        return (_TYPE_ORDER["node"], value.id)
    if isinstance(value, Relationship):
        return (_TYPE_ORDER["relationship"], value.id)
    if isinstance(value, dict):
        return (
            _TYPE_ORDER["map"],
            tuple(sorted((key, sort_key(item)) for key, item in value.items())),
        )
    raise CypherRuntimeError(f"unorderable value {value!r}")


def hash_key(value: Any) -> Any:
    """A hashable key identifying a value for DISTINCT / grouping."""
    if isinstance(value, Node):
        return ("__node__", value.id)
    if isinstance(value, Relationship):
        return ("__rel__", value.id)
    if isinstance(value, (list, tuple)):
        return ("__list__", tuple(hash_key(item) for item in value))
    if isinstance(value, dict):
        return (
            "__map__",
            frozenset((key, hash_key(item)) for key, item in value.items()),
        )
    if isinstance(value, float) and value.is_integer():
        return int(value)  # 1.0 and 1 group together, as = says they're equal
    return value
