"""Query fingerprinting: one stable identity per query *shape*.

The statement-statistics registry (:mod:`repro.obs.statements`) needs to
aggregate "the same query" across requests that differ only in literal
values, parameter names, whitespace, or keyword casing — exactly what
PostgreSQL's ``pg_stat_statements`` does by normalizing the parse tree.
This module is the reproduction's version of that normalization, working
on the already-parsed :mod:`repro.cypher.ast`:

- every :class:`~repro.cypher.ast.Literal` renders as ``?``;
- every :class:`~repro.cypher.ast.Parameter` renders as ``$?`` (two
  textually different parameter names are one statement shape — the
  value bound at run time never enters the fingerprint);
- everything else (labels, relationship types, property keys, variable
  names, functions, clause structure) renders canonically, so it *does*
  distinguish statements.

Whitespace and keyword case are already gone by parse time, so
``match (a:AS) return a`` and ``MATCH  (a:AS)  RETURN a`` share a tree
and therefore a fingerprint.

The fingerprint is the first 12 hex chars of the SHA-256 of the
normalized text; the normalized text itself is kept alongside as the
human-readable exemplar shown by ``GET /debug/statements`` and
``repro top``.
"""

from __future__ import annotations

import hashlib

from repro.cypher import ast

#: Hex chars of SHA-256 kept as the fingerprint (48 bits: collision-safe
#: for any realistic statement population, short enough to eyeball).
FINGERPRINT_HEX_CHARS = 12

_BINARY_SYMBOLS = {
    "and": "AND",
    "or": "OR",
    "xor": "XOR",
    "eq": "=",
    "neq": "<>",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "in": "IN",
    "starts_with": "STARTS WITH",
    "ends_with": "ENDS WITH",
    "contains": "CONTAINS",
    "regex": "=~",
}


def fingerprint_query(tree: ast.Query) -> tuple[str, str]:
    """``(fingerprint, normalized text)`` for one parsed query."""
    normalized = normalize_query(tree)
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_HEX_CHARS], normalized


def normalize_query(tree: ast.Query) -> str:
    """Render a parsed query canonically with literals/params masked."""
    parts = [_render_clauses(tree.clauses)]
    for part in tree.union_parts:
        keyword = "UNION ALL" if tree.union_all else "UNION"
        parts.append(keyword)
        parts.append(_render_clauses(part.clauses))
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


def _render_clauses(clauses: tuple[ast.Clause, ...]) -> str:
    return " ".join(_render_clause(clause) for clause in clauses)


def _render_clause(clause: ast.Clause) -> str:
    if isinstance(clause, ast.MatchClause):
        head = "OPTIONAL MATCH" if clause.optional else "MATCH"
        body = ", ".join(_render_path(p) for p in clause.patterns)
        if clause.where is not None:
            body += f" WHERE {_expr(clause.where)}"
        return f"{head} {body}"
    if isinstance(clause, ast.UnwindClause):
        return f"UNWIND {_expr(clause.expression)} AS {clause.alias}"
    if isinstance(clause, ast.WithClause):
        return "WITH " + _render_projection(clause, with_where=True)
    if isinstance(clause, ast.ReturnClause):
        return "RETURN " + _render_projection(clause, with_where=False)
    if isinstance(clause, ast.CreateClause):
        return "CREATE " + ", ".join(_render_path(p) for p in clause.patterns)
    if isinstance(clause, ast.MergeClause):
        text = "MERGE " + _render_path(clause.pattern)
        if clause.on_create:
            text += " ON CREATE SET " + ", ".join(
                _render_set_item(item) for item in clause.on_create
            )
        if clause.on_match:
            text += " ON MATCH SET " + ", ".join(
                _render_set_item(item) for item in clause.on_match
            )
        return text
    if isinstance(clause, ast.SetClause):
        return "SET " + ", ".join(_render_set_item(item) for item in clause.items)
    if isinstance(clause, ast.RemoveClause):
        return "REMOVE " + ", ".join(
            _render_set_item(item) for item in clause.items
        )
    if isinstance(clause, ast.DeleteClause):
        head = "DETACH DELETE" if clause.detach else "DELETE"
        return f"{head} " + ", ".join(_expr(e) for e in clause.expressions)
    if isinstance(clause, ast.CallClause):
        text = f"CALL {clause.procedure}"
        text += "(" + ", ".join(_expr(arg) for arg in clause.args) + ")"
        if clause.yields:
            text += " YIELD " + ", ".join(
                item.column if item.column == item.alias
                else f"{item.column} AS {item.alias}"
                for item in clause.yields
            )
        return text
    if isinstance(clause, ast.EmptyReturn):
        return ""
    return type(clause).__name__


def _render_projection(
    clause: "ast.WithClause | ast.ReturnClause", with_where: bool
) -> str:
    parts: list[str] = []
    flags = "DISTINCT " if clause.distinct else ""
    if clause.star:
        parts.append(f"{flags}*")
    else:
        parts.append(
            flags
            + ", ".join(
                f"{_expr(item.expression)} AS {item.alias}"
                for item in clause.items
            )
        )
    if with_where and clause.where is not None:
        parts.append(f"WHERE {_expr(clause.where)}")
    if clause.order_by:
        parts.append(
            "ORDER BY "
            + ", ".join(
                _expr(item.expression) + (" DESC" if item.descending else "")
                for item in clause.order_by
            )
        )
    if clause.skip is not None:
        parts.append(f"SKIP {_expr(clause.skip)}")
    if clause.limit is not None:
        parts.append(f"LIMIT {_expr(clause.limit)}")
    return " ".join(parts)


def _render_set_item(item: ast.SetItem) -> str:
    if item.kind == "label":
        return _expr(item.subject) + "".join(f":{label}" for label in item.labels)
    if item.kind == "property":
        value = "" if item.value is None else f" = {_expr(item.value)}"
        return f"{_expr(item.subject)}.{item.key}{value}"
    op = "+=" if item.kind == "merge_map" else "="
    return f"{_expr(item.subject)} {op} {_expr(item.value)}"


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def _render_path(pattern: ast.PathPattern) -> str:
    body: list[str] = [_render_node(pattern.nodes[0])]
    for rel, node in zip(pattern.relationships, pattern.nodes[1:], strict=True):
        body.append(_render_rel(rel))
        body.append(_render_node(node))
    text = "".join(body)
    if pattern.shortest:
        text = f"shortestPath({text})"
    if pattern.path_variable:
        text = f"{pattern.path_variable} = {text}"
    return text


def _render_node(node: ast.NodePattern) -> str:
    inner = node.variable or ""
    inner += "".join(f":{label}" for label in node.labels)
    if node.properties:
        inner += " " + _render_properties(node.properties)
    return f"({inner})"


def _render_rel(rel: ast.RelPattern) -> str:
    inner = rel.variable or ""
    if rel.types:
        inner += ":" + "|".join(rel.types)
    if rel.is_variable_length:
        inner += "*"
        if rel.min_hops != 1 or rel.max_hops != -1:
            inner += f"{rel.min_hops}.."
            if rel.max_hops != -1:
                inner += str(rel.max_hops)
    if rel.properties:
        inner += " " + _render_properties(rel.properties)
    body = f"[{inner}]" if inner else ""
    if rel.direction == "out":
        return f"-{body}->"
    if rel.direction == "in":
        return f"<-{body}-"
    return f"-{body}-"


def _render_properties(
    properties: tuple[tuple[str, ast.Expression], ...]
) -> str:
    return (
        "{" + ", ".join(f"{key}: {_expr(value)}" for key, value in properties) + "}"
    )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _expr(expression: ast.Expression | None) -> str:
    if expression is None:
        return "?"
    if isinstance(expression, ast.Literal):
        return "?"
    if isinstance(expression, ast.Parameter):
        return "$?"
    if isinstance(expression, ast.Variable):
        return expression.name
    if isinstance(expression, ast.PropertyAccess):
        return f"{_expr(expression.subject)}.{expression.key}"
    if isinstance(expression, ast.FunctionCall):
        if expression.star:
            return f"{expression.name}(*)"
        flags = "DISTINCT " if expression.distinct else ""
        args = ", ".join(_expr(arg) for arg in expression.args)
        return f"{expression.name}({flags}{args})"
    if isinstance(expression, ast.UnaryOp):
        if expression.op == "not":
            return f"NOT {_expr(expression.operand)}"
        return f"{expression.op}{_expr(expression.operand)}"
    if isinstance(expression, ast.BinaryOp):
        symbol = _BINARY_SYMBOLS.get(expression.op, expression.op)
        return f"({_expr(expression.left)} {symbol} {_expr(expression.right)})"
    if isinstance(expression, ast.IsNull):
        verb = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{_expr(expression.operand)} {verb}"
    if isinstance(expression, ast.ListLiteral):
        return "[" + ", ".join(_expr(item) for item in expression.items) + "]"
    if isinstance(expression, ast.MapLiteral):
        body = ", ".join(f"{key}: {_expr(value)}" for key, value in expression.items)
        return "{" + body + "}"
    if isinstance(expression, ast.IndexAccess):
        subject = _expr(expression.subject)
        if expression.is_slice:
            start = _expr(expression.index) if expression.index is not None else ""
            end = _expr(expression.end) if expression.end is not None else ""
            return f"{subject}[{start}..{end}]"
        return f"{subject}[{_expr(expression.index)}]"
    if isinstance(expression, ast.CaseExpression):
        parts = ["CASE"]
        if expression.operand is not None:
            parts.append(_expr(expression.operand))
        for condition, value in expression.whens:
            parts.append(f"WHEN {_expr(condition)} THEN {_expr(value)}")
        if expression.default is not None:
            parts.append(f"ELSE {_expr(expression.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expression, ast.ListComprehension):
        body = f"{expression.variable} IN {_expr(expression.source)}"
        if expression.predicate is not None:
            body += f" WHERE {_expr(expression.predicate)}"
        if expression.projection is not None:
            body += f" | {_expr(expression.projection)}"
        return f"[{body}]"
    if isinstance(expression, ast.ListPredicate):
        return (
            f"{expression.kind}({expression.variable} IN "
            f"{_expr(expression.source)} WHERE {_expr(expression.predicate)})"
        )
    if isinstance(expression, ast.Reduce):
        return (
            f"reduce({expression.accumulator} = {_expr(expression.init)}, "
            f"{expression.variable} IN {_expr(expression.source)} | "
            f"{_expr(expression.expression)})"
        )
    if isinstance(expression, ast.PatternPredicate):
        return f"EXISTS {_render_path(expression.pattern)}"
    return type(expression).__name__
