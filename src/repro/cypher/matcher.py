"""Graph pattern matching for MATCH / MERGE / pattern predicates.

For each path pattern the matcher picks the cheapest anchor element
(a bound variable, an indexed label+property seek, or the smallest label
scan), then expands rightward and leftward with backtracking.  Cypher's
relationship isomorphism is enforced: within one MATCH clause a
relationship is traversed at most once, which is what makes the paper's
MOAS query (Listing 2) return genuinely distinct origin links.

Two optimizer hooks plug into the walk (see
:mod:`repro.cypher.planner`):

- **pushed predicates** — a mapping from variable name to WHERE
  conjuncts that only depend on that variable; each is evaluated the
  instant its variable binds, pruning the search tree at the earliest
  possible point instead of filtering complete bindings.
- **binding reuse** — the walk mutates a single working dict with an
  undo trail per backtrack point rather than copying the whole binding
  on every expansion step; a snapshot is taken only when a complete
  match is yielded, so the copy cost is O(results), not O(steps).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.cypher import ast
from repro.cypher.errors import CypherRuntimeError
from repro.cypher.values import equals, is_truthy
from repro.graphdb.model import Direction, Node, Relationship
from repro.graphdb.store import GraphStore
from repro.obs import record_access

Binding = dict[str, Any]
Evaluator = Callable[[ast.Expression, Binding], Any]
Tick = Callable[[], None]
#: Bind-time predicates: variable name -> conjuncts to check on bind.
Pushed = Mapping[str, tuple[ast.Expression, ...]]

_DIRECTIONS = {"out": Direction.OUT, "in": Direction.IN, "both": Direction.BOTH}


def _no_tick() -> None:
    """Default cancellation hook: do nothing."""


class PatternMatcher:
    """Matches path patterns against a :class:`GraphStore`.

    ``tick`` is a cooperative-cancellation hook called from the matching
    inner loops; the engine wires it to the active query's guard so a
    runaway traversal can be aborted mid-match (admission control).

    The matcher holds no per-query state — one instance serves every
    concurrent query of an engine — so pushed predicates travel through
    the call chain rather than living on ``self``.
    """

    def __init__(self, store: GraphStore, evaluate: Evaluator, tick: Tick = _no_tick):
        self._store = store
        self._evaluate = evaluate
        self._tick = tick

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def match_patterns(
        self,
        patterns: tuple[ast.PathPattern, ...],
        binding: Binding,
        pushed: Pushed | None = None,
    ) -> Iterator[Binding]:
        """Yield bindings satisfying *all* patterns (one MATCH clause)."""
        yield from self._match_rest(list(patterns), binding, frozenset(), pushed)

    def match_single(
        self, pattern: ast.PathPattern, binding: Binding
    ) -> Iterator[Binding]:
        """Yield bindings for one pattern (used by MERGE)."""
        for extended, _rels in self._match_path(pattern, binding, frozenset(), None):
            yield extended

    def pattern_exists(self, pattern: ast.PathPattern, binding: Binding) -> bool:
        """Return True when the pattern has at least one match."""
        for _ in self._match_path(pattern, binding, frozenset(), None):
            return True
        return False

    # ------------------------------------------------------------------
    # Multi-pattern join
    # ------------------------------------------------------------------

    def _match_rest(
        self,
        patterns: list[ast.PathPattern],
        binding: Binding,
        used_rels: frozenset[int],
        pushed: Pushed | None,
    ) -> Iterator[Binding]:
        if not patterns:
            yield binding
            return
        head, tail = patterns[0], patterns[1:]
        for extended, rels in self._match_path(head, binding, used_rels, pushed):
            yield from self._match_rest(tail, extended, used_rels | rels, pushed)

    # ------------------------------------------------------------------
    # Single path
    # ------------------------------------------------------------------

    def _match_path(
        self,
        pattern: ast.PathPattern,
        binding: Binding,
        used_rels: frozenset[int],
        pushed: Pushed | None,
    ) -> Iterator[tuple[Binding, frozenset[int]]]:
        if pattern.shortest:
            yield from self._match_shortest(pattern, binding, used_rels, pushed)
            return
        anchor = self._choose_anchor(pattern, binding)
        # One working dict per path; the walk mutates it in place and
        # unwinds its own additions when backtracking.
        work = dict(binding)
        assigned: dict[int, Node] = {}
        local_rels: set[int] = set()
        # Anchor bind attempts are tallied locally and flushed once per
        # path — a per-attempt record_access would dominate this hot
        # path.  Walk-phase volume is already accounted row-accurately
        # by the store's expand / rels_expanded counters.
        binds = 0
        try:
            for candidate in self._anchor_candidates(pattern.nodes[anchor], work):
                self._tick()
                binds += 1
                trail: list[str] = []
                if self._bind_node(
                    pattern.nodes[anchor], candidate, work, trail, pushed
                ):
                    assigned[anchor] = candidate
                    yield from self._walk_right(
                        pattern, anchor, anchor, work, assigned, used_rels,
                        local_rels, pushed,
                    )
                    del assigned[anchor]
                for key in trail:
                    del work[key]
        finally:
            if binds:
                record_access("bind_attempt", binds)

    def _walk_right(
        self,
        pattern: ast.PathPattern,
        anchor: int,
        position: int,
        work: Binding,
        assigned: dict[int, Node],
        used_rels: frozenset[int],
        local_rels: set[int],
        pushed: Pushed | None,
    ) -> Iterator[tuple[Binding, frozenset[int]]]:
        if position == len(pattern.nodes) - 1:
            yield from self._walk_left(
                pattern, anchor, work, assigned, used_rels, local_rels, pushed
            )
            return
        rel_pattern = pattern.relationships[position]
        next_pattern = pattern.nodes[position + 1]
        for rels, neighbor in self._step(
            assigned[position], rel_pattern, used_rels, local_rels, work,
            reverse=False,
        ):
            trail: list[str] = []
            if self._bind_step(
                rel_pattern, rels, next_pattern, neighbor, work, trail, pushed
            ):
                added = [rel.id for rel in rels]
                local_rels.update(added)
                assigned[position + 1] = neighbor
                yield from self._walk_right(
                    pattern, anchor, position + 1, work, assigned, used_rels,
                    local_rels, pushed,
                )
                del assigned[position + 1]
                local_rels.difference_update(added)
            for key in trail:
                del work[key]

    def _walk_left(
        self,
        pattern: ast.PathPattern,
        position: int,
        work: Binding,
        assigned: dict[int, Node],
        used_rels: frozenset[int],
        local_rels: set[int],
        pushed: Pushed | None,
    ) -> Iterator[tuple[Binding, frozenset[int]]]:
        if position == 0:
            # A complete match: snapshot the working dict — the only
            # copy this path makes per result.
            snapshot = dict(work)
            if pattern.path_variable:
                snapshot[pattern.path_variable] = self._materialize_path(
                    pattern, assigned, work
                )
            yield snapshot, frozenset(local_rels)
            return
        rel_pattern = pattern.relationships[position - 1]
        prev_pattern = pattern.nodes[position - 1]
        for rels, neighbor in self._step(
            assigned[position], rel_pattern, used_rels, local_rels, work,
            reverse=True,
        ):
            trail: list[str] = []
            if self._bind_step(
                rel_pattern, rels, prev_pattern, neighbor, work, trail, pushed
            ):
                added = [rel.id for rel in rels]
                local_rels.update(added)
                assigned[position - 1] = neighbor
                yield from self._walk_left(
                    pattern, position - 1, work, assigned, used_rels,
                    local_rels, pushed,
                )
                del assigned[position - 1]
                local_rels.difference_update(added)
            for key in trail:
                del work[key]

    def _materialize_path(
        self, pattern: ast.PathPattern, assigned: dict[int, Node], binding: Binding
    ) -> list[Any]:
        """A path value is the alternating node/relationship list."""
        elements: list[Any] = []
        for index, _node_pattern in enumerate(pattern.nodes):
            elements.append(assigned[index])
            if index < len(pattern.relationships):
                rel_pattern = pattern.relationships[index]
                if rel_pattern.variable and rel_pattern.variable in binding:
                    elements.append(binding[rel_pattern.variable])
        return elements

    # ------------------------------------------------------------------
    # shortestPath()
    # ------------------------------------------------------------------

    def _match_shortest(
        self,
        pattern: ast.PathPattern,
        binding: Binding,
        used_rels: frozenset[int],
        pushed: Pushed | None,
    ) -> Iterator[tuple[Binding, frozenset[int]]]:
        """BFS from each start candidate; one shortest path per end node."""
        if len(pattern.relationships) != 1:
            raise CypherRuntimeError(
                "shortestPath() supports a single relationship pattern"
            )
        rel_pattern = pattern.relationships[0]
        start_pattern, end_pattern = pattern.nodes
        flipped = False
        # Anchor the BFS at the cheaper end (BFS explores the same ball
        # either way; starting from the selective end avoids one scan
        # per anchor candidate).
        if self._node_cost(end_pattern, binding) < self._node_cost(
            start_pattern, binding
        ):
            start_pattern, end_pattern = end_pattern, start_pattern
            if rel_pattern.direction != "both":
                rel_pattern = ast.RelPattern(
                    rel_pattern.variable,
                    rel_pattern.types,
                    rel_pattern.properties,
                    "in" if rel_pattern.direction == "out" else "out",
                    rel_pattern.min_hops,
                    rel_pattern.max_hops,
                )
            flipped = True
        limit = 10**9 if rel_pattern.max_hops == -1 else max(rel_pattern.max_hops, 1)
        for start_node in self._anchor_candidates(start_pattern, binding):
            record_access("bind_attempt")
            base = dict(binding)
            if not self._bind_node(start_pattern, start_node, base, None, pushed):
                continue
            visited: set[int] = {start_node.id}
            frontier: list[tuple[Node, list[Relationship]]] = [(start_node, [])]
            depth = 0
            while frontier and depth < limit:
                depth += 1
                next_frontier: list[tuple[Node, list[Relationship]]] = []
                for node, path in frontier:
                    for rel in self._incident(
                        node, rel_pattern.direction, rel_pattern.types
                    ):
                        self._tick()
                        if rel.id in used_rels:
                            continue
                        other = self._store.get_node(rel.other_end(node.id))
                        if other.id in visited:
                            continue
                        if not self._rel_properties_match(rel, rel_pattern, base):
                            continue
                        visited.add(other.id)
                        new_path = path + [rel]
                        next_frontier.append((other, new_path))
                        if depth < rel_pattern.min_hops:
                            continue
                        extended = dict(base)
                        if not self._bind_node(
                            end_pattern, other, extended, None, pushed
                        ):
                            continue
                        if rel_pattern.variable:
                            extended[rel_pattern.variable] = list(new_path)
                        if pattern.path_variable:
                            elements: list = [start_node]
                            for hop in new_path:
                                previous = elements[-1]
                                elements.append(hop)
                                elements.append(
                                    self._store.get_node(hop.other_end(previous.id))
                                )
                            if flipped:
                                elements.reverse()
                            extended[pattern.path_variable] = elements
                        yield extended, frozenset(r.id for r in new_path)
                frontier = next_frontier

    # ------------------------------------------------------------------
    # Anchor selection
    # ------------------------------------------------------------------

    def describe_pattern(self, pattern: ast.PathPattern, binding: Binding) -> str:
        """The planner's choice for one pattern, for EXPLAIN and PROFILE:
        anchor element, access path, and estimated cardinality."""
        anchor = self._choose_anchor(pattern, binding)
        node = pattern.nodes[anchor]
        cost = self._node_cost(node, binding)
        label = f":{node.labels[0]}" if node.labels else "(any)"
        indexed = any(
            node.labels and self._store.has_index(lbl, key)
            for lbl in node.labels
            for key, _ in node.properties
        )
        access = (
            "index seek"
            if indexed
            else ("label scan" if node.labels else "all-nodes scan")
        )
        return f"anchor={label} pos={anchor} access={access} est={cost}"

    def _choose_anchor(self, pattern: ast.PathPattern, binding: Binding) -> int:
        best_index, best_cost = 0, None
        for index, node in enumerate(pattern.nodes):
            cost = self._node_cost(node, binding)
            if best_cost is None or cost < best_cost:
                best_index, best_cost = index, cost
        return best_index

    def _node_cost(self, node: ast.NodePattern, binding: Binding) -> int:
        if node.variable and node.variable in binding:
            return 0
        if node.labels:
            best = None
            for label in node.labels:
                # label_count probes the index size without materializing
                # nodes (or counting as a label scan in profiles).
                count = self._store.label_count(label)
                for key, _ in node.properties:
                    if self._store.has_index(label, key):
                        count = min(count, 2)  # index seek: near-constant
                        break
                if best is None or count < best:
                    best = count
            return best + 1
        return self._store.node_count + 2

    def _anchor_candidates(
        self, node: ast.NodePattern, binding: Binding
    ) -> Iterator[Node]:
        if node.variable and node.variable in binding:
            value = binding[node.variable]
            if value is None:
                return
            if not isinstance(value, Node):
                raise CypherRuntimeError(f"variable {node.variable!r} is not a node")
            yield value
            return
        if node.labels:
            label = min(node.labels, key=self._store.label_count)
            for key, value_expr in node.properties:
                if self._store.has_index(label, key):
                    value = self._evaluate(value_expr, binding)
                    yield from self._store.find_nodes(label, key, value)
                    return
            yield from self._store.nodes_with_label(label)
            return
        # Stream the full scan: clauses drain the matcher before any
        # mutation clause runs, so the store cannot change mid-iteration.
        yield from self._store.iter_nodes()

    # ------------------------------------------------------------------
    # Single step (fixed- and variable-length relationships)
    # ------------------------------------------------------------------

    def _step(
        self,
        current: Node,
        rel_pattern: ast.RelPattern,
        used_rels: frozenset[int],
        local_rels: set[int],
        binding: Binding,
        reverse: bool,
    ) -> Iterator[tuple[list[Relationship], Node]]:
        direction = rel_pattern.direction
        if reverse and direction != "both":
            direction = "in" if direction == "out" else "out"
        if (
            rel_pattern.variable
            and rel_pattern.variable in binding
            and not rel_pattern.is_variable_length
        ):
            bound = binding[rel_pattern.variable]
            if not isinstance(bound, Relationship):
                return
            if bound.id in used_rels or bound.id in local_rels:
                return
            if not self._rel_touches(bound, current, direction):
                return
            yield [bound], self._store.get_node(bound.other_end(current.id))
            return
        if not rel_pattern.is_variable_length:
            for rel in self._incident(current, direction, rel_pattern.types):
                self._tick()
                if rel.id in used_rels or rel.id in local_rels:
                    continue
                if not self._rel_properties_match(rel, rel_pattern, binding):
                    continue
                yield [rel], self._store.get_node(rel.other_end(current.id))
            return
        # Variable-length: DFS with per-path relationship uniqueness.
        limit = 10**9 if rel_pattern.max_hops == -1 else rel_pattern.max_hops
        stack: list[tuple[Node, list[Relationship]]] = [(current, [])]
        while stack:
            self._tick()
            node, path = stack.pop()
            if len(path) >= rel_pattern.min_hops:
                yield list(path), node
            if len(path) >= limit:
                continue
            path_ids = {rel.id for rel in path}
            for rel in self._incident(node, direction, rel_pattern.types):
                if rel.id in used_rels or rel.id in local_rels or rel.id in path_ids:
                    continue
                if not self._rel_properties_match(rel, rel_pattern, binding):
                    continue
                stack.append(
                    (self._store.get_node(rel.other_end(node.id)), path + [rel])
                )

    def _incident(
        self, node: Node, direction: str, types: tuple[str, ...]
    ) -> Iterator[Relationship]:
        if types:
            for rel_type in types:
                yield from self._store.relationships_of(
                    node.id, _DIRECTIONS[direction], rel_type
                )
        else:
            yield from self._store.relationships_of(node.id, _DIRECTIONS[direction])

    @staticmethod
    def _rel_touches(rel: Relationship, node: Node, direction: str) -> bool:
        if direction == "out":
            return rel.start_id == node.id
        if direction == "in":
            return rel.end_id == node.id
        return node.id in (rel.start_id, rel.end_id)

    def _rel_properties_match(
        self, rel: Relationship, rel_pattern: ast.RelPattern, binding: Binding
    ) -> bool:
        for key, value_expr in rel_pattern.properties:
            expected = self._evaluate(value_expr, binding)
            if equals(rel.properties.get(key), expected) is not True:
                return False
        return True

    # ------------------------------------------------------------------
    # Binding helpers
    # ------------------------------------------------------------------

    def _check_pushed(
        self, variable: str, binding: Binding, pushed: Pushed | None
    ) -> bool:
        """Evaluate bind-time predicates for a freshly-bound variable."""
        if not pushed:
            return True
        for predicate in pushed.get(variable, ()):
            if not is_truthy(self._evaluate(predicate, binding)):
                return False
        return True

    def _bind_node(
        self,
        node_pattern: ast.NodePattern,
        node: Node,
        binding: Binding,
        trail: list[str] | None = None,
        pushed: Pushed | None = None,
    ) -> bool:
        """Bind a node into the working dict.

        Keys added are appended to ``trail`` so the caller can unwind on
        backtrack; a False return still records its additions (the
        caller unwinds unconditionally).
        """
        if node_pattern.labels and not all(
            label in node.labels for label in node_pattern.labels
        ):
            return False
        for key, value_expr in node_pattern.properties:
            expected = self._evaluate(value_expr, binding)
            if equals(node.properties.get(key), expected) is not True:
                return False
        variable = node_pattern.variable
        if variable:
            if variable in binding:
                existing = binding[variable]
                if not isinstance(existing, Node) or existing.id != node.id:
                    return False
                # Re-binding an already-bound variable: pushed predicates
                # were checked when it first bound.
                return True
            binding[variable] = node
            if trail is not None:
                trail.append(variable)
            if not self._check_pushed(variable, binding, pushed):
                return False
        return True

    def _bind_step(
        self,
        rel_pattern: ast.RelPattern,
        rels: list[Relationship],
        node_pattern: ast.NodePattern,
        node: Node,
        binding: Binding,
        trail: list[str] | None = None,
        pushed: Pushed | None = None,
    ) -> bool:
        variable = rel_pattern.variable
        if variable:
            value: Any = list(rels) if rel_pattern.is_variable_length else rels[0]
            if variable in binding:
                if binding[variable] != value:
                    return False
            else:
                binding[variable] = value
                if trail is not None:
                    trail.append(variable)
                if not self._check_pushed(variable, binding, pushed):
                    return False
        return self._bind_node(node_pattern, node, binding, trail, pushed)
