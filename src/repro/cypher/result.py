"""Query results and write statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class WriteStats:
    """Counters of mutations performed by a query."""

    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    properties_set: int = 0
    labels_added: int = 0

    def __bool__(self) -> bool:
        return any(
            (
                self.nodes_created,
                self.nodes_deleted,
                self.relationships_created,
                self.relationships_deleted,
                self.properties_set,
                self.labels_added,
            )
        )


@dataclass
class QueryResult:
    """An executed query: ordered columns, one dict per row, write stats."""

    columns: list[str]
    records: list[dict[str, Any]]
    stats: WriteStats = field(default_factory=WriteStats)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.records[index]

    def column(self, name: str | None = None) -> list[Any]:
        """Return one column as a list (first column by default)."""
        if name is None:
            if not self.columns:
                return []
            name = self.columns[0]
        if name not in self.columns:
            raise KeyError(f"no column {name!r}; columns are {self.columns}")
        return [record[name] for record in self.records]

    def value(self) -> Any:
        """Return the single value of a single-row, single-column result."""
        record = self.single()
        if len(self.columns) != 1:
            raise ValueError(f"expected one column, got {self.columns}")
        return record[self.columns[0]]

    def single(self) -> dict[str, Any]:
        """Return the only record; raises when the result is not one row."""
        if len(self.records) != 1:
            raise ValueError(f"expected exactly one record, got {len(self.records)}")
        return self.records[0]

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Return rows as tuples in column order."""
        return [tuple(record[col] for col in self.columns) for record in self.records]

    def to_table(self, max_rows: int = 50) -> str:
        """Render the result as a plain-text table (for examples/debugging)."""
        header = self.columns
        body = [
            [_cell(record[col]) for col in header]
            for record in self.records[:max_rows]
        ]
        widths = [
            max(len(str(col)), *(len(row[i]) for row in body)) if body else len(str(col))
            for i, col in enumerate(header)
        ]
        lines = [
            " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(header)),
            "-+-".join("-" * width for width in widths),
        ]
        lines.extend(
            " | ".join(row[i].ljust(widths[i]) for i in range(len(header)))
            for row in body
        )
        if len(self.records) > max_rows:
            lines.append(f"... ({len(self.records) - max_rows} more rows)")
        return "\n".join(lines)


def _cell(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
