"""Recursive-descent parser for the Cypher subset.

Grammar (informal)::

    query        := part (UNION [ALL] part)*
    part         := clause+
    clause       := match | unwind | with | return | create | merge
                  | set | remove | delete | call
    match        := [OPTIONAL] MATCH pattern (',' pattern)* [WHERE expr]
    call         := CALL name ('.' name)* '(' [expr (',' expr)*] ')'
                    [YIELD name [AS name] (',' name [AS name])*]
    pattern      := [ident '='] node (rel node)*
    node         := '(' [ident] (':' label)* [map] ')'
    rel          := dash '[' [ident] [':' type ('|' type)*] ['*' range]
                    [map] ']' dash
    return/with  := RETURN|WITH [DISTINCT] items [ORDER BY ...]
                    [SKIP e] [LIMIT e] (WITH also: [WHERE expr])

Expression precedence, loosest first: OR, XOR, AND, NOT, comparisons
(including IN / STARTS WITH / CONTAINS / IS NULL / =~), additive,
multiplicative, power, unary minus, postfix (property access, indexing),
atoms.
"""

from __future__ import annotations

from repro.cypher import ast
from repro.cypher.errors import CypherSyntaxError
from repro.cypher.lexer import Token, TokenType, tokenize

_COMPARISON_PUNCT = {"=", "<>", "<", "<=", ">", ">=", "=~"}


def parse(text: str) -> ast.Query:
    """Parse a query string into an AST."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _fail(self, message: str, token: Token | None = None) -> CypherSyntaxError:
        token = token if token is not None else self._current
        return CypherSyntaxError(message, token.position, token.line, token.column)

    @staticmethod
    def _span(token: Token) -> ast.Span:
        length = max(len(token.raw or token.value), 1)
        return ast.Span(token.position, token.line, token.column, length)

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> None:
        if not self._accept_keyword(name):
            raise self._fail(f"expected {name}, found {self._current.value!r}")

    def _accept_punct(self, *values: str) -> bool:
        if self._current.is_punct(*values):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._fail(f"expected {value!r}, found {self._current.value!r}")

    def _expect_ident(self) -> str:
        token = self._current
        # Unreserved keywords may double as identifiers in Neo4j; allow a
        # handful of safe ones (e.g. a variable named `count` is unusual
        # but a label named `On` is plausible).
        if token.type in (TokenType.IDENT,):
            self._advance()
            return token.value
        raise self._fail(f"expected identifier, found {token.value!r}", token)

    def _expect_name(self) -> str:
        """Accept an identifier *or* a keyword used as a name.

        Labels, relationship types and map keys may collide with reserved
        words -- IYP's most important label is ``:AS``.  The original
        spelling is preserved via the token's ``raw`` field.
        """
        token = self._current
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            return token.raw
        raise self._fail(f"expected name, found {token.value!r}", token)

    def _expect_name_token(self) -> Token:
        """Like :meth:`_expect_name` but returns the whole token so the
        caller can attach a source span (labels, relationship types)."""
        token = self._current
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            return token
        raise self._fail(f"expected name, found {token.value!r}", token)

    # -- top level -------------------------------------------------------

    def parse_query(self) -> ast.Query:
        first = self._parse_part()
        parts: list[ast.Query] = []
        union_all = False
        while self._accept_keyword("UNION"):
            union_all = self._accept_keyword("ALL")
            parts.append(self._parse_part())
        if self._current.type is not TokenType.EOF:
            raise self._fail(f"unexpected input {self._current.value!r}")
        if parts:
            return ast.Query(first.clauses, tuple(parts), union_all)
        return first

    def _parse_part(self) -> ast.Query:
        clauses: list[ast.Clause] = []
        while True:
            token = self._current
            if token.is_keyword("MATCH", "OPTIONAL"):
                clauses.append(self._parse_match())
            elif token.is_keyword("UNWIND"):
                clauses.append(self._parse_unwind())
            elif token.is_keyword("WITH"):
                clauses.append(self._parse_projection(is_return=False))
            elif token.is_keyword("RETURN"):
                clauses.append(self._parse_projection(is_return=True))
            elif token.is_keyword("CREATE"):
                clauses.append(self._parse_create())
            elif token.is_keyword("MERGE"):
                clauses.append(self._parse_merge())
            elif token.is_keyword("SET"):
                self._advance()
                clauses.append(ast.SetClause(tuple(self._parse_set_items())))
            elif token.is_keyword("REMOVE"):
                clauses.append(self._parse_remove())
            elif token.is_keyword("DELETE", "DETACH"):
                clauses.append(self._parse_delete())
            elif token.is_keyword("CALL"):
                clauses.append(self._parse_call())
            else:
                break
        if not clauses:
            raise self._fail("empty query")
        return ast.Query(tuple(clauses))

    # -- clauses ---------------------------------------------------------

    def _parse_call(self) -> ast.CallClause:
        self._expect_keyword("CALL")
        first = self._expect_name_token()
        last = first
        name_parts = [first.raw]
        while self._accept_punct("."):
            last = self._expect_name_token()
            name_parts.append(last.raw)
        procedure = ".".join(name_parts).lower()
        last_length = max(len(last.raw or last.value), 1)
        name_span = ast.Span(
            first.position,
            first.line,
            first.column,
            last.position - first.position + last_length,
        )
        self._expect_punct("(")
        args: list[ast.Expression] = []
        if not self._current.is_punct(")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        yields: list[ast.YieldItem] = []
        if self._accept_keyword("YIELD"):
            yields.append(self._parse_yield_item())
            while self._accept_punct(","):
                yields.append(self._parse_yield_item())
        return ast.CallClause(procedure, tuple(args), tuple(yields), name_span)

    def _parse_yield_item(self) -> ast.YieldItem:
        token = self._expect_name_token()
        column = token.raw
        alias = self._expect_name() if self._accept_keyword("AS") else column
        return ast.YieldItem(column, alias, self._span(token))

    def _parse_match(self) -> ast.MatchClause:
        optional = self._accept_keyword("OPTIONAL")
        self._expect_keyword("MATCH")
        patterns = [self._parse_pattern()]
        while self._accept_punct(","):
            patterns.append(self._parse_pattern())
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        return ast.MatchClause(tuple(patterns), optional, where)

    def _parse_unwind(self) -> ast.UnwindClause:
        self._expect_keyword("UNWIND")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        return ast.UnwindClause(expression, self._expect_name())

    def _parse_projection(self, is_return: bool) -> ast.Clause:
        self._advance()  # RETURN or WITH
        distinct = self._accept_keyword("DISTINCT")
        star = False
        items: list[ast.ProjectionItem] = []
        if self._accept_punct("*"):
            star = True
        else:
            items.append(self._parse_projection_item())
            while self._accept_punct(","):
                items.append(self._parse_projection_item())
        order_by: list[ast.SortItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_sort_item())
            while self._accept_punct(","):
                order_by.append(self._parse_sort_item())
        skip = self._parse_expression() if self._accept_keyword("SKIP") else None
        limit = self._parse_expression() if self._accept_keyword("LIMIT") else None
        if is_return:
            return ast.ReturnClause(
                tuple(items), distinct, star, tuple(order_by), skip, limit
            )
        where = self._parse_expression() if self._accept_keyword("WHERE") else None
        return ast.WithClause(
            tuple(items), distinct, star, where, tuple(order_by), skip, limit
        )

    def _parse_projection_item(self) -> ast.ProjectionItem:
        expression = self._parse_expression()
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        else:
            alias = _implicit_alias(expression)
        return ast.ProjectionItem(expression, alias)

    def _parse_sort_item(self) -> ast.SortItem:
        expression = self._parse_expression()
        descending = False
        if self._accept_keyword("DESC", "DESCENDING"):
            descending = True
        else:
            self._accept_keyword("ASC", "ASCENDING")
        return ast.SortItem(expression, descending)

    def _parse_create(self) -> ast.CreateClause:
        self._expect_keyword("CREATE")
        patterns = [self._parse_pattern()]
        while self._accept_punct(","):
            patterns.append(self._parse_pattern())
        return ast.CreateClause(tuple(patterns))

    def _parse_merge(self) -> ast.MergeClause:
        self._expect_keyword("MERGE")
        pattern = self._parse_pattern()
        on_create: tuple[ast.SetItem, ...] = ()
        on_match: tuple[ast.SetItem, ...] = ()
        while self._accept_keyword("ON"):
            if self._accept_keyword("CREATE"):
                self._expect_keyword("SET")
                on_create = on_create + tuple(self._parse_set_items())
            elif self._accept_keyword("MATCH"):
                self._expect_keyword("SET")
                on_match = on_match + tuple(self._parse_set_items())
            else:
                raise self._fail("expected CREATE or MATCH after ON")
        return ast.MergeClause(pattern, on_create, on_match)

    def _parse_set_items(self) -> list[ast.SetItem]:
        items = [self._parse_set_item()]
        while self._accept_punct(","):
            items.append(self._parse_set_item())
        return items

    def _parse_set_item(self) -> ast.SetItem:
        subject: ast.Expression = ast.Variable(self._expect_ident())
        if self._current.is_punct(":"):
            labels: list[str] = []
            while self._accept_punct(":"):
                labels.append(self._expect_name())
            return ast.SetItem("label", subject, labels=tuple(labels))
        if self._accept_punct("+="):
            return ast.SetItem("merge_map", subject, value=self._parse_expression())
        if self._current.is_punct("="):
            self._advance()
            return ast.SetItem("replace_map", subject, value=self._parse_expression())
        while self._accept_punct("."):
            key = self._expect_ident()
            if self._accept_punct("="):
                return ast.SetItem("property", subject, key=key, value=self._parse_expression())
            subject = ast.PropertyAccess(subject, key)
        raise self._fail("malformed SET item")

    def _parse_remove(self) -> ast.RemoveClause:
        self._expect_keyword("REMOVE")
        items: list[ast.SetItem] = []
        while True:
            subject: ast.Expression = ast.Variable(self._expect_ident())
            if self._current.is_punct(":"):
                labels: list[str] = []
                while self._accept_punct(":"):
                    labels.append(self._expect_name())
                items.append(ast.SetItem("label", subject, labels=tuple(labels)))
            else:
                self._expect_punct(".")
                items.append(ast.SetItem("property", subject, key=self._expect_ident()))
            if not self._accept_punct(","):
                break
        return ast.RemoveClause(tuple(items))

    def _parse_delete(self) -> ast.DeleteClause:
        detach = self._accept_keyword("DETACH")
        self._expect_keyword("DELETE")
        expressions = [self._parse_expression()]
        while self._accept_punct(","):
            expressions.append(self._parse_expression())
        return ast.DeleteClause(tuple(expressions), detach)

    # -- patterns ----------------------------------------------------------

    def _parse_pattern(self) -> ast.PathPattern:
        path_variable = None
        if (
            self._current.type is TokenType.IDENT
            and self._peek().is_punct("=")
            and (
                self._peek(2).is_punct("(")
                or self._peek(2).value.lower() == "shortestpath"
            )
        ):
            path_variable = self._advance().value
            self._advance()  # '='
        # shortestPath((a)-[:T*..n]-(b))
        if (
            self._current.type is TokenType.IDENT
            and self._current.value.lower() == "shortestpath"
            and self._peek().is_punct("(")
        ):
            self._advance()  # shortestPath
            self._expect_punct("(")
            inner = self._parse_pattern()
            self._expect_punct(")")
            if len(inner.nodes) != 2:
                raise self._fail("shortestPath() requires a two-node pattern")
            return ast.PathPattern(
                inner.nodes, inner.relationships, path_variable, shortest=True
            )
        nodes = [self._parse_node_pattern()]
        relationships: list[ast.RelPattern] = []
        while self._current.is_punct("-", "<"):
            relationships.append(self._parse_rel_pattern())
            nodes.append(self._parse_node_pattern())
        return ast.PathPattern(tuple(nodes), tuple(relationships), path_variable)

    def _parse_node_pattern(self) -> ast.NodePattern:
        span = self._span(self._current)
        self._expect_punct("(")
        variable = None
        if self._current.type is TokenType.IDENT and not self._current.is_punct(":"):
            span = self._span(self._current)
            variable = self._advance().value
        labels: list[str] = []
        label_spans: list[ast.Span] = []
        while self._accept_punct(":"):
            token = self._expect_name_token()
            labels.append(token.raw)
            label_spans.append(self._span(token))
        properties: tuple[tuple[str, ast.Expression], ...] = ()
        property_spans: tuple[ast.Span, ...] = ()
        if self._current.is_punct("{"):
            properties, property_spans = self._parse_property_map_spanned()
        self._expect_punct(")")
        return ast.NodePattern(
            variable, tuple(labels), properties,
            span, tuple(label_spans), property_spans,
        )

    def _parse_rel_pattern(self) -> ast.RelPattern:
        span = self._span(self._current)
        direction = "both"
        if self._accept_punct("<"):
            direction = "in"
            self._expect_punct("-")
        else:
            self._expect_punct("-")
        variable = None
        types: list[str] = []
        type_spans: list[ast.Span] = []
        properties: tuple[tuple[str, ast.Expression], ...] = ()
        property_spans: tuple[ast.Span, ...] = ()
        min_hops, max_hops = 1, 1
        if self._accept_punct("["):
            if self._current.type is TokenType.IDENT:
                span = self._span(self._current)
                variable = self._advance().value
            if self._accept_punct(":"):
                token = self._expect_name_token()
                types.append(token.raw)
                type_spans.append(self._span(token))
                while self._accept_punct("|"):
                    self._accept_punct(":")  # legacy ':TYPE1|:TYPE2' spelling
                    token = self._expect_name_token()
                    types.append(token.raw)
                    type_spans.append(self._span(token))
            if self._accept_punct("*"):
                min_hops, max_hops = self._parse_hop_range()
            if self._current.is_punct("{"):
                properties, property_spans = self._parse_property_map_spanned()
            self._expect_punct("]")
        if self._accept_punct(">"):
            if direction == "in":
                raise self._fail("relationship cannot point both ways")
            direction = "out"
        else:
            self._expect_punct("-")
            if self._accept_punct(">"):
                if direction == "in":
                    raise self._fail("relationship cannot point both ways")
                direction = "out"
        return ast.RelPattern(
            variable, tuple(types), properties, direction, min_hops, max_hops,
            span, tuple(type_spans), property_spans,
        )

    def _parse_hop_range(self) -> tuple[int, int]:
        # Forms: *   *2   *1..3   *..3   *2..
        min_hops, max_hops = 1, -1
        if self._current.type is TokenType.INTEGER:
            min_hops = int(self._advance().value)
            max_hops = min_hops
        if self._accept_punct(".."):
            max_hops = -1
            if self._current.type is TokenType.INTEGER:
                max_hops = int(self._advance().value)
        return min_hops, max_hops

    def _parse_property_map(self) -> tuple[tuple[str, ast.Expression], ...]:
        return self._parse_property_map_spanned()[0]

    def _parse_property_map_spanned(
        self,
    ) -> tuple[tuple[tuple[str, ast.Expression], ...], tuple[ast.Span, ...]]:
        self._expect_punct("{")
        items: list[tuple[str, ast.Expression]] = []
        spans: list[ast.Span] = []
        if not self._current.is_punct("}"):
            while True:
                key_token = self._current
                key = self._parse_map_key()
                spans.append(self._span(key_token))
                self._expect_punct(":")
                items.append((key, self._parse_expression()))
                if not self._accept_punct(","):
                    break
        self._expect_punct("}")
        return tuple(items), tuple(spans)

    def _parse_map_key(self) -> str:
        token = self._current
        if token.type in (TokenType.IDENT, TokenType.STRING):
            self._advance()
            return token.value
        if token.type is TokenType.KEYWORD:
            self._advance()
            return token.raw
        raise self._fail(f"expected map key, found {token.value!r}", token)

    # -- expressions -------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_xor()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("or", left, self._parse_xor())
        return left

    def _parse_xor(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("XOR"):
            left = ast.BinaryOp("xor", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            token = self._current
            if token.type is TokenType.PUNCT and token.value in _COMPARISON_PUNCT:
                op = self._advance().value
                right = self._parse_additive()
                name = {"=": "eq", "<>": "neq", "<": "lt", "<=": "le",
                        ">": "gt", ">=": "ge", "=~": "regex"}[op]
                left = ast.BinaryOp(name, left, right)
                continue
            if token.is_keyword("IN"):
                self._advance()
                left = ast.BinaryOp("in", left, self._parse_additive())
                continue
            if token.is_keyword("STARTS"):
                self._advance()
                self._expect_keyword("WITH")
                left = ast.BinaryOp("starts_with", left, self._parse_additive())
                continue
            if token.is_keyword("ENDS"):
                self._advance()
                self._expect_keyword("WITH")
                left = ast.BinaryOp("ends_with", left, self._parse_additive())
                continue
            if token.is_keyword("CONTAINS"):
                self._advance()
                left = ast.BinaryOp("contains", left, self._parse_additive())
                continue
            if token.is_keyword("IS"):
                self._advance()
                negated = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._current.is_punct("+", "-"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_power()
        while self._current.is_punct("*", "/", "%"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._parse_power())
        return left

    def _parse_power(self) -> ast.Expression:
        left = self._parse_unary()
        if self._accept_punct("^"):
            return ast.BinaryOp("^", left, self._parse_power())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._current.is_punct("-"):
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        if self._current.is_punct("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_atom()
        while True:
            if self._current.is_punct(".") and self._peek().type in (
                TokenType.IDENT,
                TokenType.KEYWORD,
            ):
                self._advance()
                key_token = self._current
                self._advance()
                expression = ast.PropertyAccess(
                    expression, key_token.raw, self._span(key_token)
                )
                continue
            if self._current.is_punct("["):
                self._advance()
                start = None if self._current.is_punct("..") else self._parse_expression()
                if self._accept_punct(".."):
                    end = None if self._current.is_punct("]") else self._parse_expression()
                    self._expect_punct("]")
                    expression = ast.IndexAccess(expression, start, end, is_slice=True)
                else:
                    self._expect_punct("]")
                    expression = ast.IndexAccess(expression, start)
                continue
            return expression

    def _parse_atom(self) -> ast.Expression:
        token = self._current
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, self._span(token))
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value), self._span(token))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value), self._span(token))
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True, self._span(token))
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False, self._span(token))
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None, self._span(token))
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            return self._parse_exists()
        if token.is_punct("["):
            return self._parse_list_or_comprehension()
        if token.is_punct("{"):
            return ast.MapLiteral(self._parse_property_map())
        if token.is_punct("("):
            # Either a parenthesized expression or a pattern predicate.
            if self._looks_like_pattern():
                return ast.PatternPredicate(self._parse_pattern())
            self._advance()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.type is TokenType.IDENT:
            if self._peek().is_punct("("):
                return self._parse_function_call()
            self._advance()
            return ast.Variable(token.value, self._span(token))
        # count(...) is lexed as IDENT but COUNT may appear as keyword in
        # other dialects; treat remaining keywords followed by '(' as calls.
        if token.type is TokenType.KEYWORD and self._peek().is_punct("("):
            return self._parse_function_call()
        raise self._fail(f"unexpected token {token.value!r} in expression", token)

    def _looks_like_pattern(self) -> bool:
        """Disambiguate ``(expr)`` from ``(n)-[...]-(m)`` predicates."""
        depth = 0
        index = self._pos
        while index < len(self._tokens):
            token = self._tokens[index]
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    nxt = self._tokens[index + 1] if index + 1 < len(self._tokens) else None
                    return nxt is not None and nxt.is_punct("-", "<")
            elif token.type is TokenType.EOF:
                return False
            index += 1
        return False

    _LIST_PREDICATES = ("all", "any", "none", "single")

    def _parse_function_call(self) -> ast.Expression:
        name = self._advance().value.lower()
        self._expect_punct("(")
        # all/any/none/single(x IN list WHERE pred)
        if (
            name in self._LIST_PREDICATES
            and self._current.type is TokenType.IDENT
            and self._peek().is_keyword("IN")
        ):
            variable = self._advance().value
            self._advance()  # IN
            source = self._parse_expression()
            self._expect_keyword("WHERE")
            predicate = self._parse_expression()
            self._expect_punct(")")
            return ast.ListPredicate(name, variable, source, predicate)
        # reduce(acc = init, x IN list | expr)
        if name == "reduce":
            accumulator = self._expect_ident()
            self._expect_punct("=")
            init = self._parse_expression()
            self._expect_punct(",")
            variable = self._expect_ident()
            self._expect_keyword("IN")
            source = self._parse_expression()
            self._expect_punct("|")
            expression = self._parse_expression()
            self._expect_punct(")")
            return ast.Reduce(accumulator, init, variable, source, expression)
        distinct = self._accept_keyword("DISTINCT")
        star = False
        args: list[ast.Expression] = []
        if self._accept_punct("*"):
            star = True
        elif not self._current.is_punct(")"):
            # exists((a)-[:X]-(b)) takes a pattern argument.
            if name == "exists" and self._looks_like_pattern():
                pattern = self._parse_pattern()
                self._expect_punct(")")
                return ast.PatternPredicate(pattern)
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(name, tuple(args), distinct, star)

    def _parse_case(self) -> ast.CaseExpression:
        self._expect_keyword("CASE")
        operand = None
        if not self._current.is_keyword("WHEN"):
            operand = self._parse_expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            whens.append((condition, self._parse_expression()))
        if not whens:
            raise self._fail("CASE without WHEN")
        default = self._parse_expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.CaseExpression(operand, tuple(whens), default)

    def _parse_exists(self) -> ast.Expression:
        self._expect_keyword("EXISTS")
        if self._accept_punct("{"):
            if self._current.is_keyword("MATCH"):
                self._advance()
            pattern = self._parse_pattern()
            self._expect_punct("}")
            return ast.PatternPredicate(pattern)
        self._expect_punct("(")
        if self._looks_like_pattern_from_here():
            pattern = self._parse_pattern()
            self._expect_punct(")")
            return ast.PatternPredicate(pattern)
        expression = self._parse_expression()
        self._expect_punct(")")
        return ast.FunctionCall("exists", (expression,))

    def _looks_like_pattern_from_here(self) -> bool:
        return self._current.is_punct("(")

    def _parse_list_or_comprehension(self) -> ast.Expression:
        self._expect_punct("[")
        if self._current.is_punct("]"):
            self._advance()
            return ast.ListLiteral(())
        # Lookahead for comprehension: IDENT IN ...
        if self._current.type is TokenType.IDENT and self._peek().is_keyword("IN"):
            variable = self._advance().value
            self._advance()  # IN
            source = self._parse_expression()
            predicate = self._parse_expression() if self._accept_keyword("WHERE") else None
            projection = self._parse_expression() if self._accept_punct("|") else None
            self._expect_punct("]")
            return ast.ListComprehension(variable, source, predicate, projection)
        items = [self._parse_expression()]
        while self._accept_punct(","):
            items.append(self._parse_expression())
        self._expect_punct("]")
        return ast.ListLiteral(tuple(items))


def _implicit_alias(expression: ast.Expression) -> str:
    """Derive the implicit column name for an un-aliased projection item."""
    if isinstance(expression, ast.Variable):
        return expression.name
    if isinstance(expression, ast.PropertyAccess):
        return f"{_implicit_alias(expression.subject)}.{expression.key}"
    if isinstance(expression, ast.FunctionCall):
        inner = "*" if expression.star else ", ".join(
            _implicit_alias(arg) for arg in expression.args
        )
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.name}({distinct}{inner})"
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    if isinstance(expression, ast.Parameter):
        return f"${expression.name}"
    return "expr"
